"""Quickstart: the paper's Example 1, end to end.

Builds the Figure 1 do/while loop, schedules it with the timing-driven
pass scheduler at the paper's 1600 ps clock, prints the Table 2 schedule,
verifies the implementation against the reference interpreter, and emits
Verilog RTL.

Run:  python examples/quickstart.py
"""

import random

from repro import artisan90, schedule_report, simulate_reference, \
    simulate_schedule
from repro.flow import run_flow
from repro.workloads import build_example1


def main() -> None:
    library = artisan90()

    print("Scheduling Example 1 (1 <= latency <= 3, Tclk = 1600 ps)...")
    ctx = run_flow("verilog", region=build_example1(), library=library,
                   clock_ps=1600.0, run_optimizer=False)
    assert not ctx.failed, [str(d) for d in ctx.errors]
    schedule = ctx.schedule
    print()
    print(schedule_report(schedule))

    # verify: the scheduled machine must match source semantics
    rng = random.Random(42)
    n = 10
    inputs = {
        "mask": [rng.randrange(1, 50) for _ in range(n - 1)] + [0],
        "chrome": [rng.randrange(1, 50) for _ in range(n)],
        "scale": [rng.randrange(-3, 4) for _ in range(n)],
        "th": [rng.randrange(0, 2000) for _ in range(n)],
    }
    ref = simulate_reference(build_example1(), inputs, max_iterations=50)
    out = simulate_schedule(schedule, inputs, max_iterations=50)
    assert out.output("pixel") == ref.output("pixel")
    print(f"\nsimulation: {out.iterations} iterations in {out.cycles} "
          f"cycles, outputs match the reference interpreter")

    print(f"\ngenerated {len(ctx.rtl.splitlines())} lines of Verilog; "
          f"first lines:")
    for line in ctx.rtl.splitlines()[:12]:
        print("   ", line)


if __name__ == "__main__":
    main()
