"""The Python-subset frontend, end to end.

A kernel written as a plain Python function is compiled through
``pyfront``, scheduled under the calibrated 90 nm library, and its
cycle-accurate simulation is checked bit-for-bit against executing the
very same function under CPython -- the frontend's defining property:
**the source is its own oracle**.

Run:  PYTHONPATH=src python examples/pyfront_demo.py
"""

from __future__ import annotations

from repro.core.scheduler import schedule_region
from repro.frontend.pyfront import compile_python_function
from repro.sim import simulate_schedule
from repro.tech import artisan90
from repro.workloads import PYFUNC_REGISTRY, check_against_oracle

TAPS = [1, 4, 6, 4, 1]
SAMPLES = [3, -1, 4, 1, -5, 9, 2, 6, -5, 3, 5, -8, 9, 7, 9, 3]


def smooth(x: "i32[16]", taps: "i32[5]", out: "i32[16]") -> int:
    """A 5-tap binomial smoother with saturation -- loops, arrays,
    helper-free Python that is also valid hardware."""
    acc = 0
    for i in range(16):
        s = 0
        for k in range(5):
            j = i + k - 2
            if j < 0:
                j = 0
            if j > 15:
                j = 15
            s = s + taps[k] * x[j]
        y = s // 16
        if y > 127:
            y = 127
        if y < -128:
            y = -128
        out[i] = y
        acc = acc + y
    return acc


def main() -> None:
    library = artisan90()

    # 1. compile: the function body lowers through RegionBuilder
    loop = compile_python_function(
        smooth, arrays={"x": SAMPLES, "taps": TAPS, "out": [0] * 16})
    region = loop.region
    print(f"compiled {region.name}: {len(region.dfg.ops)} ops, "
          f"trip count {region.trip_count}")

    # 2. schedule + simulate the finished machine, cycle by cycle
    schedule = schedule_region(region, library, 1600.0)
    sim = simulate_schedule(schedule, {})
    print(f"scheduled: latency {schedule.latency}, "
          f"area {schedule.area:.0f} um^2, sim {sim.cycles} cycles")

    # 3. the oracle is the function itself
    x = list(SAMPLES)
    out = [0] * 16
    expected = smooth(x, list(TAPS), out)
    got = sim.output("ret")[-1]
    assert got == expected, (got, expected)
    assert sim.memories["out"] == out, sim.memories["out"]
    print(f"oracle check: return {got} == CPython {expected}, "
          f"out[] matches ({out[:8]}...)")

    # 4. the registered CHStone-class kernels do the same, by name
    for name in ("adpcm", "jpeg_dct", "mips"):
        workload = PYFUNC_REGISTRY[name]
        sched = schedule_region(workload.build(), library, 1600.0)
        report = check_against_oracle(workload, sched)
        assert report["ok"], report
        print(f"{name:>9}: latency {sched.latency:>2}, "
              f"value {report['value']} == oracle, "
              f"{report['cycles']} cycles")


if __name__ == "__main__":
    main()
