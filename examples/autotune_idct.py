"""Goal-directed autotuning of the paper's IDCT kernel.

The Figure 10 experiment, inverted: instead of sweeping the whole
microarchitecture x clock grid and eyeballing the Pareto chart, state
the goal -- "delay under 26 ns, minimize area" -- and let the
strategies find the winner.  The exhaustive baseline evaluates all 25
grid points; greedy and bisect reach the same winner in a fraction of
the evaluations, and a persistent result store makes the second run
synthesis-free.

Run:  PYTHONPATH=src python examples/autotune_idct.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.dse import Goal, ResultStore, tune
from repro.tech import artisan90
from repro.workloads.idct import build_idct8


def main() -> None:
    library = artisan90()
    goal = Goal.build(objective="area", delay_ps=26000.0)
    print(f"kernel idct8, library {library.name}")
    print(f"goal: {goal.describe()}\n")

    reports = {}
    for strategy in ("exhaustive", "bisect", "greedy", "halving"):
        reports[strategy] = tune(build_idct8, library, goal,
                                 strategy=strategy)
    baseline = reports["exhaustive"]
    print(f"{'strategy':<11} {'evals':>5}  winner")
    for strategy, report in reports.items():
        w = report.winner
        print(f"{strategy:<11} {report.evaluated:>2}/{report.grid_size}"
              f"  {w.label}: delay {w.delay_ps:.0f} ps, "
              f"area {w.area:.0f}")
        assert w.area == baseline.winner.area, "strategies must agree"

    print("\ngreedy trace:")
    print(reports["greedy"].table())

    # the persistent store: a second run (or process) is synthesis-free
    store_path = Path(tempfile.mkdtemp()) / "idct.jsonl"
    cold = tune(build_idct8, library, goal, strategy="greedy",
                store=ResultStore(store_path))
    warm = tune(build_idct8, library, goal, strategy="greedy",
                store=ResultStore(store_path))
    print(f"\nwarm start via {store_path.name}: "
          f"cold run {cold.fresh_evaluations} fresh evaluations, "
          f"warm run {warm.fresh_evaluations} "
          f"({warm.store_hits} store hits, "
          f"{cold.elapsed_s / max(warm.elapsed_s, 1e-9):.0f}x faster)")
    assert warm.fresh_evaluations == 0


if __name__ == "__main__":
    main()
