"""The behavioral frontend: from source text to pipelined RTL.

Compiles a SystemC-like source (the paper's Figure 1 in the
mini-language), runs the optimizer, pipelines the loop per its
``@pipeline`` attribute, and verifies behaviour -- the full flow of the
paper's Figure 2 in one script.

Run:  python examples/language_frontend.py
"""

import random

from repro import artisan90, generate_verilog, pipeline_loop
from repro import simulate_reference, simulate_schedule
from repro.cdfg.transforms import optimize
from repro.frontend import compile_source

SOURCE = """
// A decimating scaled accumulator in the mini-language.
module decimator {
    in  int<32> sample, gain;
    out int<32> word;

    thread main {
        int acc = 0;
        @latency(1, 6) @pipeline(2)
        do {
            int scaled = sample * gain;
            acc = acc + scaled;
            if (acc > 1 << 20) {
                acc = acc >> 1;
            }
            word = acc * 3;
        } while (scaled != 0);
    }
}
"""


def main() -> None:
    library = artisan90()
    (loop,) = compile_source(SOURCE)
    region = loop.region
    print(f"elaborated {region.name}: {len(region.dfg)} operations, "
          f"pipeline II={loop.pipeline.ii}")

    stats = optimize(region)
    applied = {k: v for k, v in stats.items() if v}
    print(f"optimizer: {applied or 'nothing to do'}")

    result = pipeline_loop(region, library, 1600.0, ii=loop.pipeline.ii)
    schedule = result.schedule
    print(f"\nscheduled: LI={schedule.latency}, II={result.ii}, "
          f"stages={result.stages}, area={schedule.area:.0f}")
    print()
    print(schedule.table())

    rng = random.Random(5)
    n = 10
    inputs = {
        "sample": [rng.randrange(1, 99) for _ in range(n - 1)] + [0],
        "gain": [rng.randrange(1, 9) for _ in range(n)],
    }
    ref = simulate_reference(region, inputs, max_iterations=40)
    out = simulate_schedule(schedule, inputs, max_iterations=40)
    assert out.output("word") == ref.output("word")
    print(f"\nsimulated {out.iterations} iterations in {out.cycles} cycles "
          f"-- outputs match the source semantics")

    rtl = generate_verilog(schedule, result.folded)
    print(f"emitted {len(rtl.splitlines())} lines of Verilog "
          f"(module {region.name})")


if __name__ == "__main__":
    main()
