"""The behavioral frontend: from source text to pipelined RTL.

Compiles a SystemC-like source (the paper's Figure 1 in the
mini-language) through the unified ``verilog`` flow -- parse/elaborate,
optimize, schedule at the ``@pipeline`` II, fold, emit RTL -- and
verifies behaviour: the full flow of the paper's Figure 2 in one call.

Run:  python examples/language_frontend.py
"""

import random

from repro import artisan90, simulate_reference, simulate_schedule
from repro.flow import run_flow

SOURCE = """
// A decimating scaled accumulator in the mini-language.
module decimator {
    in  int<32> sample, gain;
    out int<32> word;

    thread main {
        int acc = 0;
        @latency(1, 6) @pipeline(2)
        do {
            int scaled = sample * gain;
            acc = acc + scaled;
            if (acc > 1 << 20) {
                acc = acc >> 1;
            }
            word = acc * 3;
        } while (scaled != 0);
    }
}
"""


def main() -> None:
    library = artisan90()
    ctx = run_flow("verilog", source=SOURCE, library=library,
                   clock_ps=1600.0)
    assert not ctx.failed, [str(d) for d in ctx.errors]
    region = ctx.region
    print(f"elaborated {region.name}: {len(region.dfg)} operations, "
          f"pipeline II={ctx.pipeline.ii}")

    applied = {k: v for k, v in (ctx.opt_report or {}).items() if v}
    print(f"optimizer: {applied or 'nothing to do'}")
    print("pass timings:",
          {name: f"{sec * 1e3:.1f} ms"
           for name, sec in ctx.timing_summary().items()})

    schedule = ctx.schedule
    print(f"\nscheduled: LI={schedule.latency}, II={ctx.folded.ii}, "
          f"stages={ctx.folded.n_stages}, area={schedule.area:.0f}")
    print()
    print(schedule.table())

    rng = random.Random(5)
    n = 10
    inputs = {
        "sample": [rng.randrange(1, 99) for _ in range(n - 1)] + [0],
        "gain": [rng.randrange(1, 9) for _ in range(n)],
    }
    ref = simulate_reference(region, inputs, max_iterations=40)
    out = simulate_schedule(schedule, inputs, max_iterations=40)
    assert out.output("word") == ref.output("word")
    print(f"\nsimulated {out.iterations} iterations in {out.cycles} cycles "
          f"-- outputs match the source semantics")

    print(f"emitted {len(ctx.rtl.splitlines())} lines of Verilog "
          f"(module {region.name})")


if __name__ == "__main__":
    main()
