"""Microarchitecture exploration: sequential vs II=2 vs II=1 (Table 3).

Schedules the paper's Example 1 in all three microarchitectures, prints
the area/throughput trade-off table, shows the folded pipeline kernels
(the paper's Figure 5 view) and cross-checks cycle-accurate behaviour.

Run:  python examples/pipeline_explorer.py
"""

import random

from repro import artisan90, pipeline_loop, schedule_region
from repro import simulate_reference, simulate_schedule
from repro.rtl.reports import format_table
from repro.workloads import build_example1


def main() -> None:
    library = artisan90()
    clock = 1600.0

    sequential = schedule_region(build_example1(), library, clock)
    p2 = pipeline_loop(build_example1(), library, clock, ii=2)
    p1 = pipeline_loop(build_example1(), library, clock, ii=1)

    rows = []
    for label, schedule in [("Sequential (S)", sequential),
                            ("Pipelined II=2 (P2)", p2.schedule),
                            ("Pipelined II=1 (P1)", p1.schedule)]:
        rows.append([
            label,
            schedule.ii_effective,
            schedule.latency,
            schedule.n_stages,
            round(schedule.area),
            round(schedule.delay_ps),
        ])
    print(format_table(
        ["microarchitecture", "cycles/iter", "LI", "stages", "area",
         "delay (ps)"], rows))

    print("\nPipelined II=2 kernel (Figure 5 view):")
    print(p2.folded.stage_table())
    print("\nPipelined II=1 kernel:")
    print(p1.folded.stage_table())
    print("\nII=1 relaxation history:", "; ".join(p1.schedule.actions_taken))

    rng = random.Random(11)
    n = 12
    inputs = {
        "mask": [rng.randrange(1, 60) for _ in range(n - 1)] + [0],
        "chrome": [rng.randrange(1, 60) for _ in range(n)],
        "scale": [rng.randrange(-4, 5) for _ in range(n)],
        "th": [rng.randrange(0, 2500) for _ in range(n)],
    }
    ref = simulate_reference(build_example1(), inputs, max_iterations=40)
    print("\ncycle-accurate check:")
    for label, schedule in [("S", sequential), ("P2", p2.schedule),
                            ("P1", p1.schedule)]:
        out = simulate_schedule(schedule, inputs, max_iterations=40)
        ok = out.output("pixel") == ref.output("pixel")
        print(f"  {label}: {out.iterations} iterations, {out.cycles} cycles "
              f"-> {'MATCH' if ok else 'MISMATCH'}")
        assert ok


if __name__ == "__main__":
    main()
