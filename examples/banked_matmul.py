"""Quickstart for the memory subsystem: banked dot-product pipelining.

The memory-backed matmul keeps its vectors in on-chip RAM.  Each
iteration issues K loads per array, so a single-bank single-port RAM
bounds the initiation interval from below by K; cyclic banking by K
gives every load a private bank and restores II=1 (the classic
unroll-plus-partition transformation).  This script schedules the same
kernel at several RAM geometries, verifies each against the reference
interpreter, and prints the resulting II / area trade-off.

Run:  python examples/banked_matmul.py
"""

from repro import artisan90, simulate_reference, simulate_schedule
from repro.cdfg import PipelineSpec
from repro.core.schedule import ScheduleError
from repro.core.scheduler import SchedulerOptions, schedule_region
from repro.workloads import build_dot_product_mem

K = 2
CLOCK_PS = 1600.0


def best_ii(library, options, **geometry):
    """Smallest feasible II for one RAM geometry (brute-force probe)."""
    for ii in (1, 2, 4):
        try:
            schedule = schedule_region(
                build_dot_product_mem(k=K, **geometry), library, CLOCK_PS,
                pipeline=PipelineSpec(ii=ii), options=options)
            return ii, schedule
        except ScheduleError:
            continue
    raise SystemExit("no feasible II -- should not happen")


def main() -> None:
    library = artisan90()
    # pin the declared banking: the point is to *see* port starvation,
    # not have the relaxation driver bank it away behind our back
    options = SchedulerOptions(allow_banking=False)

    reference = simulate_reference(build_dot_product_mem(k=K), {})
    print(f"memory-backed dot product, K={K}, Tclk={CLOCK_PS:.0f} ps")
    print(f"{'geometry':<28} {'II':>3} {'latency':>8} {'area':>9}")
    for label, geometry in [
        ("1 bank, single-port", dict(banks=1, ports=1)),
        ("1 bank, dual-port", dict(banks=1, ports=2)),
        (f"{K} banks, single-port", dict(banks=K, ports=1)),
    ]:
        ii, schedule = best_ii(library, options, **geometry)
        out = simulate_schedule(schedule, {})
        assert out.output("y") == reference.output("y"), label
        assert out.memories["res"] == reference.memories["res"], label
        print(f"{label:<28} {ii:>3} {schedule.latency:>8} "
              f"{schedule.area:>9.0f}")
    print("\nevery geometry matches the reference interpreter; banking "
          "(or a second port)\nbuys back the II the port constraint "
          "took away.")


if __name__ == "__main__":
    main()
