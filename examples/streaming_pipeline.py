"""Quickstart for the dataflow layer: a FIFO-connected two-stage pipeline.

Builds the matmul+ReLU streaming pipeline (a dot-product accumulator
pushing partial sums through a typed FIFO channel into a ReLU stage),
compiles each stage independently through the flow engine, verifies the
composition against its pure-python oracle in both simulators, and then
walks the channel-depth axis to show the three facts that make bounded
streaming work:

* steady-state II is the *slowest stage's* II -- channels buffer, they
  do not accelerate;
* the analyzed minimum depth is exactly the shallowest stall-free FIFO;
* below it, blocking back-pressure costs real cycles (and depth 0
  deadlocks outright).

Run:  python examples/streaming_pipeline.py
"""

from repro import artisan90
from repro.dataflow import (
    compile_pipeline,
    simulate_pipeline_machine,
    simulate_pipeline_reference,
)
from repro.flow import FlowCache
from repro.sim.reference import SimulationError
from repro.workloads import (
    build_matmul_relu_stream,
    matmul_relu_inputs,
    reference_matmul_relu_stream,
)

K, TRIP, CLOCK_PS = 2, 16, 1600.0


def main() -> None:
    library = artisan90()
    cache = FlowCache()
    inputs = matmul_relu_inputs(K, TRIP)

    composed = compile_pipeline(build_matmul_relu_stream(K, TRIP),
                                library, CLOCK_PS, cache=cache)
    print(f"matmul_relu_stream @ {CLOCK_PS:.0f} ps")
    print(composed.table())

    # pure-python oracle vs both simulators
    a_rows = [[inputs[f"a{i}"][j] for i in range(K)] for j in range(TRIP)]
    b_rows = [[inputs[f"b{i}"][j] for i in range(K)] for j in range(TRIP)]
    oracle = reference_matmul_relu_stream(K, a_rows, b_rows)
    tokens = simulate_pipeline_reference(
        build_matmul_relu_stream(K, TRIP), inputs)
    machine = simulate_pipeline_machine(composed, inputs)
    assert tokens.output("y") == oracle, "token oracle mismatch"
    assert machine.output("y") == oracle, "machine mismatch"
    print(f"\nboth simulators match the oracle "
          f"({machine.cycles} cycles, {machine.stalled_cycles} stalled)")

    # the channel-depth axis
    min_depth = composed.min_depths["s"]
    print(f"\nchannel 's': analyzed minimum depth {min_depth}")
    print(f"{'depth':>6} {'cycles':>9} {'producer stalls':>16}")
    for depth in (0, min_depth - 1, min_depth, min_depth + 4):
        if depth < 0:
            continue
        pipe = build_matmul_relu_stream(K, TRIP)
        pipe.set_depth("s", depth)
        point = compile_pipeline(pipe, library, CLOCK_PS, cache=cache)
        try:
            run = simulate_pipeline_machine(point, inputs)
            stalls = run.stage_results["dot"].stalled_cycles
            print(f"{depth:>6} {run.cycles:>9} {stalls:>16}")
        except SimulationError:
            print(f"{depth:>6} {'deadlock':>9} {'-':>16}")

    print("\nback-pressure rate-matches every stage to the slowest one: "
          "deepening the\nFIFO never improves II, undersizing it stalls "
          "the producer, and an\nunbuffered channel deadlocks.")


if __name__ == "__main__":
    main()
