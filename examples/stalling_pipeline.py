"""Stalling loops: pipelines that wait for the outside world.

Section V of the paper: "Nested loops must either be unrolled or
correspond to the 'stalling' of the pipeline (waiting for an external
condition).  The stalling loops are ignored during the scheduling passes
and inserted back in the CFG during the fold back step ... no stage must
be active while the stalling condition is true."

This example builds a pipelined accumulator with a back-pressure stall
point, folds it, shows the stall position survive to the kernel, and
simulates the pipeline freezing.

Run:  python examples/stalling_pipeline.py
"""

from repro import artisan90, pipeline_loop, simulate_schedule
from repro.cdfg import RegionBuilder


def build_region():
    b = RegionBuilder("stall_demo", is_loop=True, max_latency=8)
    x = b.read("x", 32)
    ready = b.read("downstream_ready", 1)
    stall = b.stall_on(ready, name="backpressure")
    acc = b.loop_var("acc", b.const(0, 32))
    nxt = b.add(acc, b.mul(x, 3))
    acc.set_next(nxt)
    b.write("y", nxt)
    b.set_trip_count(6)
    return b.build(), stall


def main() -> None:
    library = artisan90()
    region, stall = build_region()
    result = pipeline_loop(region, library, 1600.0, ii=1)
    print(f"pipelined at II={result.ii}, LI={result.schedule.latency}, "
          f"stages={result.stages}")
    print("\nkernel with the stall point folded back:")
    print(result.folded.stage_table())
    print(f"stall positions (stage, kernel state): "
          f"{result.folded.stall_positions}")

    inputs = {"x": [1, 2, 3, 4, 5, 6], "downstream_ready": [0] * 6}
    free = simulate_schedule(result.schedule, inputs)
    # the consumer blocks for 4 cycles on iterations 2 and 4
    stalled = simulate_schedule(result.schedule, inputs,
                                stall_ticks={stall.uid: [0, 0, 4, 0, 4, 0]})
    print(f"\nwithout back-pressure: {free.cycles} cycles")
    print(f"with back-pressure   : {stalled.cycles} cycles "
          f"({stalled.stalled_cycles} stalled)")
    assert stalled.output("y") == free.output("y")
    print("outputs identical -- stalling freezes, never corrupts")


if __name__ == "__main__":
    main()
