"""Design-space exploration of the IDCT (Figures 10 and 11).

Sweeps the paper's five microarchitectures (non-pipelined 8/16/32,
pipelined 16/32) across clock periods through the unified compilation
pipeline: the parallel executor fans the 25 HLS runs over worker
threads, the content-addressed cache makes the (deliberate) second
sweep near-free, and infeasible grid points are reported instead of
silently dropped.  The paper's key observation -- the bottom-left
Pareto corner is reachable only by pipelining -- falls out of the
table.

Run:  python examples/idct_pareto.py
"""

from repro.explore import group_by_microarch, pareto_front
from repro.flow import FlowCache, run_sweep
from repro.rtl.reports import format_table, pareto_header
from repro.tech import artisan90
from repro.workloads.idct import build_idct8


def main() -> None:
    library = artisan90()
    cache = FlowCache()
    print("Running the 25-point HLS sweep (5 microarchitectures x 5 "
          "clocks, 4 workers)...")
    result = run_sweep(build_idct8, library, jobs=4, cache=cache)
    points = result.points

    print(f"\n{len(points)} of {result.total} configurations feasible "
          f"in {result.elapsed_s:.2f} s")
    for q in result.infeasible:
        print(f"  {q.describe()}")
    print()
    for name, curve in group_by_microarch(points).items():
        print(f"--- {name} ---")
        print(format_table(pareto_header(), [p.row() for p in curve]))
        print()

    front = pareto_front(points, x="delay_ps", y="area")
    print("Area/delay Pareto front:")
    print(format_table(pareto_header(), [p.row() for p in front]))

    best = min(points, key=lambda p: (p.delay_ps, p.area))
    print(f"\nbest-delay point: {best.microarch} @ {best.clock_ps:.0f} ps "
          f"(delay {best.delay_ps:.0f} ps, area {best.area:.0f}, "
          f"power {best.power_mw:.2f} mW)")
    if best.microarch.startswith("Pipelined"):
        print("-> as in the paper, the bottom-left corner is pipelined, "
              "and it pays a power premium (Figure 11).")

    rerun = run_sweep(build_idct8, library, jobs=4, cache=cache)
    print(f"\ncached re-sweep: {rerun.elapsed_s:.3f} s "
          f"({rerun.cache_hits} cache hits; first run "
          f"{result.elapsed_s:.2f} s)")


if __name__ == "__main__":
    main()
