"""Baseline schedulers the paper's approach is compared against."""

from repro.baselines.asap_list import NaiveResult, asap_list_schedule
from repro.baselines.modulo import ModuloFailure, ModuloResult, modulo_schedule

__all__ = [
    "ModuloFailure",
    "ModuloResult",
    "NaiveResult",
    "asap_list_schedule",
    "modulo_schedule",
]
