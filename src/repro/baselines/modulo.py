"""Iterative modulo scheduling baseline (Rau, MICRO 1994).

The classic software-pipelining formulation the paper contrasts with:
operation latencies are *quantized to whole cycles* (no combinational
chaining, no knowledge of sharing multiplexers), the kernel is found by
height-priority placement into a modulo reservation table with eviction
backtracking, and binding happens afterwards.

Running the result through this project's detailed timing model shows the
two weaknesses the paper calls out: longer latency intervals (every
operation burns a full cycle) and post-binding slack surprises once the
sharing muxes the scheduler never saw are added.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdfg.ops import Operation, OpKind
from repro.cdfg.region import Region
from repro.core.allocation import type_key_for
from repro.tech.library import Library
from repro.tech.resources import ResourceInstance, ResourcePool
from repro.timing.engine import CandidateTiming, TimingEngine
from repro.timing.sta import verify_timing


class ModuloFailure(RuntimeError):
    """No schedule found within the II range / budget."""


@dataclass
class ModuloResult:
    """Outcome of modulo scheduling + naive binding."""

    region: Region
    ii: int
    latency: int
    states: Dict[int, int]            # op uid -> start cycle
    pool: ResourcePool
    netlist: TimingEngine
    wns_ps: float

    @property
    def timing_met(self) -> bool:
        """Whether the post-binding audit met the clock."""
        return self.wns_ps >= -1e-9


def _cycle_latency(op: Operation, library: Library,
                   clock_ps: float) -> int:
    """Whole-cycle operation latency (the baseline's timing model)."""
    if op.is_free:
        return 0
    if op.is_io or op.kind is OpKind.STALL:
        return 1
    if op.is_mux:
        return 1
    delay = library.typical(op.kind, op.resource_width).delay_ps
    return max(1, math.ceil(
        (library.ff.clk_to_q_ps + delay + library.ff.setup_ps) / clock_ps))


def _heights(region: Region, lat: Dict[int, int], ii: int) -> Dict[int, float]:
    """Rau's height priority: longest path to any sink, II-adjusted."""
    heights: Dict[int, float] = {}
    order = region.dfg.topological_order()
    for op in reversed(order):
        best = 0.0
        for edge in region.dfg.out_edges(op.uid):
            succ_height = heights.get(edge.dst, 0.0)
            best = max(best, succ_height + lat[op.uid] - edge.distance * ii)
        heights[op.uid] = best
    return heights


def modulo_schedule(
    region: Region,
    library: Library,
    clock_ps: float,
    ii_min: int = 1,
    ii_max: int = 64,
    budget_ratio: int = 16,
) -> ModuloResult:
    """Find the smallest feasible II and its kernel, then bind naively."""
    dfg = region.dfg
    schedulable = [op for op in dfg.ops if not op.is_free]
    lat = {op.uid: _cycle_latency(op, library, clock_ps)
           for op in dfg.ops}
    # resource MII: demand / available per type (one instance per type
    # times the allocation the binder will create below)
    counts: Dict[Tuple[str, int], int] = {}
    for op in schedulable:
        key = type_key_for(op, library)
        if key is not None:
            counts[key] = counts.get(key, 0) + 1
    for ii in range(max(ii_min, 1), ii_max + 1):
        states = _try_ii(region, lat, ii, counts, budget_ratio)
        if states is not None:
            return _bind(region, library, clock_ps, ii, states, counts)
    raise ModuloFailure(
        f"{region.name}: no modulo schedule up to II={ii_max}")


def _try_ii(region: Region, lat: Dict[int, int], ii: int,
            counts: Dict[Tuple[str, int], int],
            budget_ratio: int) -> Optional[Dict[int, int]]:
    """One iterative modulo scheduling attempt at a fixed II."""
    dfg = region.dfg
    schedulable = [op for op in dfg.ops if not op.is_free]
    #: instances available per type: enough that sharing is plausible
    avail = {key: max(1, math.ceil(n / ii)) for key, n in counts.items()}
    heights = _heights(region, lat, ii)
    order = sorted(schedulable, key=lambda o: (-heights[o.uid], o.uid))
    states: Dict[int, int] = {}
    mrt: Dict[Tuple[Tuple[str, int], int], int] = {}
    budget = budget_ratio * len(schedulable)
    never_scheduled = {op.uid: 0 for op in schedulable}
    from repro.tech import artisan90  # type key only; any library works

    queue = list(order)
    while queue:
        if budget <= 0:
            return None
        budget -= 1
        op = queue.pop(0)
        estart = 0
        for edge in dfg.in_edges(op.uid):
            src = dfg.op(edge.src)
            if src.is_free or edge.src not in states:
                continue
            estart = max(estart,
                         states[edge.src] + lat[edge.src]
                         - edge.distance * ii)
        estart = max(estart, 0)
        if op.pinned_state is not None:
            estart = op.pinned_state
        key = None
        try:
            key = type_key_for(op, _LIB_SINGLETON)
        except KeyError:
            key = None
        placed = False
        for t in range(estart, estart + ii):
            if key is None or mrt.get((key, t % ii), 0) < avail[key]:
                _place(op, t, states, mrt, key, ii)
                placed = True
                break
        if not placed:
            # force at estart, evicting the conflicting occupants
            t = max(estart, never_scheduled[op.uid] + 1)
            evicted = [uid for uid, s in states.items()
                       if uid != op.uid
                       and _same_slot(dfg, uid, s, key, t, ii)]
            for uid in evicted:
                _unplace(dfg.op(uid), states, mrt, key, ii)
                queue.append(dfg.op(uid))
            _place(op, t, states, mrt, key, ii)
            never_scheduled[op.uid] = t
        # dependents scheduled earlier than allowed get evicted
        for edge in dfg.out_edges(op.uid):
            dst = edge.dst
            if dst in states and edge.distance == 0:
                if states[dst] < states[op.uid] + lat[op.uid]:
                    dst_op = dfg.op(dst)
                    dkey = type_key_for(dst_op, _LIB_SINGLETON) \
                        if not dst_op.is_free else None
                    _unplace(dst_op, states, mrt, dkey, ii)
                    queue.append(dst_op)
    # check loop-carried causality
    for op in schedulable:
        for edge in dfg.in_edges(op.uid):
            if edge.distance >= 1 and edge.src in states:
                if states[edge.src] + lat[edge.src] \
                        > states[op.uid] + edge.distance * ii:
                    return None
    return states


def _same_slot(dfg, uid, s, key, t, ii) -> bool:
    op = dfg.op(uid)
    try:
        okey = type_key_for(op, _LIB_SINGLETON)
    except KeyError:
        okey = None
    return okey == key and key is not None and s % ii == t % ii


def _place(op, t, states, mrt, key, ii) -> None:
    states[op.uid] = t
    if key is not None:
        mrt[(key, t % ii)] = mrt.get((key, t % ii), 0) + 1


def _unplace(op, states, mrt, key, ii) -> None:
    t = states.pop(op.uid)
    if key is not None:
        mrt[(key, t % ii)] -= 1


def _bind(region: Region, library: Library, clock_ps: float, ii: int,
          states: Dict[int, int],
          counts: Dict[Tuple[str, int], int]) -> ModuloResult:
    """Round-robin binding, then audit with the detailed timing model."""
    dfg = region.dfg
    latency = max(states.values()) + 1 if states else 1
    pool = ResourcePool()
    insts: Dict[Tuple[str, int], List[ResourceInstance]] = {}
    for key, n in sorted(counts.items()):
        need = max(1, math.ceil(n / ii))
        insts[key] = [pool.add(library.resource_type(*key))
                      for _ in range(need)]
    netlist = TimingEngine(dfg, library, clock_ps)
    netlist.set_sharing_outlook(
        dict(counts), {key: len(v) for key, v in insts.items()})
    rr: Dict[Tuple[Tuple[str, int], int], int] = {}
    for op in dfg.topological_order():
        if op.is_free or op.uid not in states:
            continue
        t = states[op.uid]
        key = None if (op.is_io or op.is_mux
                       or op.kind is OpKind.STALL) else \
            type_key_for(op, library)
        inst = None
        if key is not None:
            candidates = insts[key]
            start = rr.get((key, t % ii), 0)
            inst = None
            for i in range(len(candidates)):
                cand = candidates[(start + i) % len(candidates)]
                if cand.is_free(op, [s for s in range(latency)
                                     if s % ii == t % ii]):
                    inst = cand
                    break
            if inst is None:
                inst = candidates[start % len(candidates)]
            rr[(key, t % ii)] = (candidates.index(inst) + 1) % len(candidates)
            inst.occupy(op, [t])
        timing = netlist.evaluate(op, inst, t, allow_multicycle=False)
        netlist.commit(op, inst, t, timing)
    report = verify_timing(netlist)
    return ModuloResult(
        region=region, ii=ii, latency=latency, states=dict(states),
        pool=pool, netlist=netlist, wns_ps=report.wns_ps)


from repro.tech import artisan90 as _mk_lib

#: type keys only depend on family names, shared across libraries.
_LIB_SINGLETON = _mk_lib()
