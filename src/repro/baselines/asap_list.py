"""Timing-blind ASAP list scheduling baseline.

The "naive formulation" contrast of the paper's section III: classic
resource-constrained list scheduling where every operation takes one
cycle (no chaining, no mux awareness) and resources are a fixed set.
Used by the ablation benches to show what the detailed timing model buys
over the textbook algorithm on the *same* resource budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cdfg.ops import Operation, OpKind
from repro.cdfg.region import Region
from repro.core.allocation import type_key_for
from repro.tech.library import Library
from repro.tech.resources import ResourcePool
from repro.timing.engine import TimingEngine
from repro.timing.sta import verify_timing


@dataclass
class NaiveResult:
    """Outcome of the timing-blind baseline."""

    region: Region
    latency: int
    states: Dict[int, int]
    pool: ResourcePool
    netlist: TimingEngine
    wns_ps: float

    @property
    def timing_met(self) -> bool:
        """Whether the post-hoc audit met the clock."""
        return self.wns_ps >= -1e-9


def asap_list_schedule(
    region: Region,
    library: Library,
    clock_ps: float,
    resource_counts: Optional[Dict[Tuple[str, int], int]] = None,
) -> NaiveResult:
    """One-cycle-per-op list scheduling with fixed resources.

    ``resource_counts`` defaults to one instance per type -- the textbook
    minimal allocation.  The result is audited with the real timing model
    afterwards; the baseline itself never looks at picoseconds.
    """
    dfg = region.dfg
    schedulable = [op for op in dfg.ops if not op.is_free]
    counts: Dict[Tuple[str, int], int] = {}
    for op in schedulable:
        key = type_key_for(op, library)
        if key is not None:
            counts.setdefault(key, 0)
    if resource_counts:
        counts.update(resource_counts)
    else:
        counts = {key: 1 for key in counts}
    pool = ResourcePool()
    insts = {key: [pool.add(library.resource_type(*key))
                   for _ in range(max(n, 1))]
             for key, n in counts.items()}

    states: Dict[int, int] = {}
    busy: Dict[Tuple[Tuple[str, int], int], int] = {}
    for op in dfg.topological_order():
        if op.is_free:
            continue
        earliest = 0
        for edge in dfg.in_edges(op.uid):
            if edge.distance:
                continue
            src = dfg.op(edge.src)
            if src.is_free:
                continue
            earliest = max(earliest, states[edge.src] + 1)
        if op.pinned_state is not None:
            earliest = max(earliest, op.pinned_state)
        key = type_key_for(op, library)
        t = earliest
        if key is not None:
            cap = len(insts[key])
            while busy.get((key, t), 0) >= cap:
                t += 1
        states[op.uid] = t
        if key is not None:
            busy[(key, t)] = busy.get((key, t), 0) + 1

    latency = max(states.values()) + 1 if states else 1
    netlist = TimingEngine(dfg, library, clock_ps)
    demand: Dict[Tuple[str, int], int] = {}
    for op in schedulable:
        key = type_key_for(op, library)
        if key is not None:
            demand[key] = demand.get(key, 0) + 1
    netlist.set_sharing_outlook(
        demand, {key: len(v) for key, v in insts.items()})
    rr: Dict[Tuple[Tuple[str, int], int], int] = {}
    for op in dfg.topological_order():
        if op.is_free:
            continue
        key = type_key_for(op, library)
        inst = None
        if key is not None:
            candidates = insts[key]
            idx = rr.get((key, states[op.uid]), 0)
            inst = candidates[idx % len(candidates)]
            rr[(key, states[op.uid])] = idx + 1
            inst.occupy(op, [states[op.uid]])
        timing = netlist.evaluate(op, inst, states[op.uid],
                                  allow_multicycle=False)
        netlist.commit(op, inst, states[op.uid], timing)
    report = verify_timing(netlist)
    return NaiveResult(region=region, latency=latency, states=states,
                       pool=pool, netlist=netlist, wns_ps=report.wns_ps)
