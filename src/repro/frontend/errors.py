"""Frontend diagnostics shared by every source language.

Both frontends (the legacy SystemC-like mini-language and the
``pyfront`` Python-subset compiler) raise :class:`FrontendError`.  The
error carries the full source position -- file, line, column -- and,
once :meth:`attach` has seen the source text, renders a caret-annotated
excerpt the way modern compilers do::

    examples/bad.py:3:13: unsupported expression: float literal
        acc = acc + 1.5
                    ^

``compile_source`` attaches the text automatically, so CLI users and
flow diagnostics always get the annotated form.
"""

from __future__ import annotations

from typing import List, Optional


class FrontendError(SyntaxError):
    """Lexing/parsing/elaboration error with a full source position.

    The constructor keeps the historical ``(message, line, column)``
    shape used throughout the legacy frontend; ``filename`` and
    ``source_text`` are attached by the compile entry points so the
    rendered diagnostic can include the offending line.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0, *,
                 filename: Optional[str] = None,
                 source_text: Optional[str] = None) -> None:
        self.raw_message = message
        self.line = line
        self.column = column
        self.filename = filename
        self.source_text = source_text
        super().__init__(self.headline())

    # ------------------------------------------------------------------
    def headline(self) -> str:
        """The one-line ``file:line:col: message`` form."""
        prefix = f"{self.filename}:" if self.filename else ""
        return f"{prefix}{self.line}:{self.column}: {self.raw_message}"

    def excerpt(self) -> List[str]:
        """Source line plus caret marker (empty without attached text)."""
        if not self.source_text or self.line < 1:
            return []
        lines = self.source_text.splitlines()
        if self.line > len(lines):
            return []
        text = lines[self.line - 1]
        caret_col = max(self.column, 1)
        return ["    " + text, "    " + " " * (caret_col - 1) + "^"]

    def render(self) -> str:
        """Headline plus caret excerpt, newline-joined."""
        return "\n".join([self.headline()] + self.excerpt())

    def attach(self, source_text: str,
               filename: Optional[str] = None) -> "FrontendError":
        """Fill in source text/filename (idempotent); returns self.

        Re-synthesizes ``args`` so ``str(exc)`` shows the filename too.
        """
        if self.source_text is None:
            self.source_text = source_text
        if self.filename is None and filename is not None:
            self.filename = filename
        self.args = (self.headline(),)
        return self
