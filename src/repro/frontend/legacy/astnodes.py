"""Abstract syntax of the behavioral mini-language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Expr:
    """Base class for expressions (line/column for diagnostics)."""

    line: int = 0
    column: int = 0


@dataclass
class NumberExpr(Expr):
    """Integer literal."""

    value: int = 0


@dataclass
class NameExpr(Expr):
    """Variable or port reference."""

    name: str = ""


@dataclass
class UnaryExpr(Expr):
    """Unary operator application (-, ~, !)."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class BinaryExpr(Expr):
    """Binary operator application."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Stmt:
    """Base class for statements."""

    line: int = 0
    column: int = 0


@dataclass
class DeclStmt(Stmt):
    """Local variable declaration: ``int<32> x = expr;``"""

    name: str = ""
    width: int = 32
    signed: bool = True
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Stmt):
    """Assignment to a variable or an output port."""

    name: str = ""
    value: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    """Conditional with optional else."""

    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WaitStmt(Stmt):
    """``wait();`` state boundary."""


@dataclass
class StallStmt(Stmt):
    """``stall while (expr);`` -- a stalling nested loop (section V)."""

    cond: Optional[Expr] = None


@dataclass
class DoWhileStmt(Stmt):
    """``do { body } while (cond);`` with optional attributes."""

    body: List[Stmt] = field(default_factory=list)
    cond: Optional[Expr] = None
    min_latency: int = 1
    max_latency: int = 64
    pipeline_ii: Optional[int] = None


@dataclass
class RepeatStmt(Stmt):
    """``repeat (N) { body }`` -- a counted loop."""

    count: int = 0
    body: List[Stmt] = field(default_factory=list)
    min_latency: int = 1
    max_latency: int = 64
    pipeline_ii: Optional[int] = None
    unroll: bool = False


@dataclass
class Port:
    """Module port declaration."""

    name: str = ""
    width: int = 32
    signed: bool = True
    direction: str = "in"


@dataclass
class Thread:
    """One SystemC-like thread: statements ending in (usually) a loop."""

    name: str = ""
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Module:
    """A parsed module."""

    name: str = ""
    ports: List[Port] = field(default_factory=list)
    threads: List[Thread] = field(default_factory=list)

    def port(self, name: str) -> Optional[Port]:
        """Look up a port by name."""
        for port in self.ports:
            if port.name == name:
                return port
        return None
