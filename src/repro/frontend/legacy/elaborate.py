"""Elaboration: AST -> schedulable regions.

This is the paper's elaboration + predicate-conversion front half: each
loop in a thread becomes a :class:`~repro.cdfg.region.Region`, variables
written across iterations become loop muxes, conditionals are fully
if-converted (branch operations carry predicates, divergent variable
versions merge through MUX operations), counted nested loops are
unrolled, and ``stall while`` markers survive to fold-back time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cdfg.builder import RegionBuilder, Value
from repro.cdfg.ops import OpKind
from repro.cdfg.region import PipelineSpec, Region
from repro.frontend.legacy.astnodes import (
    AssignStmt,
    BinaryExpr,
    DeclStmt,
    DoWhileStmt,
    Expr,
    IfStmt,
    Module,
    NameExpr,
    NumberExpr,
    Port,
    RepeatStmt,
    StallStmt,
    Stmt,
    Thread,
    UnaryExpr,
    WaitStmt,
)
from repro.frontend.errors import FrontendError

_BINARY_KINDS = {
    "+": OpKind.ADD, "-": OpKind.SUB, "*": OpKind.MUL, "/": OpKind.DIV,
    "%": OpKind.MOD, "<<": OpKind.SHL, ">>": OpKind.SHR,
    "&": OpKind.AND, "|": OpKind.OR, "^": OpKind.XOR,
    "<": OpKind.LT, ">": OpKind.GT, "<=": OpKind.LE, ">=": OpKind.GE,
    "==": OpKind.EQ, "!=": OpKind.NEQ,
    "&&": OpKind.AND, "||": OpKind.OR,
}

#: loops with at most this trip count unroll implicitly when nested.
_AUTO_UNROLL_LIMIT = 16


@dataclass
class ElaboratedLoop:
    """A region plus the pipelining directive its attributes requested."""

    region: Region
    pipeline: Optional[PipelineSpec]


def elaborate_module(module: Module) -> List[ElaboratedLoop]:
    """Elaborate every loop of every thread in a module."""
    loops: List[ElaboratedLoop] = []
    for thread in module.threads:
        loops.extend(_ThreadElaborator(module, thread).run())
    if not loops:
        raise FrontendError(f"module {module.name}: no loops to synthesize",
                            1, 1)
    return loops


def _collect_names(stmts: List[Stmt], reads: Set[str],
                   writes: Set[str]) -> None:
    for stmt in stmts:
        if isinstance(stmt, DeclStmt):
            if stmt.init is not None:
                _expr_names(stmt.init, reads)
        elif isinstance(stmt, AssignStmt):
            _expr_names(stmt.value, reads)
            writes.add(stmt.name)
        elif isinstance(stmt, IfStmt):
            _expr_names(stmt.cond, reads)
            _collect_names(stmt.then_body, reads, writes)
            _collect_names(stmt.else_body, reads, writes)
        elif isinstance(stmt, (DoWhileStmt, RepeatStmt)):
            if isinstance(stmt, DoWhileStmt):
                _expr_names(stmt.cond, reads)
            _collect_names(stmt.body, reads, writes)
        elif isinstance(stmt, StallStmt):
            _expr_names(stmt.cond, reads)


def _expr_names(expr: Optional[Expr], into: Set[str]) -> None:
    if expr is None:
        return
    if isinstance(expr, NameExpr):
        into.add(expr.name)
    elif isinstance(expr, UnaryExpr):
        _expr_names(expr.operand, into)
    elif isinstance(expr, BinaryExpr):
        _expr_names(expr.left, into)
        _expr_names(expr.right, into)


class _ThreadElaborator:
    """Walks one thread, producing a region per top-level loop."""

    def __init__(self, module: Module, thread: Thread) -> None:
        self.module = module
        self.thread = thread
        #: compile-time environment outside loops: name -> (width, value)
        self.static_env: Dict[str, Tuple[int, int]] = {}
        self.loops: List[ElaboratedLoop] = []

    def run(self) -> List[ElaboratedLoop]:
        """Process the thread body."""
        for stmt in self.thread.body:
            if isinstance(stmt, WaitStmt):
                continue
            if isinstance(stmt, DeclStmt):
                value = self._static_value(stmt.init, stmt)
                self.static_env[stmt.name] = (stmt.width, value)
            elif isinstance(stmt, AssignStmt):
                if stmt.name not in self.static_env:
                    raise FrontendError(
                        f"assignment to undeclared {stmt.name!r} outside "
                        f"a loop", stmt.line, stmt.column)
                width = self.static_env[stmt.name][0]
                self.static_env[stmt.name] = (
                    width, self._static_value(stmt.value, stmt))
            elif isinstance(stmt, (DoWhileStmt, RepeatStmt)):
                self.loops.append(self._elaborate_loop(stmt))
            else:
                raise FrontendError(
                    "only declarations, constant assignments, wait() and "
                    "loops are allowed outside loops",
                    stmt.line, stmt.column)
        return self.loops

    def _static_value(self, expr: Optional[Expr], stmt: Stmt) -> int:
        if expr is None:
            return 0
        if isinstance(expr, NumberExpr):
            return expr.value
        if isinstance(expr, NameExpr) and expr.name in self.static_env:
            return self.static_env[expr.name][1]
        if isinstance(expr, UnaryExpr) and expr.op == "-":
            return -self._static_value(expr.operand, stmt)
        raise FrontendError(
            "initializers outside loops must be compile-time constants",
            stmt.line, stmt.column)

    # ------------------------------------------------------------------
    def _elaborate_loop(self, loop: Stmt) -> ElaboratedLoop:
        index = len(self.loops)
        name = f"{self.module.name}_{self.thread.name}_loop{index}"
        builder = RegionBuilder(
            name, is_loop=True,
            min_latency=loop.min_latency, max_latency=loop.max_latency)
        walker = _LoopWalker(self.module, builder, self.static_env, loop)
        region = walker.elaborate()
        pipeline = (PipelineSpec(ii=loop.pipeline_ii)
                    if loop.pipeline_ii else None)
        return ElaboratedLoop(region=region, pipeline=pipeline)


class _LoopWalker:
    """Elaborates one loop body into a region builder."""

    def __init__(self, module: Module, builder: RegionBuilder,
                 static_env: Dict[str, Tuple[int, int]],
                 loop: Stmt) -> None:
        self.module = module
        self.b = builder
        self.loop = loop
        self.static_env = static_env
        self.env: Dict[str, Value] = {}
        self.widths: Dict[str, int] = {n: w for n, (w, _v) in
                                       static_env.items()}
        self.loop_vars: Dict[str, object] = {}
        self.port_reads: Dict[str, Value] = {}
        self.segment = 0

    # -- carried variable analysis -------------------------------------
    def _carried_names(self) -> List[str]:
        reads: Set[str] = set()
        writes: Set[str] = set()
        _collect_names(self.loop.body, reads, writes)
        if isinstance(self.loop, DoWhileStmt):
            _expr_names(self.loop.cond, reads)
        local_decls = {s.name for s in self.loop.body
                       if isinstance(s, DeclStmt)}
        carried = [n for n in sorted(writes)
                   if n in self.static_env and n not in local_decls
                   and n in reads]
        return carried

    def elaborate(self) -> Region:
        """Build the region for this loop."""
        for name in self._carried_names():
            width, init = self.static_env[name]
            lv = self.b.loop_var(name, self.b.const(init, width))
            self.loop_vars[name] = lv
            self.env[name] = lv.value
            self.widths[name] = width
        self._walk(self.loop.body)
        for name, lv in self.loop_vars.items():
            lv.set_next(self.env[name])
        if isinstance(self.loop, DoWhileStmt):
            cond = self._eval(self.loop.cond)
            self.b.exit_when_false(cond)
        else:
            self.b.set_trip_count(self.loop.count)
        self._prune_dead_loopmuxes()
        return self.b.build()

    def _prune_dead_loopmuxes(self) -> None:
        dfg = self.b.dfg
        for lv in list(self.loop_vars.values()):
            mux = lv.mux
            if not dfg.out_edges(mux.uid):
                for edge in list(dfg.in_edges(mux.uid)):
                    dfg.disconnect(edge)
                dfg.remove_op(mux)

    # -- statements ------------------------------------------------------
    def _walk(self, stmts: List[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, DeclStmt):
                self.widths[stmt.name] = stmt.width
                value = (self._eval(stmt.init) if stmt.init is not None
                         else self.b.const(0, stmt.width))
                self.env[stmt.name] = value
            elif isinstance(stmt, AssignStmt):
                self._assign(stmt)
            elif isinstance(stmt, IfStmt):
                self._if(stmt)
            elif isinstance(stmt, WaitStmt):
                self.segment += 1
            elif isinstance(stmt, StallStmt):
                self.b.stall_on(self._eval(stmt.cond))
            elif isinstance(stmt, RepeatStmt):
                self._nested_repeat(stmt)
            elif isinstance(stmt, DoWhileStmt):
                raise FrontendError(
                    "nested do/while loops must be rewritten as repeat "
                    "(unrolled) or 'stall while' (pipeline stalling)",
                    stmt.line, stmt.column)
            else:
                raise FrontendError("unsupported statement in loop",
                                    stmt.line, stmt.column)

    def _nested_repeat(self, stmt: RepeatStmt) -> None:
        if not stmt.unroll and stmt.count > _AUTO_UNROLL_LIMIT:
            raise FrontendError(
                f"nested repeat({stmt.count}) too large to auto-unroll; "
                f"mark it @unroll(1) explicitly", stmt.line, stmt.column)
        for _ in range(stmt.count):
            self._walk(stmt.body)

    def _assign(self, stmt: AssignStmt) -> None:
        port = self.module.port(stmt.name)
        value = self._eval(stmt.value)
        if port is not None:
            if port.direction != "out":
                raise FrontendError(f"cannot assign input port {port.name!r}",
                                    stmt.line, stmt.column)
            self.b.write(port.name, value)
            return
        if stmt.name not in self.widths:
            raise FrontendError(f"assignment to undeclared {stmt.name!r}",
                                stmt.line, stmt.column)
        self.env[stmt.name] = value

    def _if(self, stmt: IfStmt) -> None:
        cond = self._eval(stmt.cond)
        base_env = dict(self.env)
        with self.b.under(cond, polarity=True):
            self._walk(stmt.then_body)
        then_env = self.env
        self.env = dict(base_env)
        with self.b.under(cond, polarity=False):
            self._walk(stmt.else_body)
        else_env = self.env
        merged = dict(base_env)
        changed = {n for n in then_env if then_env.get(n) is not base_env.get(n)}
        changed |= {n for n in else_env
                    if else_env.get(n) is not base_env.get(n)}
        for name in sorted(changed):
            t_val = then_env.get(name, base_env.get(name))
            f_val = else_env.get(name, base_env.get(name))
            if t_val is None or f_val is None:
                raise FrontendError(
                    f"{name!r} assigned in only one branch without a prior "
                    f"definition", stmt.line, stmt.column)
            if t_val is f_val:
                merged[name] = t_val
            else:
                merged[name] = self.b.mux(cond, t_val, f_val,
                                          name=f"{name}_sel")
        self.env = merged

    # -- expressions -----------------------------------------------------
    def _eval(self, expr: Optional[Expr]) -> Value:
        if expr is None:
            raise FrontendError("missing expression", 0, 0)
        if isinstance(expr, NumberExpr):
            width = max(expr.value.bit_length() + 1, 2)
            return self.b.const(expr.value, min(width, 64))
        if isinstance(expr, NameExpr):
            return self._name(expr)
        if isinstance(expr, UnaryExpr):
            operand = self._eval(expr.operand)
            if expr.op == "-":
                return self.b.sub(self.b.const(0, operand.width), operand)
            if expr.op == "~":
                return self.b.xor(operand,
                                  self.b.const(-1, operand.width))
            if expr.op == "!":
                return self.b.eq(operand, self.b.const(0, operand.width))
            raise FrontendError(f"unknown unary {expr.op!r}",
                                expr.line, expr.column)
        if isinstance(expr, BinaryExpr):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            kind = _BINARY_KINDS.get(expr.op)
            if kind is None:
                raise FrontendError(f"unknown operator {expr.op!r}",
                                    expr.line, expr.column)
            return self.b._binary(kind, left, right)
        raise FrontendError("unsupported expression", expr.line, expr.column)

    def _name(self, expr: NameExpr) -> Value:
        if expr.name in self.env:
            return self.env[expr.name]
        port = self.module.port(expr.name)
        if port is not None:
            if port.direction != "in":
                raise FrontendError(
                    f"cannot read output port {port.name!r}",
                    expr.line, expr.column)
            if port.name not in self.port_reads:
                pin = 0 if self.segment == 0 else None
                with self.b.unconditional():
                    self.port_reads[port.name] = self.b.read(
                        port.name, port.width, state=pin)
            return self.port_reads[port.name]
        if expr.name in self.static_env:
            width, value = self.static_env[expr.name]
            return self.b.const(value, width)
        raise FrontendError(f"unknown name {expr.name!r}",
                            expr.line, expr.column)
