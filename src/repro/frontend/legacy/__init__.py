"""The legacy SystemC-like mini-language of the paper's Figure 1.

Kept fully working as one of the two source kinds behind
:func:`repro.frontend.compile_source`; new workloads should prefer the
:mod:`repro.frontend.pyfront` Python-subset compiler.
"""

from repro.frontend.errors import FrontendError
from repro.frontend.legacy.astnodes import Module, Port, Thread
from repro.frontend.legacy.elaborate import ElaboratedLoop, elaborate_module
from repro.frontend.legacy.lexer import Token, TokenStream, tokenize
from repro.frontend.legacy.parser import parse_source

#: frontend version tag recorded in region metadata (and therefore in
#: flow-cache fingerprints); bump when the lowering changes meaning.
LEGACY_VERSION = 1


def compile_legacy_source(source: str):
    """Parse and elaborate mini-language text -> elaborated loops."""
    loops = []
    for module in parse_source(source):
        loops.extend(elaborate_module(module))
    for loop in loops:
        loop.region.metadata.setdefault(
            "frontend", ("legacy", LEGACY_VERSION))
    return loops


__all__ = [
    "ElaboratedLoop",
    "FrontendError",
    "LEGACY_VERSION",
    "Module",
    "Port",
    "Thread",
    "Token",
    "TokenStream",
    "compile_legacy_source",
    "elaborate_module",
    "parse_source",
    "tokenize",
]
