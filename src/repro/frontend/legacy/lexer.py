"""Tokenizer for the behavioral mini-language.

The language is the SystemC subset the paper's tool consumes (Fig. 1):
modules with typed ports, threads, ``wait()`` state boundaries, do/while
loops, conditionals and integer arithmetic -- plus loop attributes
(``@latency``, ``@pipeline``) standing in for the tool's constraint files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.frontend.errors import FrontendError

KEYWORDS = {
    "module", "in", "out", "int", "uint", "thread", "do", "while", "if",
    "else", "wait", "repeat", "stall", "true", "false",
}

#: multi-character operators first so maximal munch works.
SYMBOLS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", ";", ",", "@",
]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str       # 'ident' | 'number' | 'keyword' | symbol text | 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.text!r}@{self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Turn source text into a token list ending with an ``eof`` token."""
    tokens: List[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i)
            if end == -1:
                raise FrontendError("unterminated block comment", line, column)
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
            tokens.append(Token("number", source[i:j], line, column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, column))
            column += j - i
            i = j
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token(sym, sym, line, column))
                column += len(sym)
                i += len(sym)
                break
        else:
            raise FrontendError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self, offset: int = 0) -> Token:
        """Look ahead without consuming."""
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def next(self) -> Token:
        """Consume and return the current token."""
        tok = self.peek()
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        """Consume the current token if it matches; else None."""
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        """Consume a required token or raise with position info."""
        tok = self.accept(kind, text)
        if tok is None:
            cur = self.peek()
            want = text or kind
            raise FrontendError(
                f"expected {want!r}, found {cur.text or cur.kind!r}",
                cur.line, cur.column)
        return tok

    @property
    def exhausted(self) -> bool:
        """Whether only the eof token remains."""
        return self.peek().kind == "eof"
