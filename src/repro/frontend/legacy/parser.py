"""Recursive-descent parser for the behavioral mini-language.

Grammar (informal)::

    module    := 'module' IDENT '{' port* thread* '}'
    port      := ('in'|'out') type namelist ';'
    type      := ('int'|'uint') ['<' NUMBER '>']
    thread    := 'thread' IDENT '{' stmt* '}'
    stmt      := decl | assign | if | wait | loop | stall
    decl      := type IDENT ['=' expr] ';'
    assign    := IDENT '=' expr ';'
    if        := 'if' '(' expr ')' block ['else' (block | if)]
    wait      := 'wait' '(' ')' ';'
    stall     := 'stall' 'while' '(' expr ')' ';'
    loop      := attr* ('do' block 'while' '(' expr ')' ';'
                        | 'repeat' '(' NUMBER ')' block)
    attr      := '@' IDENT '(' NUMBER [',' NUMBER] ')'
    expr      := precedence-climbing over || && | ^ & ==/!= </<=/>/>=
                 <</>> +- */ /% and unary -~!
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend.legacy.astnodes import (
    AssignStmt,
    BinaryExpr,
    DeclStmt,
    DoWhileStmt,
    Expr,
    IfStmt,
    Module,
    NameExpr,
    NumberExpr,
    Port,
    RepeatStmt,
    StallStmt,
    Stmt,
    Thread,
    UnaryExpr,
    WaitStmt,
)
from repro.frontend.legacy.lexer import FrontendError, Token, TokenStream, tokenize

#: binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    """Parses one source text into a list of modules."""

    def __init__(self, source: str) -> None:
        self.ts = TokenStream(tokenize(source))

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def parse(self) -> List[Module]:
        """Parse all modules in the source."""
        modules: List[Module] = []
        while not self.ts.exhausted:
            modules.append(self._module())
        if not modules:
            tok = self.ts.peek()
            raise FrontendError("no module found", tok.line, tok.column)
        return modules

    def _module(self) -> Module:
        self.ts.expect("keyword", "module")
        name = self.ts.expect("ident").text
        self.ts.expect("{")
        module = Module(name=name)
        while self.ts.peek().kind == "keyword" \
                and self.ts.peek().text in ("in", "out"):
            module.ports.extend(self._ports())
        while self.ts.accept("keyword", "thread"):
            module.threads.append(self._thread())
        self.ts.expect("}")
        return module

    def _ports(self) -> List[Port]:
        direction = self.ts.next().text
        width, signed = self._type()
        ports = [Port(name=self.ts.expect("ident").text, width=width,
                      signed=signed, direction=direction)]
        while self.ts.accept(","):
            ports.append(Port(name=self.ts.expect("ident").text,
                              width=width, signed=signed,
                              direction=direction))
        self.ts.expect(";")
        return ports

    def _type(self) -> Tuple[int, bool]:
        tok = self.ts.peek()
        if tok.kind != "keyword" or tok.text not in ("int", "uint"):
            raise FrontendError("expected a type", tok.line, tok.column)
        self.ts.next()
        signed = tok.text == "int"
        width = 32
        if self.ts.accept("<"):
            width = self._number()
            self.ts.expect(">")
        if not 1 <= width <= 64:
            raise FrontendError(f"width {width} out of range 1..64",
                                tok.line, tok.column)
        return width, signed

    def _number(self) -> int:
        tok = self.ts.expect("number")
        return int(tok.text, 0)

    def _thread(self) -> Thread:
        name = self.ts.expect("ident").text
        body = self._block()
        return Thread(name=name, body=body)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _block(self) -> List[Stmt]:
        self.ts.expect("{")
        stmts: List[Stmt] = []
        while not self.ts.accept("}"):
            stmts.append(self._statement())
        return stmts

    def _statement(self) -> Stmt:
        tok = self.ts.peek()
        if tok.kind == "@" or (tok.kind == "keyword"
                               and tok.text in ("do", "repeat")):
            return self._loop()
        if tok.kind == "keyword" and tok.text in ("int", "uint"):
            return self._decl()
        if tok.kind == "keyword" and tok.text == "if":
            return self._if()
        if tok.kind == "keyword" and tok.text == "wait":
            self.ts.next()
            self.ts.expect("(")
            self.ts.expect(")")
            self.ts.expect(";")
            return WaitStmt(line=tok.line, column=tok.column)
        if tok.kind == "keyword" and tok.text == "stall":
            self.ts.next()
            self.ts.expect("keyword", "while")
            self.ts.expect("(")
            cond = self._expr()
            self.ts.expect(")")
            self.ts.expect(";")
            return StallStmt(line=tok.line, column=tok.column, cond=cond)
        if tok.kind == "ident":
            name = self.ts.next().text
            self.ts.expect("=")
            value = self._expr()
            self.ts.expect(";")
            return AssignStmt(line=tok.line, column=tok.column,
                              name=name, value=value)
        raise FrontendError(f"unexpected token {tok.text or tok.kind!r}",
                            tok.line, tok.column)

    def _decl(self) -> DeclStmt:
        tok = self.ts.peek()
        width, signed = self._type()
        name = self.ts.expect("ident").text
        init: Optional[Expr] = None
        if self.ts.accept("="):
            init = self._expr()
        self.ts.expect(";")
        return DeclStmt(line=tok.line, column=tok.column, name=name,
                        width=width, signed=signed, init=init)

    def _if(self) -> IfStmt:
        tok = self.ts.expect("keyword", "if")
        self.ts.expect("(")
        cond = self._expr()
        self.ts.expect(")")
        then_body = self._block()
        else_body: List[Stmt] = []
        if self.ts.accept("keyword", "else"):
            if self.ts.peek().text == "if":
                else_body = [self._if()]
            else:
                else_body = self._block()
        return IfStmt(line=tok.line, column=tok.column, cond=cond,
                      then_body=then_body, else_body=else_body)

    def _loop(self) -> Stmt:
        attrs = {}
        while self.ts.accept("@"):
            name = self.ts.expect("ident").text
            self.ts.expect("(")
            first = self._number()
            second: Optional[int] = None
            if self.ts.accept(","):
                second = self._number()
            self.ts.expect(")")
            attrs[name] = (first, second)
        tok = self.ts.peek()
        min_lat, max_lat = 1, 64
        if "latency" in attrs:
            lo, hi = attrs["latency"]
            min_lat, max_lat = lo, (hi if hi is not None else lo)
        ii = attrs.get("pipeline", (None, None))[0]
        if self.ts.accept("keyword", "do"):
            body = self._block()
            self.ts.expect("keyword", "while")
            self.ts.expect("(")
            cond = self._expr()
            self.ts.expect(")")
            self.ts.expect(";")
            return DoWhileStmt(line=tok.line, column=tok.column, body=body,
                               cond=cond, min_latency=min_lat,
                               max_latency=max_lat, pipeline_ii=ii)
        if self.ts.accept("keyword", "repeat"):
            self.ts.expect("(")
            count = self._number()
            self.ts.expect(")")
            body = self._block()
            return RepeatStmt(line=tok.line, column=tok.column, count=count,
                              body=body, min_latency=min_lat,
                              max_latency=max_lat, pipeline_ii=ii,
                              unroll="unroll" in attrs)
        raise FrontendError("expected 'do' or 'repeat' after attributes",
                            tok.line, tok.column)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _expr(self, min_prec: int = 1) -> Expr:
        left = self._unary()
        while True:
            tok = self.ts.peek()
            prec = _PRECEDENCE.get(tok.kind)
            if prec is None or prec < min_prec:
                return left
            self.ts.next()
            right = self._expr(prec + 1)
            left = BinaryExpr(line=tok.line, column=tok.column,
                              op=tok.kind, left=left, right=right)

    def _unary(self) -> Expr:
        tok = self.ts.peek()
        if tok.kind in ("-", "~", "!"):
            self.ts.next()
            return UnaryExpr(line=tok.line, column=tok.column, op=tok.kind,
                             operand=self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        tok = self.ts.next()
        if tok.kind == "number":
            return NumberExpr(line=tok.line, column=tok.column,
                              value=int(tok.text, 0))
        if tok.kind == "keyword" and tok.text in ("true", "false"):
            return NumberExpr(line=tok.line, column=tok.column,
                              value=int(tok.text == "true"))
        if tok.kind == "ident":
            return NameExpr(line=tok.line, column=tok.column, name=tok.text)
        if tok.kind == "(":
            inner = self._expr()
            self.ts.expect(")")
            return inner
        raise FrontendError(f"unexpected token {tok.text or tok.kind!r} "
                            f"in expression", tok.line, tok.column)


def parse_source(source: str) -> List[Module]:
    """Parse source text into modules."""
    return Parser(source).parse()
