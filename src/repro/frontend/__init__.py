"""Behavioral frontends, from source text to schedulable regions.

Two source kinds hang off one entry point, :func:`compile_source`:

* the **legacy** SystemC-like mini-language of the paper's Figure 1
  (:mod:`repro.frontend.legacy`), and
* **pyfront**, an ``ast``-based compiler for a typed Python subset
  (:mod:`repro.frontend.pyfront`) whose oracle is the function itself
  running under CPython.

Both produce :class:`ElaboratedLoop` values (a region plus an optional
pipeline directive) and raise :class:`FrontendError` with full source
positions, so everything downstream is frontend-agnostic.
"""

from typing import List, Optional

from repro.frontend.errors import FrontendError
from repro.frontend.legacy import (
    ElaboratedLoop,
    Module,
    Port,
    Thread,
    Token,
    compile_legacy_source,
    elaborate_module,
    parse_source,
    tokenize,
)
from repro.frontend.pyfront import (
    compile_python_function,
    compile_python_source,
    looks_like_python,
)


def compile_source(source: str, *, filename: Optional[str] = None,
                   kind: Optional[str] = None) -> List[ElaboratedLoop]:
    """Compile source text of either kind into elaborated loops.

    ``kind`` forces ``"legacy"`` or ``"pyfront"``; when omitted the kind
    is inferred from the filename (``.py`` -> pyfront) or, failing that,
    sniffed from the text (legacy sources start with ``module``).  Any
    :class:`FrontendError` leaves with the source text attached so
    callers can print the caret-annotated diagnostic.
    """
    if kind is None:
        kind = "pyfront" if looks_like_python(source, filename) else "legacy"
    if kind not in ("legacy", "pyfront"):
        raise ValueError(f"unknown source kind {kind!r}")
    try:
        if kind == "pyfront":
            return compile_python_source(source,
                                         filename or "<pyfront>")
        return compile_legacy_source(source)
    except FrontendError as exc:
        raise exc.attach(source, filename)


__all__ = [
    "ElaboratedLoop",
    "FrontendError",
    "Module",
    "Port",
    "Thread",
    "Token",
    "compile_legacy_source",
    "compile_python_function",
    "compile_python_source",
    "compile_source",
    "elaborate_module",
    "looks_like_python",
    "parse_source",
    "tokenize",
]
