"""Behavioral frontend: the SystemC-like mini-language of the paper's
Figure 1, from text to schedulable regions."""

from repro.frontend.astnodes import Module, Port, Thread
from repro.frontend.elaborate import ElaboratedLoop, elaborate_module
from repro.frontend.lexer import FrontendError, Token, tokenize
from repro.frontend.parser import parse_source


def compile_source(source: str):
    """Parse and elaborate: source text -> list of elaborated loops."""
    loops = []
    for module in parse_source(source):
        loops.extend(elaborate_module(module))
    return loops


__all__ = [
    "ElaboratedLoop",
    "FrontendError",
    "Module",
    "Port",
    "Thread",
    "Token",
    "compile_source",
    "elaborate_module",
    "parse_source",
    "tokenize",
]
