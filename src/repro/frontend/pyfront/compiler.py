"""The pyfront lowering: Python ``ast`` -> schedulable regions.

Source model
------------
A module holds ``def``s and integer constants.  Functions that are
called by other functions are *helpers* and are inlined at their call
sites; the remaining functions are *kernels*, each lowered to one
:class:`~repro.cdfg.region.Region`:

* scalar ``int`` parameters become input ports (sampled at iteration
  start, like the legacy frontend's port reads);
* array parameters (``"i32[64]"`` annotations) and local array literals
  become on-chip memories (:class:`~repro.cdfg.memory.MemoryDecl`)
  accessed through ``load``/``store`` operations;
* the single top-level ``for``/``while`` loop becomes the region loop:
  counted ``range`` loops carry a trip count, ``while`` loops (and
  ``range`` loops with data-dependent bounds) are predicate-converted
  and exit through a do/while test;
* nested constant-``range`` loops are fully unrolled, ``if`` chains are
  if-converted exactly like the legacy elaborator;
* ``return expr`` writes the per-iteration value of ``expr`` to port
  ``ret``; the committed value of the final iteration is the function's
  return value.

Semantics are 32-bit two's complement.  ``//``/``%`` lower with a
floor-division correction and ``>>`` as an arithmetic shift so that the
hardware is bit-equal to CPython whenever intermediate values stay in
range (the oracle contract; see ``docs/FRONTEND.md``).
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cdfg.builder import LoopVar, MemoryHandle, RegionBuilder, Value
from repro.cdfg.ops import CONDITION_KINDS
from repro.cdfg.region import PipelineSpec
from repro.frontend.errors import FrontendError
from repro.frontend.legacy.elaborate import ElaboratedLoop

#: bump when the lowering changes meaning; recorded in region metadata
#: and therefore part of every flow-cache / result-store fingerprint,
#: so artifacts compiled by an older pyfront stop matching.
PYFRONT_VERSION = 1

#: default scalar width (Python ``int`` annotation).
WORD = 32

#: nested constant loops unroll up to this many iterations per loop.
UNROLL_LIMIT = 64

#: inline depth guard (catches recursion through helpers).
INLINE_DEPTH_LIMIT = 8

_ARRAY_RE = re.compile(r"^i(\d+)\[(\d+)\]$")
_SCALAR_RE = re.compile(r"^i(\d+)$")

EnvValue = Union[int, Value]


def looks_like_python(source: str, filename: Optional[str] = None) -> bool:
    """Source-kind sniffing for :func:`repro.frontend.compile_source`."""
    if filename and filename.endswith(".py"):
        return True
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "//", "/*")):
            continue
        if stripped.startswith(("def ", "@", "import ", "from ")):
            return True
        if stripped.startswith("module"):
            return False
        # first significant line decides; Python subset files start
        # with a def, a decorator or a NAME = constant binding
        return bool(re.match(r"^[A-Za-z_][A-Za-z_0-9]*\s*=", stripped))
    return False


@dataclass(frozen=True)
class _ArrayType:
    width: int
    depth: int


@dataclass(frozen=True)
class _ScalarType:
    width: int


def _parse_annotation(node: Optional[ast.expr], where: ast.AST,
                      err) -> Union[_ArrayType, _ScalarType]:
    if node is None:
        return _ScalarType(WORD)
    if isinstance(node, ast.Name) and node.id == "int":
        return _ScalarType(WORD)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.replace(" ", "")
        m = _ARRAY_RE.match(text)
        if m:
            return _ArrayType(int(m.group(1)), int(m.group(2)))
        m = _SCALAR_RE.match(text)
        if m:
            return _ScalarType(int(m.group(1)))
    raise err(where, "unsupported annotation; use int, 'iN' or 'iN[depth]'")


def _assigned_names(stmts: Sequence[ast.stmt]) -> List[str]:
    """Names (re)bound anywhere below ``stmts``, in first-seen order."""
    seen: List[str] = []

    def note(name: str) -> None:
        if name not in seen:
            seen.append(name)

    def walk(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for tgt in targets:
                    if isinstance(tgt, ast.Name):
                        note(tgt.id)
            elif isinstance(stmt, ast.For):
                if isinstance(stmt.target, ast.Name):
                    note(stmt.target.id)
                walk(stmt.body)
            elif isinstance(stmt, (ast.While,)):
                walk(stmt.body)
            elif isinstance(stmt, ast.If):
                walk(stmt.body)
                walk(stmt.orelse)
    walk(stmts)
    return seen


class _FunctionLowerer:
    """Lowers one kernel ``def`` into a region builder."""

    def __init__(self, fdef: ast.FunctionDef,
                 funcs: Dict[str, ast.FunctionDef],
                 module_consts: Dict[str, int],
                 arrays: Dict[str, Sequence[int]],
                 filename: str, source: str,
                 min_latency: int, max_latency: int) -> None:
        self.fdef = fdef
        self.funcs = funcs
        self.module_consts = dict(module_consts)
        self.arrays = dict(arrays or {})
        self.filename = filename
        self.source = source
        self.b = RegionBuilder(fdef.name, is_loop=True,
                               min_latency=min_latency,
                               max_latency=max_latency)
        #: scalar environment: name -> int (compile-time) or Value
        self.env: Dict[str, EnvValue] = {}
        self.mems: Dict[str, MemoryHandle] = {}
        self.loop_vars: Dict[str, LoopVar] = {}
        self._param_reads: Dict[str, Value] = {}
        self._inline_depth = 0

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def err(self, node: ast.AST, message: str) -> FrontendError:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0) + 1
        return FrontendError(message, line, col, filename=self.filename,
                             source_text=self.source)

    # ------------------------------------------------------------------
    # value coercion
    # ------------------------------------------------------------------
    def _to_value(self, val: EnvValue, node: ast.AST) -> Value:
        if isinstance(val, Value):
            return val
        if isinstance(val, bool):
            val = int(val)
        if isinstance(val, int):
            if not -(1 << (WORD - 1)) <= val < (1 << (WORD - 1)):
                raise self.err(node, f"constant {val} exceeds {WORD}-bit "
                                     f"two's-complement range")
            return self.b.const(val, WORD)
        raise self.err(node, f"expected an int value, got {type(val).__name__}")

    # ------------------------------------------------------------------
    # entry
    # ------------------------------------------------------------------
    def lower(self) -> ElaboratedLoop:
        self._bind_params()
        body = [s for s in self.fdef.body if not self._is_docstring(s)]
        loop_at = next((i for i, s in enumerate(body)
                        if isinstance(s, (ast.For, ast.While))), None)
        returns_value = False
        if loop_at is None:
            # straight-line function: a single-iteration "loop"
            tail = body
            if tail and isinstance(tail[-1], ast.Return):
                self._walk(tail[:-1])
                returns_value = self._emit_return(tail[-1])
            else:
                self._walk(tail)
            self.b.set_trip_count(1)
        else:
            self._prelude(body[:loop_at])
            loop = body[loop_at]
            rest = body[loop_at + 1:]
            if len(rest) > 1 or (rest and not isinstance(rest[0], ast.Return)):
                raise self.err(rest[0] if rest else loop,
                               "only a final return may follow the "
                               "top-level loop")
            if isinstance(loop, ast.For):
                self._top_for(loop)
            else:
                self._top_while(loop)
            if rest:
                returns_value = self._emit_return(rest[0])
        pipeline, _bounds = _decorator_directives(self.fdef, self.err)
        region = self.b.build()
        region.metadata["frontend"] = ("pyfront", PYFRONT_VERSION)
        region.metadata["pyfront"] = {
            "function": self.fdef.name,
            "returns_value": returns_value,
            "arrays": sorted(self.mems),
        }
        return ElaboratedLoop(region=region, pipeline=pipeline)

    @staticmethod
    def _is_docstring(stmt: ast.stmt) -> bool:
        return (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str))

    def _bind_params(self) -> None:
        args = self.fdef.args
        if (args.vararg or args.kwarg or args.kwonlyargs
                or args.posonlyargs or args.defaults):
            raise self.err(self.fdef, "kernel parameters must be plain "
                                      "positional names without defaults")
        for arg in args.args:
            ty = _parse_annotation(arg.annotation, arg, self.err)
            if isinstance(ty, _ArrayType):
                init = list(self.arrays.get(arg.arg, ()))
                if len(init) > ty.depth:
                    raise self.err(arg, f"initial contents for {arg.arg!r} "
                                        f"exceed depth {ty.depth}")
                self.mems[arg.arg] = self.b.array(
                    arg.arg, ty.depth, ty.width, init=init or None)
            else:
                value = self.b.read(arg.arg, ty.width)
                self._param_reads[arg.arg] = value
                self.env[arg.arg] = value

    def _emit_return(self, node: ast.Return) -> bool:
        if node.value is None:
            return False
        value = self._to_value(self._eval(node.value), node)
        self.b.write("ret", value, name="ret_write")
        return True

    # ------------------------------------------------------------------
    # prelude (statements before the top-level loop)
    # ------------------------------------------------------------------
    def _prelude(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                target, value = self._single_target(stmt)
                if isinstance(target, ast.Name) \
                        and self._array_literal(value) is not None:
                    init = self._array_literal(value)
                    if target.id in self.mems:
                        raise self.err(stmt, f"array {target.id!r} already "
                                             f"declared")
                    self.mems[target.id] = self.b.array(
                        target.id, len(init), WORD, init=init)
                    continue
            self._walk([stmt])

    def _array_literal(self, node: ast.expr) -> Optional[List[int]]:
        """``[c0, c1, ...]`` or ``[c] * N`` with constant elements."""
        if isinstance(node, ast.List):
            try:
                return [self._const_int(e) for e in node.elts]
            except _NotConst:
                return None
        if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult)):
            for seq, count in ((node.left, node.right),
                               (node.right, node.left)):
                if isinstance(seq, ast.List):
                    try:
                        elems = [self._const_int(e) for e in seq.elts]
                        n = self._const_int(count)
                    except _NotConst:
                        return None
                    return elems * n
        return None

    def _const_int(self, node: ast.expr) -> int:
        """Strict compile-time integer (literals and module constants)."""
        value = self._static_eval(node)
        if value is None:
            raise _NotConst()
        return value

    def _static_eval(self, node: ast.expr) -> Optional[int]:
        try:
            result = self._eval(node, static_only=True)
        except FrontendError:
            return None
        except _NotConst:
            return None
        return result if isinstance(result, int) else None

    # ------------------------------------------------------------------
    # the top-level loop
    # ------------------------------------------------------------------
    def _range_parts(self, node: ast.For) -> Tuple[EnvValue, EnvValue, int]:
        it = node.iter
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range" and not it.keywords
                and 1 <= len(it.args) <= 3):
            raise self.err(node, "for loops must iterate over range(...)")
        parts = [self._eval(a) for a in it.args]
        if len(parts) == 1:
            start, stop, step = 0, parts[0], 1
        elif len(parts) == 2:
            start, stop, step = parts[0], parts[1], 1
        else:
            start, stop, step = parts
        if not isinstance(step, int) or step == 0:
            raise self.err(node, "range step must be a nonzero constant")
        return start, stop, step

    def _loop_index(self, node: ast.For) -> str:
        if not isinstance(node.target, ast.Name):
            raise self.err(node, "loop index must be a plain name")
        return node.target.id

    def _make_loop_vars(self, body: Sequence[ast.stmt],
                        extra: Sequence[str] = ()) -> None:
        """Promote pre-loop names reassigned inside ``body`` to carried
        loop variables (the pyfront twin of the legacy carried-name
        analysis; dead loop muxes are pruned after the walk)."""
        carried = [n for n in _assigned_names(body)
                   if n in self.env and n not in extra]
        for name in carried:
            init = self._to_value(self.env[name], self.fdef)
            lv = self.b.loop_var(name, init)
            self.loop_vars[name] = lv
            self.env[name] = lv.value

    def _close_loop_vars(self) -> None:
        for name, lv in self.loop_vars.items():
            lv.set_next(self._to_value(self.env[name], self.fdef))
        self._prune_dead_loopmuxes()

    def _prune_dead_loopmuxes(self) -> None:
        dfg = self.b.dfg
        for lv in list(self.loop_vars.values()):
            mux = lv.mux
            if not dfg.out_edges(mux.uid):
                for edge in list(dfg.in_edges(mux.uid)):
                    dfg.disconnect(edge)
                dfg.remove_op(mux)

    def _top_for(self, node: ast.For) -> None:
        if node.orelse:
            raise self.err(node, "for/else is not supported")
        start, stop, step = self._range_parts(node)
        index = self._loop_index(node)
        if isinstance(start, int) and isinstance(stop, int):
            trip = len(range(start, stop, step))
            if trip < 1:
                raise self.err(node, "top-level loop has zero constant "
                                     "iterations")
            lv = self.b.loop_var(index, self.b.const(start, WORD))
            self.loop_vars[index] = lv
            self.env[index] = lv.value
            self._make_loop_vars(node.body, extra=(index,))
            self._walk(node.body)
            self.env[index] = self.b.add(lv.value, self.b.const(step, WORD),
                                         name=f"{index}_next")
            self._close_loop_vars()
            self.b.set_trip_count(trip)
            return
        # data-dependent bound: predicate-converted do/while lowering
        lv = self.b.loop_var(index, self._to_value(start, node))
        self.loop_vars[index] = lv
        self.env[index] = lv.value
        self._make_loop_vars(node.body, extra=(index,))
        stop_v = self._to_value(stop, node)
        compare = self.b.lt if step > 0 else self.b.gt
        cond = compare(lv.value, stop_v, name=f"{index}_in_range")
        body = list(node.body) + [_IndexStep(index, step, node)]
        self._predicated_body(cond, body, node)
        self.b.exit_when_false(cond)
        self._close_loop_vars()

    def _top_while(self, node: ast.While) -> None:
        if node.orelse:
            raise self.err(node, "while/else is not supported")
        self._make_loop_vars(node.body)
        cond = self._condition(node.test)
        if not isinstance(cond, Value):
            raise self.err(node, "while condition must depend on run-time "
                                 "values")
        self._predicated_body(cond, node.body, node)
        self.b.exit_when_false(cond)
        self._close_loop_vars()

    def _predicated_body(self, cond: Value, body: Sequence[ast.stmt],
                         node: ast.AST) -> None:
        """Walk ``body`` under predicate ``cond`` and merge the scalar
        environment through muxes (branchless while-loop conversion)."""
        base_env = dict(self.env)
        with self.b.under(cond, polarity=True):
            self._walk(body)
        taken = self.env
        merged = dict(base_env)
        for name in taken:
            new = taken[name]
            old = base_env.get(name)
            if old is None:
                # body-local: visible only when the loop body ran; any
                # later read without a pre-loop init is an error there
                continue
            if new is old or (isinstance(new, int) and new == old):
                merged[name] = old
            else:
                merged[name] = self.b.mux(
                    cond, self._to_value(new, node), self._to_value(old, node),
                    name=f"{name}_keep")
        self.env = merged

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, _IndexStep):
                self.env[stmt.name] = self._binop_value(
                    ast.Add(), self.env[stmt.name], stmt.step, stmt.node)
            elif self._is_docstring(stmt) or isinstance(stmt, ast.Pass):
                continue
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._assign(stmt)
            elif isinstance(stmt, ast.AugAssign):
                self._aug_assign(stmt)
            elif isinstance(stmt, ast.If):
                self._if(stmt)
            elif isinstance(stmt, ast.For):
                self._unroll_for(stmt)
            elif isinstance(stmt, ast.While):
                raise self.err(stmt, "while loops may only appear as the "
                                     "single top-level loop")
            elif isinstance(stmt, ast.Expr):
                value = stmt.value
                if isinstance(value, ast.Call):
                    self._eval_call(value, allow_void=True)
                else:
                    raise self.err(stmt, "expression statements must be "
                                         "helper calls")
            elif isinstance(stmt, ast.Return):
                raise self.err(stmt, "return must be the final statement, "
                                     "after the top-level loop")
            elif isinstance(stmt, (ast.Break, ast.Continue)):
                raise self.err(stmt, "break/continue are not supported; "
                                     "restructure with conditions")
            else:
                raise self.err(stmt, f"unsupported statement "
                                     f"{type(stmt).__name__}")

    def _single_target(self, stmt) -> Tuple[ast.expr, ast.expr]:
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                raise self.err(stmt, "annotated declarations need a value")
            return stmt.target, stmt.value
        if len(stmt.targets) != 1:
            raise self.err(stmt, "chained assignment is not supported")
        return stmt.targets[0], stmt.value

    def _assign(self, stmt) -> None:
        target, value_node = self._single_target(stmt)
        if isinstance(target, ast.Name):
            if target.id in self.mems:
                raise self.err(stmt, f"cannot rebind array {target.id!r}")
            if self._array_literal(value_node) is not None:
                raise self.err(stmt, "array literals are only allowed "
                                     "before the top-level loop")
            self.env[target.id] = self._eval(value_node)
            return
        if isinstance(target, ast.Subscript):
            mem = self._subscript_memory(target)
            addr = self._eval(target.slice)
            value = self._to_value(self._eval(value_node), stmt)
            if isinstance(addr, int):
                self.b.store(mem, value, addr=addr)
            else:
                self.b.store(mem, value, addr=addr)
            return
        raise self.err(stmt, "unsupported assignment target")

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        if isinstance(stmt.target, ast.Name):
            current = self._lookup(stmt.target.id, stmt)
            self.env[stmt.target.id] = self._binop_value(
                stmt.op, current, self._eval(stmt.value), stmt)
            return
        if isinstance(stmt.target, ast.Subscript):
            mem = self._subscript_memory(stmt.target)
            addr = self._eval(stmt.target.slice)
            loaded = self._load(mem, addr, stmt)
            updated = self._binop_value(stmt.op, loaded,
                                        self._eval(stmt.value), stmt)
            self.b.store(mem, self._to_value(updated, stmt), addr=addr)
            return
        raise self.err(stmt, "unsupported augmented-assignment target")

    def _if(self, stmt: ast.If) -> None:
        static = self._static_condition(stmt.test)
        if static is not None:
            self._walk(stmt.body if static else stmt.orelse)
            return
        cond = self._condition(stmt.test)
        base_env = dict(self.env)
        with self.b.under(cond, polarity=True):
            self._walk(stmt.body)
        then_env = self.env
        self.env = dict(base_env)
        with self.b.under(cond, polarity=False):
            self._walk(stmt.orelse)
        else_env = self.env
        merged = dict(base_env)
        changed = {n for n in then_env
                   if not _same(then_env.get(n), base_env.get(n))}
        changed |= {n for n in else_env
                    if not _same(else_env.get(n), base_env.get(n))}
        for name in sorted(changed):
            t_val = then_env.get(name, base_env.get(name))
            f_val = else_env.get(name, base_env.get(name))
            if t_val is None or f_val is None:
                raise self.err(stmt, f"{name!r} assigned in only one branch "
                                     f"without a prior definition")
            if _same(t_val, f_val):
                merged[name] = t_val
            else:
                merged[name] = self.b.mux(cond, self._to_value(t_val, stmt),
                                          self._to_value(f_val, stmt),
                                          name=f"{name}_sel")
        self.env = merged

    def _unroll_for(self, stmt: ast.For) -> None:
        if stmt.orelse:
            raise self.err(stmt, "for/else is not supported")
        start, stop, step = self._range_parts(stmt)
        if not (isinstance(start, int) and isinstance(stop, int)):
            raise self.err(stmt, "nested loops must have constant range "
                                 "bounds (only the top-level loop may be "
                                 "data-dependent)")
        index = self._loop_index(stmt)
        values = list(range(start, stop, step))
        if len(values) > UNROLL_LIMIT:
            raise self.err(stmt, f"nested range({len(values)}) exceeds the "
                                 f"unroll limit of {UNROLL_LIMIT}")
        saved = self.env.get(index, None)
        for value in values:
            self.env[index] = value
            self._walk(stmt.body)
        if saved is not None:
            self.env[index] = saved

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _lookup(self, name: str, node: ast.AST) -> EnvValue:
        if name in self.env:
            return self.env[name]
        if name in self.module_consts:
            return self.module_consts[name]
        if name in self.mems:
            raise self.err(node, f"array {name!r} used without a subscript")
        raise self.err(node, f"unknown name {name!r}")

    def _subscript_memory(self, node: ast.Subscript) -> MemoryHandle:
        if not isinstance(node.value, ast.Name):
            raise self.err(node, "only named arrays can be subscripted")
        mem = self.mems.get(node.value.id)
        if mem is None:
            raise self.err(node, f"unknown array {node.value.id!r}")
        return mem

    def _load(self, mem: MemoryHandle, addr: EnvValue,
              node: ast.AST) -> Value:
        if isinstance(addr, int):
            if not 0 <= addr < mem.decl.depth:
                raise self.err(node, f"constant index {addr} out of range "
                                     f"for {mem.name!r}[{mem.decl.depth}]")
            return self.b.load(mem, addr=addr)
        return self.b.load(mem, addr=addr)

    def _eval(self, node: ast.expr, static_only: bool = False) -> EnvValue:
        """Evaluate an expression to a compile-time int (Python
        semantics -- exact constant folding) or a DFG :class:`Value`."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return int(node.value)
            if isinstance(node.value, int):
                return node.value
            raise self.err(node, f"unsupported literal "
                                 f"{type(node.value).__name__}; the subset "
                                 f"is integer-only")
        if isinstance(node, ast.Name):
            if static_only:
                if node.id in self.module_consts:
                    return self.module_consts[node.id]
                val = self.env.get(node.id)
                if isinstance(val, int):
                    return val
                raise _NotConst()
            return self._lookup(node.id, node)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, static_only)
            right = self._eval(node.right, static_only)
            return self._binop_value(node.op, left, right, node)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, static_only)
            if isinstance(node.op, ast.USub):
                if isinstance(operand, int):
                    return -operand
                return self.b.sub(self.b.const(0, operand.width), operand)
            if isinstance(node.op, ast.UAdd):
                return operand
            if isinstance(node.op, ast.Invert):
                if isinstance(operand, int):
                    return ~operand
                return self.b.xor(operand,
                                  self.b.const(-1, operand.width))
            if isinstance(node.op, ast.Not):
                if isinstance(operand, int):
                    return int(not operand)
                return self.b.eq(operand, self.b.const(0, operand.width))
            raise self.err(node, "unsupported unary operator")
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise self.err(node, "chained comparisons are not supported")
            left = self._eval(node.left, static_only)
            right = self._eval(node.comparators[0], static_only)
            op = node.ops[0]
            if isinstance(left, int) and isinstance(right, int):
                table = {ast.Lt: left < right, ast.Gt: left > right,
                         ast.LtE: left <= right, ast.GtE: left >= right,
                         ast.Eq: left == right, ast.NotEq: left != right}
                for cls, result in table.items():
                    if isinstance(op, cls):
                        return int(result)
                raise self.err(node, "unsupported comparison")
            lowered = {ast.Lt: self.b.lt, ast.Gt: self.b.gt,
                       ast.LtE: self.b.le, ast.GtE: self.b.ge,
                       ast.Eq: self.b.eq, ast.NotEq: self.b.neq}
            for cls, fn in lowered.items():
                if isinstance(op, cls):
                    return fn(self._to_value(left, node),
                              self._to_value(right, node))
            raise self.err(node, "unsupported comparison (is/in are not "
                                 "part of the subset)")
        if isinstance(node, ast.BoolOp):
            values = [self._condition(v) for v in node.values]
            if any(isinstance(v, int) for v in values):
                # mixed static/dynamic and/or: fold the static side
                static_vals = [v for v in values if isinstance(v, int)]
                dynamic = [v for v in values if isinstance(v, Value)]
                if isinstance(node.op, ast.And):
                    if not all(static_vals):
                        return 0
                else:
                    if any(static_vals):
                        return 1
                if not dynamic:
                    return 1 if isinstance(node.op, ast.And) else 0
                values = dynamic
            result = values[0]
            combine = self.b.and_ if isinstance(node.op, ast.And) \
                else self.b.or_
            for nxt in values[1:]:
                result = combine(result, nxt)
            return result
        if isinstance(node, ast.IfExp):
            static = self._static_condition(node.test)
            if static is not None:
                return self._eval(node.body if static else node.orelse,
                                  static_only)
            cond = self._condition(node.test)
            t = self._eval(node.body, static_only)
            f = self._eval(node.orelse, static_only)
            return self.b.mux(cond, self._to_value(t, node),
                              self._to_value(f, node))
        if isinstance(node, ast.Subscript):
            if static_only:
                raise _NotConst()
            mem = self._subscript_memory(node)
            addr = self._eval(node.slice)
            return self._load(mem, addr, node)
        if isinstance(node, ast.Call):
            if static_only:
                raise _NotConst()
            result = self._eval_call(node, allow_void=False)
            assert result is not None
            return result
        raise self.err(node, f"unsupported expression "
                             f"{type(node).__name__}")

    def _static_condition(self, node: ast.expr) -> Optional[int]:
        value = self._static_eval(node)
        if value is None:
            # distinguish "not static" from "statically falsy"
            try:
                probed = self._eval(node, static_only=True)
            except (_NotConst, FrontendError):
                return None
            return int(bool(probed)) if isinstance(probed, int) else None
        return int(bool(value))

    def _condition(self, node: ast.expr) -> Union[int, Value]:
        """A 1-bit truth value (or a folded 0/1 int)."""
        value = self._eval(node)
        if isinstance(value, int):
            return int(bool(value))
        if value.width == 1 and value.op.kind in CONDITION_KINDS:
            return value
        return self.b.neq(value, self.b.const(0, value.width))

    # -- arithmetic lowering -------------------------------------------
    def _binop_value(self, op: ast.operator, left: EnvValue,
                     right: EnvValue, node: ast.AST) -> EnvValue:
        if isinstance(left, int) and isinstance(right, int):
            return self._fold_binop(op, left, right, node)
        lv = self._to_value(left, node)
        rv = self._to_value(right, node)
        if isinstance(op, ast.Add):
            return self.b.add(lv, rv)
        if isinstance(op, ast.Sub):
            return self.b.sub(lv, rv)
        if isinstance(op, ast.Mult):
            return self.b.mul(lv, rv)
        if isinstance(op, ast.FloorDiv):
            return self._floor_div(lv, rv)
        if isinstance(op, ast.Mod):
            return self._floor_mod(lv, rv)
        if isinstance(op, ast.LShift):
            return self.b.shl(lv, rv)
        if isinstance(op, ast.RShift):
            return self._arith_shift_right(lv, rv, right)
        if isinstance(op, ast.BitAnd):
            return self.b.and_(lv, rv)
        if isinstance(op, ast.BitOr):
            return self.b.or_(lv, rv)
        if isinstance(op, ast.BitXor):
            return self.b.xor(lv, rv)
        if isinstance(op, ast.Div):
            raise self.err(node, "true division is not in the subset; "
                                 "use // (floor division)")
        raise self.err(node, f"unsupported operator {type(op).__name__}")

    def _fold_binop(self, op: ast.operator, left: int, right: int,
                    node: ast.AST) -> int:
        try:
            if isinstance(op, ast.Add):
                return left + right
            if isinstance(op, ast.Sub):
                return left - right
            if isinstance(op, ast.Mult):
                return left * right
            if isinstance(op, ast.FloorDiv):
                return left // right if right else 0
            if isinstance(op, ast.Mod):
                return left % right if right else 0
            if isinstance(op, ast.LShift):
                return left << right
            if isinstance(op, ast.RShift):
                return left >> right
            if isinstance(op, ast.BitAnd):
                return left & right
            if isinstance(op, ast.BitOr):
                return left | right
            if isinstance(op, ast.BitXor):
                return left ^ right
        except ValueError as exc:  # negative shift counts
            raise self.err(node, str(exc))
        raise self.err(node, f"unsupported operator {type(op).__name__}")

    def _floor_div(self, a: Value, b: Value) -> Value:
        """Python floor division from the truncating DIV/MOD resources."""
        q = self.b.div(a, b)
        corr = self._floor_correction(self.b.mod(a, b), b)
        return self.b.sub(q, self.b.mux(corr, self.b.const(1, WORD),
                                        self.b.const(0, WORD)))

    def _floor_mod(self, a: Value, b: Value) -> Value:
        r = self.b.mod(a, b)
        corr = self._floor_correction(r, b)
        return self.b.add(r, self.b.mux(corr, b, self.b.const(0, WORD)))

    def _floor_correction(self, r: Value, b: Value) -> Value:
        """1 when truncation and floor differ: the truncating remainder
        ``r`` is nonzero and its sign disagrees with the divisor's."""
        nonzero = self.b.neq(r, self.b.const(0, r.width))
        signs = self.b.xor(self.b.lt(r, self.b.const(0, r.width)),
                           self.b.lt(b, self.b.const(0, b.width)))
        return self.b.and_(nonzero, signs)

    def _arith_shift_right(self, value: Value, shift: Value,
                           raw_shift: EnvValue) -> Value:
        """Python's ``>>`` is arithmetic; SHR resources are logical, so
        lower through :meth:`RegionBuilder.ashr`."""
        if isinstance(raw_shift, int):
            if raw_shift < 0:
                raise FrontendError("negative shift count",
                                    filename=self.filename,
                                    source_text=self.source)
            return self.b.ashr(value, raw_shift)
        return self.b.ashr(value, shift)

    # -- calls ----------------------------------------------------------
    def _eval_call(self, node: ast.Call,
                   allow_void: bool) -> Optional[EnvValue]:
        if not isinstance(node.func, ast.Name):
            raise self.err(node, "only plain function calls are supported")
        if node.keywords:
            raise self.err(node, "keyword arguments are not supported")
        name = node.func.id
        if name in ("abs", "min", "max", "len"):
            return self._builtin(name, node)
        fdef = self.funcs.get(name)
        if fdef is None:
            raise self.err(node, f"unknown function {name!r}")
        result = self._inline(fdef, node)
        if result is None and not allow_void:
            raise self.err(node, f"helper {name!r} returns no value")
        return result

    def _builtin(self, name: str, node: ast.Call) -> EnvValue:
        if name == "len":  # before arg evaluation: takes a bare array name
            if len(node.args) == 1 and isinstance(node.args[0], ast.Name) \
                    and node.args[0].id in self.mems:
                return self.mems[node.args[0].id].decl.depth
            raise self.err(node, "len() only applies to declared arrays")
        args = [self._eval(a) for a in node.args]
        if all(isinstance(a, int) for a in args):
            return {"abs": abs, "min": min, "max": max}[name](*args)
        if name == "abs" and len(args) == 1:
            v = self._to_value(args[0], node)
            neg = self.b.sub(self.b.const(0, v.width), v)
            return self.b.mux(self.b.lt(v, self.b.const(0, v.width)), neg, v)
        if name in ("min", "max") and len(args) == 2:
            a = self._to_value(args[0], node)
            c = self._to_value(args[1], node)
            test = self.b.lt(a, c) if name == "min" else self.b.gt(a, c)
            return self.b.mux(test, a, c)
        raise self.err(node, f"unsupported builtin call {name}"
                             f"({len(args)} args)")

    def _inline(self, fdef: ast.FunctionDef,
                call: ast.Call) -> Optional[EnvValue]:
        """Inline a helper call: arguments bind to a fresh scalar scope,
        arrays pass by reference, the trailing return's value is the
        call's value."""
        if self._inline_depth >= INLINE_DEPTH_LIMIT:
            raise self.err(call, f"helper inlining exceeds depth "
                                 f"{INLINE_DEPTH_LIMIT} (recursive helpers "
                                 f"are not supported)")
        params = fdef.args.args
        if len(params) != len(call.args):
            raise self.err(call, f"{fdef.name}() takes {len(params)} "
                                 f"arguments, got {len(call.args)}")
        new_env: Dict[str, EnvValue] = {}
        new_mems: Dict[str, MemoryHandle] = {}
        for param, arg in zip(params, call.args):
            ty = _parse_annotation(param.annotation, param, self.err)
            if isinstance(ty, _ArrayType) or (
                    isinstance(arg, ast.Name) and arg.id in self.mems):
                if not isinstance(arg, ast.Name) or arg.id not in self.mems:
                    raise self.err(arg, f"argument for array parameter "
                                        f"{param.arg!r} must be a declared "
                                        f"array")
                new_mems[param.arg] = self.mems[arg.id]
            else:
                new_env[param.arg] = self._eval(arg)
        saved = (self.env, self.mems)
        self.env, self.mems = new_env, new_mems
        self._inline_depth += 1
        try:
            body = [s for s in fdef.body if not self._is_docstring(s)]
            trailing_return = (body and isinstance(body[-1], ast.Return))
            self._walk(body[:-1] if trailing_return else body)
            if trailing_return and body[-1].value is not None:
                return self._eval(body[-1].value)
            return None
        finally:
            self._inline_depth -= 1
            self.env, self.mems = saved


class _NotConst(Exception):
    """Internal: expression is not a compile-time constant."""


class _IndexStep(ast.stmt):
    """Synthetic statement: advance a data-dependent loop index."""

    def __init__(self, name: str, step: int, node: ast.AST) -> None:
        self.name = name
        self.step = step
        self.node = node


def _same(a: Optional[EnvValue], b: Optional[EnvValue]) -> bool:
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    return a is b


def _decorator_directives(fdef: ast.FunctionDef, err):
    """Recognize ``@pipeline(ii)`` and ``@latency(lo, hi)`` decorators
    (anything else -- e.g. ``@pyfunc_workload`` -- is ignored)."""
    pipeline = None
    bounds = None
    for deco in fdef.decorator_list:
        if not (isinstance(deco, ast.Call)
                and isinstance(deco.func, ast.Name)):
            continue
        name = deco.func.id
        args = deco.args
        if name == "pipeline" and len(args) == 1 \
                and isinstance(args[0], ast.Constant):
            pipeline = PipelineSpec(ii=int(args[0].value))
        elif name == "latency" and len(args) == 2 \
                and all(isinstance(a, ast.Constant) for a in args):
            bounds = (int(args[0].value), int(args[1].value))
    return pipeline, bounds


# ----------------------------------------------------------------------
# module-level compilation
# ----------------------------------------------------------------------
def _module_environment(tree: ast.Module, filename: str,
                        source: str) -> Tuple[Dict[str, int],
                                              Dict[str, ast.FunctionDef]]:
    consts: Dict[str, int] = {}
    funcs: Dict[str, ast.FunctionDef] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            funcs[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            try:
                value = ast.literal_eval(stmt.value)
            except (ValueError, SyntaxError):
                raise FrontendError(
                    "module-level assignments must be integer constants",
                    stmt.lineno, stmt.col_offset + 1,
                    filename=filename, source_text=source)
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, int):
                raise FrontendError(
                    "module-level constants must be integers",
                    stmt.lineno, stmt.col_offset + 1,
                    filename=filename, source_text=source)
            consts[stmt.targets[0].id] = value
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            continue  # tolerated so workload modules stay importable
        elif isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Constant):
            continue  # module docstring
        elif isinstance(stmt, (ast.If, ast.ClassDef, ast.AnnAssign)):
            raise FrontendError(
                f"unsupported module-level statement "
                f"{type(stmt).__name__}",
                stmt.lineno, stmt.col_offset + 1,
                filename=filename, source_text=source)
    return consts, funcs


def _called_names(fdef: ast.FunctionDef) -> List[str]:
    """Function names called in the body (decorators excluded -- e.g.
    ``@pyfunc_workload(...)`` must not be mistaken for a helper)."""
    names = []
    for stmt in fdef.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name):
                names.append(node.func.id)
    return names


def _lower_kernel(fdef: ast.FunctionDef, funcs: Dict[str, ast.FunctionDef],
                  consts: Dict[str, int],
                  arrays: Optional[Dict[str, Sequence[int]]],
                  filename: str, source: str,
                  max_latency: int) -> ElaboratedLoop:
    def bail(node, message):  # uniform error builder for the helpers
        return FrontendError(message, getattr(node, "lineno", 0),
                             getattr(node, "col_offset", 0) + 1,
                             filename=filename, source_text=source)

    _pipeline, bounds = _decorator_directives(fdef, bail)
    min_latency, top_latency = bounds if bounds else (1, max_latency)
    lowerer = _FunctionLowerer(fdef, funcs, consts, arrays or {},
                               filename, source, min_latency, top_latency)
    return lowerer.lower()


def compile_python_source(
    source: str,
    filename: str = "<pyfront>",
    *,
    arrays: Optional[Dict[str, Dict[str, Sequence[int]]]] = None,
    max_latency: int = 64,
) -> List[ElaboratedLoop]:
    """Compile every kernel ``def`` of a Python-subset module.

    Functions called by other functions are helpers (inlined, not
    compiled standalone); each remaining function becomes one region.
    ``arrays`` optionally maps ``{kernel: {array_param: contents}}``.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise FrontendError(exc.msg or "invalid syntax", exc.lineno or 0,
                            exc.offset or 1, filename=filename,
                            source_text=source) from None
    consts, funcs = _module_environment(tree, filename, source)
    if not funcs:
        raise FrontendError("no function definitions found", 1, 1,
                            filename=filename, source_text=source)
    called = set()
    for fdef in funcs.values():
        called.update(n for n in _called_names(fdef) if n in funcs)
    kernels = [f for name, f in funcs.items() if name not in called]
    if not kernels:
        raise FrontendError("all functions call each other; no kernel "
                            "entry point", 1, 1, filename=filename,
                            source_text=source)
    units = []
    for fdef in kernels:
        per_kernel = (arrays or {}).get(fdef.name, {})
        units.append(_lower_kernel(fdef, funcs, consts, per_kernel,
                                   filename, source, max_latency))
    return units


def compile_python_function(
    fn: Callable,
    *,
    arrays: Optional[Dict[str, Sequence[int]]] = None,
    max_latency: int = 64,
) -> ElaboratedLoop:
    """Compile one Python function object (helpers and integer constants
    are resolved from ``fn.__globals__``)."""
    source = textwrap.dedent(inspect.getsource(fn))
    filename = inspect.getsourcefile(fn) or "<pyfront>"
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:  # pragma: no cover - inspect gave us code
        raise FrontendError(exc.msg or "invalid syntax", exc.lineno or 0,
                            exc.offset or 1, filename=filename,
                            source_text=source) from None
    fdef = tree.body[0]
    if not isinstance(fdef, ast.FunctionDef):
        raise FrontendError(f"{fn!r} is not a plain function", 1, 1,
                            filename=filename, source_text=source)
    funcs: Dict[str, ast.FunctionDef] = {fdef.name: fdef}
    consts: Dict[str, int] = {}
    pending = [fdef]
    while pending:
        current = pending.pop()
        for name in _called_names(current):
            if name in funcs or name in ("range", "abs", "min", "max",
                                         "len"):
                continue
            target = fn.__globals__.get(name)
            if not callable(target):
                continue
            helper_src = textwrap.dedent(inspect.getsource(target))
            helper_def = ast.parse(helper_src).body[0]
            if isinstance(helper_def, ast.FunctionDef):
                funcs[name] = helper_def
                pending.append(helper_def)
        for stmt in current.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Load):
                    value = fn.__globals__.get(node.id)
                    if isinstance(value, int) \
                            and not isinstance(value, bool):
                        consts.setdefault(node.id, value)
    return _lower_kernel(fdef, funcs, consts, arrays, filename, source,
                         max_latency)
