"""``pyfront``: an ``ast``-based compiler for a typed Python subset.

Workloads are written as plain Python functions -- ``def`` with int
parameters and returns, ``if``/``elif``/``else``, ``while``,
``for i in range(...)``, int locals, and int-array parameters/locals
that lower to :class:`~repro.cdfg.memory.MemoryDecl` plus
``load``/``store`` operations.  Helper calls are inlined.  The lowering
goes through the existing :class:`~repro.cdfg.builder.RegionBuilder`,
so every downstream layer (scheduler, timing engine, memory binding,
simulators, RTL, flows, DSE) consumes pyfront regions unchanged.

The decisive property of this frontend is that the **oracle is the
function itself**: the same ``def`` that compiles to hardware also runs
under CPython, and the cycle-accurate simulation of the scheduled
machine must be bit-equal to that execution (32-bit two's-complement
semantics; see ``docs/FRONTEND.md`` for the exact rules).
"""

from repro.frontend.pyfront.compiler import (
    PYFRONT_VERSION,
    compile_python_function,
    compile_python_source,
    looks_like_python,
)

__all__ = [
    "PYFRONT_VERSION",
    "compile_python_function",
    "compile_python_source",
    "looks_like_python",
]
