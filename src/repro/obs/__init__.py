"""Unified observability: structured trace spans + a metrics registry.

One substrate serves every layer.  :mod:`repro.obs.trace` provides the
span-based tracer threaded through ``CompilationContext`` (flow passes,
scheduler relaxation passes, sweep points, DSE waves, service jobs all
emit nested spans, collected across process boundaries over the
existing merge-back channels).  :mod:`repro.obs.metrics` provides the
registry -- counters, gauges, fixed-bucket histograms -- that
``repro.profiling`` now shims onto and that the service's ``/metrics``
endpoint renders in Prometheus text format.

Observation is decision-neutral by contract: a traced compilation makes
bit-identical scheduling decisions to an untraced one (pinned by the
equivalence suite) and the enabled-path overhead stays within the
budget pinned in ``benchmarks/test_obs_overhead.py``.  See
docs/OBSERVABILITY.md.
"""

from repro.obs.metrics import (  # noqa: F401
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.trace import (  # noqa: F401
    Span,
    Tracer,
    maybe_span,
    spans_to_chrome,
)
