"""Span-based structured tracing with cross-process collection.

A :class:`Tracer` records :class:`Span` entries -- named, nested,
wall-clocked, attributed -- from every layer it is threaded through:
flow passes, scheduler relaxation passes, sweep points, DSE waves,
service jobs.  Nesting is tracked per thread (the service runs several
engine threads against one tracer), and spans from worker *processes*
come home as plain dicts over the existing result channels (sweep
worker return tuples, relaxation-race return tuples, service job done
messages) via :meth:`Tracer.absorb`.

Two export formats:

* JSONL (:meth:`Tracer.to_jsonl`): one span dict per line, grep-able.
* Chrome ``trace_event`` (:meth:`Tracer.to_chrome`): complete ("X")
  events with microsecond timestamps, loadable in Perfetto or
  chrome://tracing.

The contract everywhere a tracer is accepted: ``tracer=None`` (the
default) must cost nothing but a ``None`` check, and tracing enabled
must never change a decision -- spans observe, they do not steer.  The
equivalence suite pins traced-vs-untraced schedules bit-identical and
``benchmarks/test_obs_overhead.py`` pins the enabled-path cost.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: span schema version stamped into every export.
TRACE_SCHEMA = 1


class Span:
    """One timed, attributed region of work (mutable while open)."""

    __slots__ = ("name", "span_id", "parent_id", "start", "duration",
                 "attrs", "pid", "tid", "_t0")

    def __init__(self, name: str, span_id: int,
                 parent_id: Optional[int], attrs: Dict[str, object],
                 pid: int, tid: int) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.pid = pid
        self.tid = tid
        self.start = time.time()
        self.duration = 0.0
        self._t0 = time.perf_counter()

    def set(self, key: str, value: object) -> None:
        """Attach/overwrite one attribute while the span is open."""
        self.attrs[key] = value

    def close(self) -> None:
        self.duration = time.perf_counter() - self._t0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "ts": self.start,
            "dur": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects spans; per-thread nesting; process-merge via absorb.

    >>> tracer = Tracer()
    >>> with tracer.span("flow.pass", name="schedule") as s:
    ...     s.set("cached", False)
    >>> [e["name"] for e in tracer.export()]
    ['flow.pass']
    """

    def __init__(self) -> None:
        self._spans: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._pid = os.getpid()

    # -- recording -----------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, /, **attrs) -> Iterator[Span]:
        """Open a nested span; closed (and recorded) on exit.

        Exceptions propagate -- the span records, it never swallows --
        but the span itself still lands in the trace with whatever
        attributes it had, so a failing pass remains visible.
        """
        stack = self._stack()
        with self._lock:
            span_id = next(self._ids)
        entry = Span(name, span_id, stack[-1] if stack else None,
                     dict(attrs), self._pid, threading.get_ident())
        stack.append(span_id)
        try:
            yield entry
        finally:
            stack.pop()
            entry.close()
            with self._lock:
                self._spans.append(entry.to_dict())

    def current_parent(self) -> Optional[int]:
        """The innermost open span id on this thread (absorb anchor)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- cross-process merge -------------------------------------------
    def absorb(self, span_dicts: List[Dict[str, object]],
               parent_id: Optional[int] = None) -> int:
        """Fold a worker's exported spans into this trace.

        Worker span ids are remapped into this tracer's id space (two
        workers both start counting at 1); each root span of the
        incoming batch is re-parented under ``parent_id`` (defaulting
        to the caller's innermost open span), so a sweep worker's
        points hang off the parent's ``sweep.dispatch`` span.  Worker
        pids/tids are preserved -- the Chrome rendering keeps each
        process on its own track.  Returns the number of spans added.
        """
        if not span_dicts:
            return 0
        if parent_id is None:
            parent_id = self.current_parent()
        remap: Dict[int, int] = {}
        with self._lock:
            for entry in span_dicts:
                remap[entry["id"]] = next(self._ids)
            for entry in span_dicts:
                old_parent = entry.get("parent")
                copied = dict(entry)
                copied["id"] = remap[entry["id"]]
                copied["parent"] = (remap[old_parent]
                                    if old_parent in remap
                                    else parent_id)
                self._spans.append(copied)
        return len(span_dicts)

    # -- export --------------------------------------------------------
    def export(self) -> List[Dict[str, object]]:
        """Every recorded span, in completion order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def to_jsonl(self) -> str:
        """One JSON span per line (first line: a schema header)."""
        lines = [json.dumps({"trace_schema": TRACE_SCHEMA},
                            sort_keys=True)]
        for entry in self.export():
            lines.append(json.dumps(entry, sort_keys=True, default=str))
        return "\n".join(lines) + "\n"

    def to_chrome(self) -> Dict[str, object]:
        """The trace as a Chrome ``trace_event`` JSON object.

        Complete ("X") events with microsecond ``ts``/``dur``; span
        attributes land in ``args``, the span/parent ids included so
        the hierarchy survives the format's flat event list.
        """
        return spans_to_chrome(self.export())

    def write(self, path: str) -> str:
        """Write the trace to ``path``; format chosen by extension.

        ``.jsonl`` writes the line format, anything else the Chrome
        JSON (the format Perfetto/chrome://tracing load directly).
        """
        if str(path).endswith(".jsonl"):
            payload = self.to_jsonl()
        else:
            payload = json.dumps(self.to_chrome(), sort_keys=True,
                                 default=str)
        with open(path, "w") as handle:
            handle.write(payload)
        return str(path)


def spans_to_chrome(
        span_dicts: List[Dict[str, object]]) -> Dict[str, object]:
    """Render a list of exported span dicts as Chrome ``trace_event``
    JSON -- what :meth:`Tracer.to_chrome` serves, usable on a stored
    span list (e.g. a job trace) without rebuilding a tracer."""
    events = []
    for entry in span_dicts:
        args = dict(entry.get("attrs") or {})
        args["span_id"] = entry["id"]
        if entry.get("parent") is not None:
            args["parent_id"] = entry["parent"]
        events.append({
            "name": entry["name"],
            "cat": entry["name"].split(".", 1)[0],
            "ph": "X",
            "ts": entry["ts"] * 1e6,
            "dur": max(entry["dur"], 0.0) * 1e6,
            "pid": entry["pid"],
            "tid": entry["tid"],
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_schema": TRACE_SCHEMA},
    }


@contextmanager
def maybe_span(tracer: Optional[Tracer], name: str, /,
               **attrs) -> Iterator[Optional[Span]]:
    """``tracer.span(...)`` when tracing, a no-op ``None`` otherwise.

    The single idiom every instrumented call site uses, so the
    disabled path stays one ``None`` check per *span-granularity*
    event (passes, points, waves -- never inner loops).
    """
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as entry:
        yield entry
