"""The metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` instance (the module-level
:data:`REGISTRY` by default) is the sink every layer reports into.
Counters keep the always-on cheapness of the old ``repro.profiling``
table -- the counter dict is mutated lock-free exactly as before (the
scheduler is single-threaded per process; worker processes each get
their own registry whose snapshot the parent merges) and
``repro.profiling`` remains the public API for them, now shimmed onto
this registry.  Gauges and histograms are lock-protected: the service
observes job latencies from several engine threads at once.

Histograms use fixed bucket edges chosen at first observation (or
passed explicitly), so snapshots from worker processes merge by plain
bucket-count addition and the Prometheus rendering is exact.
Percentiles are estimated by linear interpolation inside the owning
bucket -- the standard Prometheus ``histogram_quantile`` estimate.

Naming scheme: dotted lowercase phases (``pass.count``,
``service.job_seconds``).  :meth:`MetricsRegistry.render_prometheus`
maps dots to underscores, the only transform Prometheus needs.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: default edges for latency-in-seconds histograms: micro-jobs through
#: multi-minute sweeps.  The terminal +Inf bucket is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric name in Prometheus' charset (dots -> underscores)."""
    return _NAME_RE.sub("_", name)


def _fmt(value: float) -> str:
    """A float rendered the way Prometheus text format expects."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Histogram:
    """Fixed-edge bucket counts + running sum/count for one metric."""

    __slots__ = ("edges", "bucket_counts", "total", "count")

    def __init__(self, edges: Sequence[float]) -> None:
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        if list(self.edges) != sorted(set(self.edges)):
            raise ValueError(f"bucket edges not sorted/unique: {edges}")
        # one count per edge plus the +Inf overflow bucket
        self.bucket_counts: List[int] = [0] * (len(self.edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.edges)
        for i, edge in enumerate(self.edges):
            if value <= edge:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.total += value
        self.count += 1

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100), interpolated within its bucket.

        Mirrors Prometheus' ``histogram_quantile``: the overflow bucket
        reports its lower edge (the largest finite edge) since its
        width is unbounded.  Returns 0.0 on an empty histogram.
        """
        if self.count == 0:
            return 0.0
        rank = max(1.0, q / 100.0 * self.count)
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if seen + n >= rank:
                if i >= len(self.edges):  # overflow bucket
                    return self.edges[-1] if self.edges else 0.0
                lo = self.edges[i - 1] if i > 0 else 0.0
                hi = self.edges[i]
                return lo + (hi - lo) * ((rank - seen) / n)
            seen += n
        return self.edges[-1] if self.edges else 0.0

    def summary(self) -> Dict[str, float]:
        """count/sum/mean plus the p50/p90/p99 estimates."""
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum": self.total,
            "mean": mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Counters, gauges and histograms behind one snapshot/merge API."""

    def __init__(self) -> None:
        #: the live counter table.  Public and lock-free on purpose:
        #: ``repro.profiling.counters`` aliases this very dict, and the
        #: scheduler's hot loops bump it directly (single-threaded per
        #: process, exactly the old profiling contract).
        self.counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._lock = threading.Lock()

    # -- counters ------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Increment one counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- gauges --------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Set one gauge to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def gauges(self) -> Dict[str, float]:
        """A copy of the gauge table."""
        with self._lock:
            return dict(self._gauges)

    # -- histograms ----------------------------------------------------
    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        """Record one observation into ``name``'s histogram.

        ``buckets`` fixes the edges on first use (defaults to
        :data:`DEFAULT_LATENCY_BUCKETS`); later calls ignore it, so
        every observer of one metric shares one set of edges.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = _Histogram(buckets if buckets is not None
                                  else DEFAULT_LATENCY_BUCKETS)
                self._histograms[name] = hist
            hist.observe(value)

    def percentile(self, name: str, q: float) -> float:
        """The q-th percentile of one histogram (0.0 if absent)."""
        with self._lock:
            hist = self._histograms.get(name)
            return hist.percentile(q) if hist is not None else 0.0

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """name -> count/sum/mean/p50/p90/p99 for every histogram."""
        with self._lock:
            return {name: h.summary()
                    for name, h in sorted(self._histograms.items())}

    # -- snapshot / merge ---------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly copy of everything (mergeable elsewhere)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "edges": list(h.edges),
                        "bucket_counts": list(h.bucket_counts),
                        "sum": h.total,
                        "count": h.count,
                    }
                    for name, h in self._histograms.items()
                },
            }

    def merge(self, snap: Dict[str, object]) -> None:
        """Fold a worker registry's snapshot into this one.

        Counters and histogram buckets add; gauges take the incoming
        value (latest writer wins -- they are point-in-time readings).
        Histograms merge only when their edges agree, which they always
        do in practice since workers inherit the parent's bucket
        choices; a mismatch drops the incoming data rather than
        corrupting the buckets.
        """
        for name, n in (snap.get("counters") or {}).items():
            self.counters[name] = self.counters.get(name, 0) + n
        with self._lock:
            for name, value in (snap.get("gauges") or {}).items():
                self._gauges[name] = float(value)
            for name, data in (snap.get("histograms") or {}).items():
                edges = tuple(float(e) for e in data.get("edges", ()))
                hist = self._histograms.get(name)
                if hist is None:
                    hist = _Histogram(edges)
                    self._histograms[name] = hist
                if hist.edges != edges:
                    continue
                incoming = data.get("bucket_counts") or []
                if len(incoming) != len(hist.bucket_counts):
                    continue
                for i, n in enumerate(incoming):
                    hist.bucket_counts[i] += n
                hist.total += data.get("sum", 0.0)
                hist.count += data.get("count", 0)

    def reset(self) -> None:
        """Zero everything (start of a measured workload).

        Clears the counter dict *in place*: call sites (and the
        ``repro.profiling`` shim) hold direct references to it.
        """
        self.counters.clear()
        with self._lock:
            self._gauges.clear()
            self._histograms.clear()

    # -- rendering -----------------------------------------------------
    def render_prometheus(
            self, extra_gauges: Optional[Dict[str, float]] = None) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        ``extra_gauges`` lets a caller fold point-in-time readings
        (queue depth, uptime) into the same scrape without mutating
        registry state.
        """
        lines: List[str] = []

        def emit(name: str, kind: str,
                 samples: Iterable[Tuple[str, float]]) -> None:
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} {kind}")
            for suffix, value in samples:
                lines.append(f"{pname}{suffix} {_fmt(value)}")

        for name in sorted(self.counters):
            emit(name + "_total", "counter",
                 [("", self.counters[name])])
        with self._lock:
            gauges = dict(self._gauges)
            hists = {name: (h.edges, list(h.bucket_counts),
                            h.total, h.count)
                     for name, h in self._histograms.items()}
        merged_gauges = dict(gauges)
        merged_gauges.update(extra_gauges or {})
        for name in sorted(merged_gauges):
            emit(name, "gauge", [("", merged_gauges[name])])
        for name in sorted(hists):
            edges, bucket_counts, total, count = hists[name]
            cumulative = 0
            samples: List[Tuple[str, float]] = []
            for edge, n in zip(list(edges) + [float("inf")],
                               bucket_counts):
                cumulative += n
                samples.append((f'_bucket{{le="{_fmt(edge)}"}}',
                                cumulative))
            samples.append(("_sum", total))
            samples.append(("_count", count))
            emit(name, "histogram", samples)
        return "\n".join(lines) + "\n"


#: the process-wide default registry (what ``repro.profiling`` shims
#: onto and what the service exports).  Worker processes reset it on
#: entry and ship its snapshot back over their result channel.
REGISTRY = MetricsRegistry()
