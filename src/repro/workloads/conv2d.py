"""3x3 convolution (image-processing member of the Figure 9 population).

Two variants:

* :func:`build_conv3x3` -- the historical *streaming* form: three row
  input ports feed a shift-register window, so the scheduler never sees
  a memory port.
* :func:`build_conv3x3_mem` -- the *memory-backed* form: each image row
  lives in an on-chip array and the loop computes ``unroll`` output
  pixels per iteration, loading a sliding group of ``unroll + 2``
  columns from every row array (``address = unroll * i + c``).  With
  ``unroll`` a multiple of the banking factor the column accesses get
  static banks and spread over the RAM macros; single-bank single-port
  rows serialize the loads and inflate II -- the port-contention
  behaviour the memory subsystem exists to expose.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cdfg.builder import RegionBuilder
from repro.cdfg.region import Region

#: default edge-detect kernel.
DEFAULT_KERNEL = [-1, -1, -1, -1, 8, -1, -1, -1, -1]


def build_conv3x3(kernel: Optional[List[int]] = None, width: int = 32,
                  max_latency: int = 16, trip_count: int = 32) -> Region:
    """3x3 convolution fed by three row streams.

    Each iteration shifts a 3x3 window (six loop-carried registers) and
    produces one output pixel; the window shift chain is feedback free,
    so the loop pipelines down to II=1.
    """
    coeffs = kernel if kernel is not None else list(DEFAULT_KERNEL)
    if len(coeffs) != 9:
        raise ValueError("conv3x3 needs exactly 9 coefficients")
    b = RegionBuilder("conv3x3", is_loop=True, max_latency=max_latency)
    rows = [b.read(f"row{r}", width) for r in range(3)]
    window = []
    for r in range(3):
        c1 = b.loop_var(f"w{r}1", b.const(0, width))
        c2 = b.loop_var(f"w{r}2", b.const(0, width))
        c2.set_next(c1.value)
        c1.set_next(rows[r])
        window.extend([rows[r], c1.value, c2.value])
    acc = None
    for i, coeff in enumerate(coeffs):
        term = b.mul(window[i], b.const(coeff, 8), name=f"k{i}")
        acc = term if acc is None else b.add(acc, term, name=f"acc{i}")
    b.write("pix", acc)
    b.set_trip_count(trip_count)
    return b.build()


def conv_rows(cols: int, seed: int = 11) -> List[List[int]]:
    """Deterministic 3-row image for the memory-backed variant."""
    rows = []
    state = seed & 0xFFFF or 1
    for _r in range(3):
        row = []
        for _c in range(cols):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            row.append(state % 61 - 30)
        rows.append(row)
    return rows


def build_conv3x3_mem(kernel: Optional[List[int]] = None,
                      cols: int = 18, unroll: int = 2,
                      width: int = 32, banks: int = 1, ports: int = 1,
                      max_latency: int = 32, seed: int = 11) -> Region:
    """Memory-backed 3x3 convolution, ``unroll`` output pixels/iteration.

    Iteration ``i`` produces pixels ``unroll*i .. unroll*i+unroll-1``,
    each from a 3x3 window over the row arrays, so every row array
    serves ``unroll + 2`` loads per iteration (shared columns are
    single loads; offsets ``0..unroll+1`` at stride ``unroll``).
    Outputs leave on ports ``pix0..pix{unroll-1}``.
    """
    coeffs = kernel if kernel is not None else list(DEFAULT_KERNEL)
    if len(coeffs) != 9:
        raise ValueError("conv3x3 needs exactly 9 coefficients")
    if unroll < 1:
        raise ValueError("unroll must be >= 1")
    if (cols - 2) % unroll:
        raise ValueError("cols - 2 must be divisible by unroll")
    b = RegionBuilder(f"conv3x3_mem_u{unroll}", is_loop=True,
                      max_latency=max_latency)
    image = conv_rows(cols, seed)
    mems = [b.array(f"row{r}", cols, width, banks=banks, ports=ports,
                    init=image[r]) for r in range(3)]
    #: column offset -> loaded value per row (windows share columns)
    cols_needed = unroll + 2
    loaded = [[b.load(mems[r], offset=c, stride=unroll,
                      name=f"r{r}c{c}")
               for c in range(cols_needed)] for r in range(3)]
    for u in range(unroll):
        acc = None
        for i, coeff in enumerate(coeffs):
            r, c = divmod(i, 3)
            term = b.mul(loaded[r][c + u], b.const(coeff, 8),
                         name=f"p{u}_k{i}")
            acc = term if acc is None else b.add(acc, term,
                                                 name=f"p{u}_acc{i}")
        b.write(f"pix{u}", acc)
    b.set_trip_count((cols - 2) // unroll)
    return b.build()


def reference_conv3x3_mem(kernel: Optional[List[int]] = None,
                          cols: int = 18, unroll: int = 2,
                          seed: int = 11):
    """Oracle: per-port pixel streams keyed ``pix0..pix{unroll-1}``."""
    coeffs = kernel if kernel is not None else list(DEFAULT_KERNEL)
    image = conv_rows(cols, seed)
    outputs = {f"pix{u}": [] for u in range(unroll)}
    for i in range((cols - 2) // unroll):
        for u in range(unroll):
            base = unroll * i + u
            acc = 0
            for k, coeff in enumerate(coeffs):
                r, c = divmod(k, 3)
                acc += coeff * image[r][base + c]
            outputs[f"pix{u}"].append(acc)
    return outputs
