"""3x3 convolution over a streaming window (image-processing member of
the Figure 9 population)."""

from __future__ import annotations

from typing import List, Optional

from repro.cdfg.builder import RegionBuilder
from repro.cdfg.region import Region

#: default edge-detect kernel.
DEFAULT_KERNEL = [-1, -1, -1, -1, 8, -1, -1, -1, -1]


def build_conv3x3(kernel: Optional[List[int]] = None, width: int = 32,
                  max_latency: int = 16, trip_count: int = 32) -> Region:
    """3x3 convolution fed by three row streams.

    Each iteration shifts a 3x3 window (six loop-carried registers) and
    produces one output pixel; the window shift chain is feedback free,
    so the loop pipelines down to II=1.
    """
    coeffs = kernel if kernel is not None else list(DEFAULT_KERNEL)
    if len(coeffs) != 9:
        raise ValueError("conv3x3 needs exactly 9 coefficients")
    b = RegionBuilder("conv3x3", is_loop=True, max_latency=max_latency)
    rows = [b.read(f"row{r}", width) for r in range(3)]
    window = []
    for r in range(3):
        c1 = b.loop_var(f"w{r}1", b.const(0, width))
        c2 = b.loop_var(f"w{r}2", b.const(0, width))
        c2.set_next(c1.value)
        c1.set_next(rows[r])
        window.extend([rows[r], c1.value, c2.value])
    acc = None
    for i, coeff in enumerate(coeffs):
        term = b.mul(window[i], b.const(coeff, 8), name=f"k{i}")
        acc = term if acc is None else b.add(acc, term, name=f"acc{i}")
    b.write("pix", acc)
    b.set_trip_count(trip_count)
    return b.build()
