"""Streaming multi-kernel workloads (dataflow compositions).

Three pipelines exercising the dataflow layer end to end, each with a
pure-python oracle:

* :func:`build_matmul_relu_stream` -- a dot-product accumulator feeding
  a ReLU stage through one channel: the canonical linear
  producer/consumer pair (GEMM + activation).
* :func:`build_sobel_threshold_stream` -- the Sobel gradient kernel
  feeding a thresholding stage: image pipeline composition.
* :func:`build_fir_decimate_stream` -- three stages: an FIR filter, a
  2:1 decimator (two pops per iteration -- a genuine multi-rate
  boundary) and an output scaler.

All stages are ordinary regions built with ``push``/``pop``; the
pipelines are addressable through :data:`repro.workloads.PIPELINE_REGISTRY`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cdfg.builder import RegionBuilder
from repro.dataflow.pipeline import Pipeline
from repro.sim.evalops import unsigned, wrap
from repro.workloads.fir import DEFAULT_TAPS
from repro.workloads.sobel import _GX, _GY, _abs

#: width of every stream token in these workloads.
WIDTH = 32


# ----------------------------------------------------------------------
# matmul + ReLU
# ----------------------------------------------------------------------
def build_matmul_relu_stream(k: int = 2, trip_count: int = 16,
                             dot_ii: int = 1,
                             relu_ii: int = 1) -> Pipeline:
    """Dot-product partial sums streamed through a ReLU stage.

    Stage ``dot`` multiplies K port pairs per iteration and accumulates;
    the running sum is pushed into channel ``s``.  Stage ``relu`` pops
    ``s`` and writes ``max(0, x)`` to port ``y``.  The composed steady
    state II is ``max(dot_ii, relu_ii)`` -- the slowest stage paces the
    pipeline, whatever the channel depth.
    """
    b = RegionBuilder("dot_stream", is_loop=True, max_latency=16)
    a_ports = [b.read(f"a{i}", WIDTH) for i in range(k)]
    b_ports = [b.read(f"b{i}", WIDTH) for i in range(k)]
    acc = b.loop_var("acc", b.const(0, WIDTH))
    total = None
    for i in range(k):
        term = b.mul(a_ports[i], b_ports[i], name=f"prod{i}")
        total = term if total is None else b.add(total, term,
                                                 name=f"tsum{i}")
    nxt = b.add(acc, total, name="acc_add")
    acc.set_next(nxt)
    b.push("s", nxt, name="s_push")
    b.set_trip_count(trip_count)
    dot = b.build()

    b = RegionBuilder("relu_stream", is_loop=True, max_latency=8)
    x = b.pop("s", WIDTH, name="s_pop")
    is_neg = b.lt(x, b.const(0, WIDTH), name="is_neg")
    y = b.mux(is_neg, b.const(0, WIDTH), x, name="relu")
    b.write("y", y)
    b.set_trip_count(trip_count)
    relu = b.build()

    pipe = Pipeline("matmul_relu_stream")
    pipe.channel("s", width=WIDTH)
    pipe.add_stage("dot", dot, ii=dot_ii)
    pipe.add_stage("relu", relu, ii=relu_ii)
    return pipe


def reference_matmul_relu_stream(k: int, a_rows, b_rows) -> List[int]:
    """Oracle: rectified running dot-product partial sums."""
    out = []
    acc = 0
    for a_vec, b_vec in zip(a_rows, b_rows):
        acc += sum(x * y for x, y in zip(a_vec[:k], b_vec[:k]))
        out.append(max(0, acc))
    return out


def matmul_relu_inputs(k: int = 2,
                       trip_count: int = 16) -> Dict[str, List[int]]:
    """Deterministic port streams for the matmul+ReLU pipeline.

    Signs alternate so the running sum crosses zero and the ReLU
    actually clips -- an always-positive stream would never exercise
    the rectifier path.
    """
    streams: Dict[str, List[int]] = {}
    for i in range(k):
        streams[f"a{i}"] = [((7 * n + 3 * i) % 23) - 11
                            for n in range(trip_count)]
        streams[f"b{i}"] = [((5 * n + i) % 19) - 9
                            for n in range(trip_count)]
    return streams


# ----------------------------------------------------------------------
# Sobel + threshold
# ----------------------------------------------------------------------
def build_sobel_threshold_stream(trip_count: int = 32,
                                 threshold: int = 300,
                                 sobel_ii: int = 1,
                                 thresh_ii: int = 1) -> Pipeline:
    """Sobel gradient magnitudes streamed through a threshold stage.

    Stage ``sobel`` is the streaming 3x3 Sobel kernel (row ports plus a
    shift-register window) pushing ``|Gx| + |Gy|`` into channel ``m``;
    stage ``thresh`` keeps magnitudes above ``threshold`` and writes
    zero otherwise (a binary-ish edge map) to port ``edge``.
    """
    b = RegionBuilder("sobel_stream", is_loop=True, max_latency=16)
    rows = [b.read(f"row{r}", WIDTH) for r in range(3)]
    window = []
    for r in range(3):
        c1 = b.loop_var(f"w{r}1", b.const(0, WIDTH))
        c2 = b.loop_var(f"w{r}2", b.const(0, WIDTH))
        c2.set_next(c1.value)
        c1.set_next(rows[r])
        window.extend([rows[r], c1.value, c2.value])

    def convolve(kernel, tag):
        acc = None
        for i, coeff in enumerate(kernel):
            if coeff == 0:
                continue
            term = b.mul(window[i], b.const(coeff, 4), name=f"{tag}_k{i}")
            acc = term if acc is None else b.add(acc, term,
                                                 name=f"{tag}_s{i}")
        return acc

    gx = convolve(_GX, "gx")
    gy = convolve(_GY, "gy")
    magnitude = b.add(_abs(b, gx, "gx"), _abs(b, gy, "gy"), name="mag")
    b.push("m", magnitude, name="m_push")
    b.set_trip_count(trip_count)
    sobel = b.build()

    b = RegionBuilder("thresh_stream", is_loop=True, max_latency=8)
    mag = b.pop("m", WIDTH, name="m_pop")
    keep = b.gt(mag, b.const(threshold, WIDTH), name="keep")
    out = b.mux(keep, mag, b.const(0, WIDTH), name="edge_sel")
    b.write("edge", out)
    b.set_trip_count(trip_count)
    thresh = b.build()

    pipe = Pipeline("sobel_threshold_stream")
    pipe.channel("m", width=WIDTH)
    pipe.add_stage("sobel", sobel, ii=sobel_ii)
    pipe.add_stage("thresh", thresh, ii=thresh_ii)
    return pipe


def reference_sobel_threshold_stream(rows, threshold: int = 300
                                     ) -> List[int]:
    """Oracle over three equal-length row streams."""
    out = []
    history = [[0, 0, 0] for _ in range(3)]
    for col in zip(*rows):
        for r in range(3):
            history[r] = [col[r]] + history[r][:2]
        window = [history[r][c] for r in range(3) for c in range(3)]
        gx = sum(c * v for c, v in zip(_GX, window))
        gy = sum(c * v for c, v in zip(_GY, window))
        mag = abs(gx) + abs(gy)
        out.append(mag if mag > threshold else 0)
    return out


def sobel_rows(trip_count: int = 32) -> Dict[str, List[int]]:
    """Deterministic row streams for the Sobel pipeline.

    Alternating flat and steep stripes, so some magnitudes clear the
    default threshold and some do not -- both threshold branches run.
    """
    def pixel(n: int, r: int) -> int:
        stripe = (n // 3) % 2
        return stripe * 120 + ((5 * n + 7 * r) % 13)

    return {f"row{r}": [pixel(n, r) for n in range(trip_count)]
            for r in range(3)}


# ----------------------------------------------------------------------
# FIR + decimate + scale (3 stages, multi-rate)
# ----------------------------------------------------------------------
def build_fir_decimate_stream(taps: Optional[List[int]] = None,
                              trip_count: int = 32, gain: int = 3,
                              fir_ii: int = 1, decim_ii: int = 2,
                              scale_ii: int = 1) -> Pipeline:
    """FIR filter -> 2:1 decimator -> output scaler.

    The decimator pops *two* tokens per iteration from channel ``f``
    (averaging them), so its iteration consumes two producer
    iterations' worth of tokens: a genuine multi-rate boundary.  The
    FIFO read port serializes the two pops across states, which is why
    ``decim_ii`` must be at least 2 -- and why channel ``f`` needs
    depth >= 2 to run stall-free.
    """
    coeffs = taps if taps is not None else list(DEFAULT_TAPS[:4])
    if trip_count % 2:
        raise ValueError("trip_count must be even (2:1 decimation)")
    b = RegionBuilder("fir_stream", is_loop=True, max_latency=16)
    x = b.read("x", WIDTH)
    line = [x]
    taps_vars = []
    for i in range(1, len(coeffs)):
        z = b.loop_var(f"z{i}", b.const(0, WIDTH))
        taps_vars.append(z)
        line.append(z.value)
    for i in range(len(coeffs) - 1, 0, -1):
        taps_vars[i - 1].set_next(line[i - 1])
    acc = None
    for i, coeff in enumerate(coeffs):
        term = b.mul(line[i], b.const(coeff, 16), name=f"tap{i}")
        acc = term if acc is None else b.add(acc, term, name=f"sum{i}")
    b.push("f", acc, name="f_push")
    b.set_trip_count(trip_count)
    fir = b.build()

    b = RegionBuilder("decim_stream", is_loop=True, min_latency=2,
                      max_latency=8)
    even = b.pop("f", WIDTH, name="f_pop0")
    odd = b.pop("f", WIDTH, name="f_pop1")
    avg = b.shr(b.add(even, odd, name="pair_sum"), b.const(1, WIDTH),
                name="pair_avg")
    b.push("d", avg, name="d_push")
    b.set_trip_count(trip_count // 2)
    decim = b.build()

    b = RegionBuilder("scale_stream", is_loop=True, max_latency=8)
    v = b.pop("d", WIDTH, name="d_pop")
    b.write("y", b.mul(v, b.const(gain, WIDTH), name="scaled"))
    b.set_trip_count(trip_count // 2)
    scale = b.build()

    pipe = Pipeline("fir_decimate_stream")
    pipe.channel("f", width=WIDTH)
    pipe.channel("d", width=WIDTH)
    pipe.add_stage("fir", fir, ii=fir_ii)
    pipe.add_stage("decim", decim, ii=decim_ii)
    pipe.add_stage("scale", scale, ii=scale_ii)
    return pipe


def reference_fir_decimate_stream(samples: List[int],
                                  taps: Optional[List[int]] = None,
                                  gain: int = 3) -> List[int]:
    """Oracle: FIR, average adjacent pairs, scale.

    Bit-accurate with the hardware: the pair average is a *logical*
    shift of the wrapped 32-bit sum (SHR semantics), not Python's
    arithmetic ``>>``.
    """
    coeffs = taps if taps is not None else list(DEFAULT_TAPS[:4])
    history = [0] * len(coeffs)
    filtered = []
    for sample in samples:
        history = [sample] + history[:-1]
        filtered.append(sum(c * v for c, v in zip(coeffs, history)))
    out = []
    for i in range(0, len(filtered) - 1, 2):
        pair_sum = wrap(filtered[i] + filtered[i + 1], WIDTH)
        avg = wrap(unsigned(pair_sum, WIDTH) >> 1, WIDTH)
        out.append(wrap(avg * gain, WIDTH))
    return out


def fir_samples(trip_count: int = 32) -> Dict[str, List[int]]:
    """Deterministic sample stream for the FIR pipeline."""
    return {"x": [((11 * n) % 41) - 20 for n in range(trip_count)]}
