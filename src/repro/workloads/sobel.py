"""Sobel edge-detection workload (image processing, Figure 9 family).

Computes |Gx| + |Gy| over a streaming 3x3 window.  The window shift
registers are feedback-free, the gradient datapath is pure feedforward
arithmetic with two comparison-select pairs (absolute values), so the
kernel pipelines to II=1 -- while exercising the MUX/predicate paths of
the scheduler harder than the plain convolution does.
"""

from __future__ import annotations

from repro.cdfg.builder import RegionBuilder, Value
from repro.cdfg.region import Region

#: Sobel gradients.
_GX = [-1, 0, 1, -2, 0, 2, -1, 0, 1]
_GY = [-1, -2, -1, 0, 0, 0, 1, 2, 1]


def _abs(b: RegionBuilder, value: Value, tag: str) -> Value:
    neg = b.sub(b.const(0, value.width), value, name=f"neg_{tag}")
    is_neg = b.lt(value, b.const(0, value.width), name=f"isneg_{tag}")
    return b.mux(is_neg, neg, value, name=f"abs_{tag}")


def build_sobel(width: int = 32, max_latency: int = 16,
                trip_count: int = 32) -> Region:
    """Streaming Sobel magnitude: reads three row streams, writes |G|."""
    b = RegionBuilder("sobel", is_loop=True, max_latency=max_latency)
    rows = [b.read(f"row{r}", width) for r in range(3)]
    window = []
    for r in range(3):
        c1 = b.loop_var(f"w{r}1", b.const(0, width))
        c2 = b.loop_var(f"w{r}2", b.const(0, width))
        c2.set_next(c1.value)
        c1.set_next(rows[r])
        window.extend([rows[r], c1.value, c2.value])

    def convolve(kernel, tag):
        acc = None
        for i, coeff in enumerate(kernel):
            if coeff == 0:
                continue
            term = b.mul(window[i], b.const(coeff, 4),
                         name=f"{tag}_k{i}")
            acc = term if acc is None else b.add(acc, term,
                                                 name=f"{tag}_s{i}")
        return acc

    gx = convolve(_GX, "gx")
    gy = convolve(_GY, "gy")
    magnitude = b.add(_abs(b, gx, "gx"), _abs(b, gy, "gy"), name="mag")
    b.write("edge", magnitude)
    b.set_trip_count(trip_count)
    return b.build()


def reference_sobel(rows) -> list:
    """Pure-python oracle over three equal-length row streams."""
    out = []
    history = [[0, 0, 0] for _ in range(3)]
    for col in zip(*rows):
        for r in range(3):
            history[r] = [col[r]] + history[r][:2]
        window = [history[r][c] for r in range(3) for c in range(3)]
        gx = sum(c * v for c, v in zip(_GX, window))
        gy = sum(c * v for c, v in zip(_GY, window))
        out.append(abs(gx) + abs(gy))
    return out
