"""Sobel edge-detection workload (image processing, Figure 9 family).

Computes |Gx| + |Gy| over a 3x3 window.  The gradient datapath is pure
feedforward arithmetic with two comparison-select pairs (absolute
values), exercising the MUX/predicate paths of the scheduler harder
than the plain convolution does.

:func:`build_sobel` is the historical *streaming* form (row ports plus
a shift-register window); :func:`build_sobel_mem` keeps the image rows
in on-chip arrays and computes ``unroll`` magnitudes per iteration, so
RAM port contention -- and its banking cure -- shows up in the
schedule.
"""

from __future__ import annotations

from repro.cdfg.builder import RegionBuilder, Value
from repro.cdfg.region import Region
from repro.workloads.conv2d import conv_rows

#: Sobel gradients.
_GX = [-1, 0, 1, -2, 0, 2, -1, 0, 1]
_GY = [-1, -2, -1, 0, 0, 0, 1, 2, 1]


def _abs(b: RegionBuilder, value: Value, tag: str) -> Value:
    neg = b.sub(b.const(0, value.width), value, name=f"neg_{tag}")
    is_neg = b.lt(value, b.const(0, value.width), name=f"isneg_{tag}")
    return b.mux(is_neg, neg, value, name=f"abs_{tag}")


def build_sobel(width: int = 32, max_latency: int = 16,
                trip_count: int = 32) -> Region:
    """Streaming Sobel magnitude: reads three row streams, writes |G|."""
    b = RegionBuilder("sobel", is_loop=True, max_latency=max_latency)
    rows = [b.read(f"row{r}", width) for r in range(3)]
    window = []
    for r in range(3):
        c1 = b.loop_var(f"w{r}1", b.const(0, width))
        c2 = b.loop_var(f"w{r}2", b.const(0, width))
        c2.set_next(c1.value)
        c1.set_next(rows[r])
        window.extend([rows[r], c1.value, c2.value])

    def convolve(kernel, tag):
        acc = None
        for i, coeff in enumerate(kernel):
            if coeff == 0:
                continue
            term = b.mul(window[i], b.const(coeff, 4),
                         name=f"{tag}_k{i}")
            acc = term if acc is None else b.add(acc, term,
                                                 name=f"{tag}_s{i}")
        return acc

    gx = convolve(_GX, "gx")
    gy = convolve(_GY, "gy")
    magnitude = b.add(_abs(b, gx, "gx"), _abs(b, gy, "gy"), name="mag")
    b.write("edge", magnitude)
    b.set_trip_count(trip_count)
    return b.build()


def build_sobel_mem(cols: int = 18, unroll: int = 2, width: int = 32,
                    banks: int = 1, ports: int = 1,
                    max_latency: int = 32, seed: int = 13) -> Region:
    """Memory-backed Sobel: rows in RAM, ``unroll`` magnitudes/iteration.

    Each row array serves ``unroll + 2`` loads per iteration (offsets
    ``0..unroll+1`` at stride ``unroll``); magnitudes additionally pass
    through the absolute-value mux pairs, and the results are stored
    into an output array ``edges`` as well as written to ports
    ``edge0..edge{unroll-1}``.
    """
    if unroll < 1:
        raise ValueError("unroll must be >= 1")
    if (cols - 2) % unroll:
        raise ValueError("cols - 2 must be divisible by unroll")
    b = RegionBuilder(f"sobel_mem_u{unroll}", is_loop=True,
                      max_latency=max_latency)
    image = conv_rows(cols, seed)
    mems = [b.array(f"row{r}", cols, width, banks=banks, ports=ports,
                    init=image[r]) for r in range(3)]
    out = b.array("edges", cols - 2, width, banks=max(1, unroll))
    loaded = [[b.load(mems[r], offset=c, stride=unroll,
                      name=f"r{r}c{c}")
               for c in range(unroll + 2)] for r in range(3)]

    def convolve(kernel, u, tag):
        acc = None
        for i, coeff in enumerate(kernel):
            if coeff == 0:
                continue
            r, c = divmod(i, 3)
            term = b.mul(loaded[r][c + u], b.const(coeff, 4),
                         name=f"{tag}_k{i}")
            acc = term if acc is None else b.add(acc, term,
                                                 name=f"{tag}_s{i}")
        return acc

    for u in range(unroll):
        gx = convolve(_GX, u, f"gx{u}")
        gy = convolve(_GY, u, f"gy{u}")
        mag = b.add(_abs(b, gx, f"gx{u}"), _abs(b, gy, f"gy{u}"),
                    name=f"mag{u}")
        b.store(out, mag, offset=u, stride=unroll, name=f"edge_st{u}")
        b.write(f"edge{u}", mag)
    b.set_trip_count((cols - 2) // unroll)
    return b.build()


def reference_sobel_mem(cols: int = 18, unroll: int = 2,
                        seed: int = 13):
    """Oracle: per-port magnitude streams and the output array."""
    image = conv_rows(cols, seed)
    outputs = {f"edge{u}": [] for u in range(unroll)}
    edges = [0] * (cols - 2)
    for i in range((cols - 2) // unroll):
        for u in range(unroll):
            base = unroll * i + u
            window = [image[r][base + c]
                      for r in range(3) for c in range(3)]
            gx = sum(c * v for c, v in zip(_GX, window))
            gy = sum(c * v for c, v in zip(_GY, window))
            mag = abs(gx) + abs(gy)
            outputs[f"edge{u}"].append(mag)
            edges[base] = mag
    return outputs, edges


def reference_sobel(rows) -> list:
    """Pure-python oracle over three equal-length row streams."""
    out = []
    history = [[0, 0, 0] for _ in range(3)]
    for col in zip(*rows):
        for r in range(3):
            history[r] = [col[r]] + history[r][:2]
        window = [history[r][c] for r in range(3) for c in range(3)]
        gx = sum(c * v for c, v in zip(_GX, window))
        gy = sum(c * v for c, v in zip(_GY, window))
        out.append(abs(gx) + abs(gy))
    return out
