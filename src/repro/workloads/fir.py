"""Streaming FIR filter workload.

A classic fully-pipelinable kernel: the tap delay line is a chain of
loop-carried registers with no feedback cycle, so II=1 is achievable --
the kind of "filter" design the paper's Figure 9 population contains.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cdfg.builder import RegionBuilder
from repro.cdfg.region import Region

#: default symmetric low-pass coefficients.
DEFAULT_TAPS = [3, -9, 21, 40, 21, -9, 3]


def build_fir(taps: Optional[List[int]] = None, width: int = 32,
              max_latency: int = 16, trip_count: int = 32) -> Region:
    """An N-tap FIR: reads ``x``, writes ``y`` once per iteration."""
    coeffs = taps if taps is not None else list(DEFAULT_TAPS)
    if not coeffs:
        raise ValueError("FIR needs at least one tap")
    b = RegionBuilder("fir", is_loop=True, max_latency=max_latency)
    x = b.read("x", width)
    # delay line z[0] = current sample, z[i] = sample i cycles ago
    line = [x]
    for i in range(1, len(coeffs)):
        z = b.loop_var(f"z{i}", b.const(0, width))
        line.append(z.value)
    for i in range(len(coeffs) - 1, 0, -1):
        lv = b._loop_vars[i - 1]
        lv.set_next(line[i - 1])
    acc = None
    for i, coeff in enumerate(coeffs):
        term = b.mul(line[i], b.const(coeff, 16), name=f"tap{i}")
        acc = term if acc is None else b.add(acc, term, name=f"sum{i}")
    b.write("y", acc)
    b.set_trip_count(trip_count)
    return b.build()


def reference_fir(taps: List[int], samples: List[int]) -> List[int]:
    """Pure-python oracle used by the tests."""
    out = []
    history = [0] * len(taps)
    for sample in samples:
        history = [sample] + history[:-1]
        out.append(sum(c * v for c, v in zip(taps, history)))
    return out
