"""IDCT workloads (the paper's Figure 10/11 design).

``build_idct8`` is a 1-D 8-point IDCT (Loeffler-style even/odd
decomposition, 11 multiplies) processing one column per loop iteration in
Q11 fixed point -- products are rescaled through free bit slices, as
hardware would.  ``build_idct2d`` chains a row pass and a column pass over
an 8x8 block per iteration (the video-decoding configuration the paper
explores with latencies 8..32).
"""

from __future__ import annotations

import math
from typing import List

from repro.cdfg.builder import RegionBuilder, Value
from repro.cdfg.region import Region

#: Q11 fixed-point IDCT-II coefficients c[k] = cos(k*pi/16) * 2^11.
_Q = 11
_COS = [round(math.cos(k * math.pi / 16) * (1 << _Q)) for k in range(8)]
#: sqrt(2) * cos(6*pi/16) style constants used by the even part.
_SQRT2 = round(math.sqrt(2) * (1 << _Q))

#: data width of samples and intermediate values.
WIDTH = 32


def _scale(b: RegionBuilder, value: Value, name: str = "") -> Value:
    """Drop Q11 fraction bits: a free bit-slice, as in real datapaths."""
    wide = value
    hi = min(wide.width - 1, _Q + WIDTH - 1)
    return b.slice_(wide, hi, _Q, name=name)


def _cmul(b: RegionBuilder, x: Value, coeff: int, name: str) -> Value:
    """Multiply by a Q11 constant and rescale."""
    prod = b.mul(x, b.const(coeff, 16), width=WIDTH + _Q, name=name)
    return _scale(b, prod, name=f"{name}_q")


def idct8_dataflow(b: RegionBuilder, x: List[Value],
                   tag: str = "") -> List[Value]:
    """Emit the 8-point 1-D IDCT dataflow; returns the 8 outputs.

    Even part: x0,x2,x4,x6; odd part: x1,x3,x5,x7; butterfly merge.
    """
    c = _COS
    # even part
    s0 = b.add(x[0], x[4], name=f"e_s0{tag}")
    d0 = b.sub(x[0], x[4], name=f"e_d0{tag}")
    m2 = _cmul(b, x[2], c[6], f"m_x2c6{tag}")
    m6 = _cmul(b, x[6], c[2], f"m_x6c2{tag}")
    m2b = _cmul(b, x[2], c[2], f"m_x2c2{tag}")
    m6b = _cmul(b, x[6], c[6], f"m_x6c6{tag}")
    e0 = b.add(s0, b.add(m2b, m6b, name=f"e_even{tag}"), name=f"e0{tag}")
    e1 = b.add(d0, b.sub(m2, m6, name=f"e_odd{tag}"), name=f"e1{tag}")
    e2 = b.sub(d0, b.sub(m2, m6, name=f"e_odd2{tag}"), name=f"e2{tag}")
    e3 = b.sub(s0, b.add(m2b, m6b, name=f"e_even2{tag}"), name=f"e3{tag}")
    # odd part
    o1 = _cmul(b, x[1], c[1], f"m_x1c1{tag}")
    o3 = _cmul(b, x[3], c[3], f"m_x3c3{tag}")
    o5 = _cmul(b, x[5], c[5], f"m_x5c5{tag}")
    o7 = _cmul(b, x[7], c[7], f"m_x7c7{tag}")
    oa = b.add(o1, o7, name=f"oa{tag}")
    ob = b.add(o3, o5, name=f"ob{tag}")
    oc = b.sub(o1, o7, name=f"oc{tag}")
    od = b.sub(o3, o5, name=f"od{tag}")
    f0 = b.add(oa, ob, name=f"f0{tag}")
    f2 = _cmul(b, b.sub(oa, ob, name=f"f2d{tag}"), _SQRT2, f"f2{tag}")
    f1 = b.add(oc, od, name=f"f1s{tag}")
    f1 = _cmul(b, f1, _SQRT2, f"f1{tag}")
    f3 = b.sub(oc, od, name=f"f3{tag}")
    # merge
    y = [
        b.add(e0, f0, name=f"y0{tag}"),
        b.add(e1, f1, name=f"y1{tag}"),
        b.add(e2, f2, name=f"y2{tag}"),
        b.add(e3, f3, name=f"y3{tag}"),
        b.sub(e3, f3, name=f"y4{tag}"),
        b.sub(e2, f2, name=f"y5{tag}"),
        b.sub(e1, f1, name=f"y6{tag}"),
        b.sub(e0, f0, name=f"y7{tag}"),
    ]
    return y


def build_idct8(max_latency: int = 32, trip_count: int = 16) -> Region:
    """1-D 8-point IDCT: one column per iteration."""
    b = RegionBuilder("idct8", is_loop=True, min_latency=1,
                      max_latency=max_latency)
    x = [b.read(f"x{i}", WIDTH) for i in range(8)]
    y = idct8_dataflow(b, x)
    for i, value in enumerate(y):
        b.write(f"y{i}", value)
    b.set_trip_count(trip_count)
    return b.build()


def build_idct2d(max_latency: int = 32, trip_count: int = 4,
                 columns: int = 2) -> Region:
    """Row/column 2-D IDCT over ``columns`` columns per iteration.

    A full 8x8 block needs 8 column passes; ``columns`` scales the DFG
    size (2 columns ~ 270 operations, 8 ~ over a thousand) so experiments
    can pick their size/runtime point.
    """
    b = RegionBuilder("idct2d", is_loop=True, min_latency=1,
                      max_latency=max_latency)
    outs: List[List[Value]] = []
    for col in range(columns):
        x = [b.read(f"x{col}_{i}", WIDTH) for i in range(8)]
        rows = idct8_dataflow(b, x, tag=f"_r{col}")
        cols = idct8_dataflow(b, rows, tag=f"_c{col}")
        outs.append(cols)
    for col, values in enumerate(outs):
        for i, value in enumerate(values):
            b.write(f"y{col}_{i}", value)
    b.set_trip_count(trip_count)
    return b.build()
