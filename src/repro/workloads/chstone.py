"""CHStone-class kernels written in the pyfront Python subset.

Three classic HLS benchmark shapes, each a plain Python function whose
CPython execution is the verification oracle:

* :func:`adpcm_encode` -- IMA ADPCM step-adaptive speech encoder
  (data-dependent table lookups, saturation, carried predictor state);
* :func:`jpeg_dct` -- an 8x8 two-pass fixed-point DCT with JPEG-style
  reciprocal-multiply quantization (butterfly arithmetic, dynamic
  addressing of a scratch array, if-converted row/column passes);
* :func:`mips_vm` -- a fetch/decode/execute interpreter over a small
  encoded instruction memory (a ``while`` loop with a data-dependent
  exit, register-file and data-memory traffic every iteration).
"""

from __future__ import annotations

from repro.workloads.pyfunc import pyfunc_workload

# ----------------------------------------------------------------------
# ADPCM: IMA step-adaptive differential PCM, 16 samples per block
# ----------------------------------------------------------------------

#: a deterministic speech-like test block (decaying oscillation).
ADPCM_SAMPLES = [0, 620, 1120, 1370, 1310, 960, 380, -280,
                 -850, -1190, -1230, -970, -480, 120, 660, 1020]


@pyfunc_workload("adpcm",
                 arrays={"x": ADPCM_SAMPLES, "out": [0] * 16},
                 description="IMA ADPCM encoder, 16-sample block")
def adpcm_encode(x: "i32[16]", out: "i32[16]") -> int:
    """Encode 16 PCM samples to 4-bit ADPCM codes; returns the final
    predictor value."""
    step_table = [
        7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
        19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
        50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
        130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
        337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
        876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
        2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
        5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
        15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
    ]
    index_table = [-1, -1, -1, -1, 2, 4, 6, 8]
    valpred = 0
    index = 0
    for i in range(16):
        sample = x[i]
        step = step_table[index]
        diff = sample - valpred
        if diff < 0:
            sign = 8
            diff = -diff
        else:
            sign = 0
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff = diff - step
            vpdiff = vpdiff + step
        half = step >> 1
        if diff >= half:
            delta = delta | 2
            diff = diff - half
            vpdiff = vpdiff + half
        quarter = step >> 2
        if diff >= quarter:
            delta = delta | 1
            vpdiff = vpdiff + quarter
        if sign != 0:
            valpred = valpred - vpdiff
        else:
            valpred = valpred + vpdiff
        valpred = max(-32768, min(valpred, 32767))
        index = index + index_table[delta]
        index = max(0, min(index, 88))
        out[i] = delta | sign
    return valpred


# ----------------------------------------------------------------------
# JPEG: 8x8 fixed-point DCT (row pass + column pass) with quantization
# ----------------------------------------------------------------------

#: ITU-T T.81 luminance quantization table, row-major.
JPEG_QUANT = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

#: quantization as a reciprocal multiply: q = (f * recip) >> 15.
JPEG_RECIP = [32768 // q for q in JPEG_QUANT]

#: a deterministic level-shifted test block (diagonal gradient).
JPEG_BLOCK = [((r * 8 + c * 5) % 256) - 128
              for r in range(8) for c in range(8)]


@pyfunc_workload("jpeg_dct",
                 arrays={"blk": JPEG_BLOCK, "out": [0] * 64,
                         "recip": JPEG_RECIP},
                 description="8x8 fixed-point DCT + quantize, two passes")
def jpeg_dct(blk: "i32[64]", out: "i32[64]", recip: "i32[64]") -> int:
    """Two-pass 8x8 DCT: iterations 0-7 transform rows of ``blk`` into
    a scratch array, iterations 8-15 transform its columns and quantize
    by reciprocal multiplication into ``out``.  Returns the DC term."""
    tmp = [0] * 64
    dc = 0
    for t in range(16):
        row = t < 8
        r = t if row else t - 8
        # gather: row r of blk, or column r of tmp
        s0 = blk[r * 8 + 0] if row else tmp[r + 0]
        s1 = blk[r * 8 + 1] if row else tmp[r + 8]
        s2 = blk[r * 8 + 2] if row else tmp[r + 16]
        s3 = blk[r * 8 + 3] if row else tmp[r + 24]
        s4 = blk[r * 8 + 4] if row else tmp[r + 32]
        s5 = blk[r * 8 + 5] if row else tmp[r + 40]
        s6 = blk[r * 8 + 6] if row else tmp[r + 48]
        s7 = blk[r * 8 + 7] if row else tmp[r + 56]
        # butterflies
        t0 = s0 + s7
        t7 = s0 - s7
        t1 = s1 + s6
        t6 = s1 - s6
        t2 = s2 + s5
        t5 = s2 - s5
        t3 = s3 + s4
        t4 = s3 - s4
        # even part (c4 = 1024*cos(pi/4), c2/c6 pair rotation)
        e0 = t0 + t3
        e3 = t0 - t3
        e1 = t1 + t2
        e2 = t1 - t2
        f0 = ((e0 + e1) * 724) >> 10
        f4 = ((e0 - e1) * 724) >> 10
        f2 = (e3 * 946 + e2 * 392) >> 10
        f6 = (e3 * 392 - e2 * 946) >> 10
        # odd part (direct 4-point product with 1024*cos(k*pi/16))
        f1 = (t7 * 1004 + t6 * 851 + t5 * 569 + t4 * 200) >> 10
        f3 = (t7 * 851 - t6 * 200 - t5 * 1004 - t4 * 569) >> 10
        f5 = (t7 * 569 - t6 * 1004 + t5 * 200 + t4 * 851) >> 10
        f7 = (t7 * 200 - t6 * 569 + t5 * 851 - t4 * 1004) >> 10
        if row:
            # scatter row r of the scratch array
            tmp[r * 8 + 0] = f0
            tmp[r * 8 + 1] = f1
            tmp[r * 8 + 2] = f2
            tmp[r * 8 + 3] = f3
            tmp[r * 8 + 4] = f4
            tmp[r * 8 + 5] = f5
            tmp[r * 8 + 6] = f6
            tmp[r * 8 + 7] = f7
        else:
            # scatter column r of the output, quantized
            out[r + 0] = (f0 * recip[r + 0]) >> 15
            out[r + 8] = (f1 * recip[r + 8]) >> 15
            out[r + 16] = (f2 * recip[r + 16]) >> 15
            out[r + 24] = (f3 * recip[r + 24]) >> 15
            out[r + 32] = (f4 * recip[r + 32]) >> 15
            out[r + 40] = (f5 * recip[r + 40]) >> 15
            out[r + 48] = (f6 * recip[r + 48]) >> 15
            out[r + 56] = (f7 * recip[r + 56]) >> 15
            if r == 0:
                dc = (f0 * recip[0]) >> 15
    return dc


# ----------------------------------------------------------------------
# MIPS: a fetch/decode/execute interpreter over an encoded program
# ----------------------------------------------------------------------

def _encode(op: int, rd: int, rs: int, rt: int) -> int:
    """Pack one 16-bit instruction: [15:12] op, [11:8] rd, [7:4] rs,
    [3:0] rt-or-imm."""
    return (op << 12) | (rd << 8) | (rs << 4) | rt


#: sum dmem[0..7] into r1, store the total at dmem[8], halt.
MIPS_PROGRAM = [
    _encode(1, 1, 0, 0),   # 0: addi r1, r0, 0    (sum)
    _encode(1, 2, 0, 0),   # 1: addi r2, r0, 0    (i)
    _encode(1, 3, 0, 8),   # 2: addi r3, r0, 8    (limit)
    _encode(4, 4, 2, 0),   # 3: ld   r4, (r2)
    _encode(2, 1, 1, 4),   # 4: add  r1, r1, r4
    _encode(1, 2, 2, 1),   # 5: addi r2, r2, 1
    _encode(7, 3, 2, 3),   # 6: bne  r2, r3 -> 3
    _encode(5, 0, 2, 1),   # 7: st   r1, (r2)     (dmem[8] = sum)
    _encode(0, 0, 0, 0),   # 8: halt
] + [0] * 7

#: eight data words to sum (deliberately mixed-sign).
MIPS_DATA = [3, -1, 4, 1, -5, 9, 2, 6] + [0] * 8


@pyfunc_workload("mips",
                 arrays={"imem": MIPS_PROGRAM, "dmem": MIPS_DATA,
                         "regs": [0] * 8},
                 description="fetch/decode/execute interpreter")
def mips_vm(imem: "i32[16]", dmem: "i32[16]", regs: "i32[8]") -> int:
    """Interpret the encoded program until a halt opcode; returns the
    number of executed instructions."""
    pc = 0
    running = 1
    steps = 0
    while running == 1:
        instr = imem[pc]
        op = (instr >> 12) & 15
        rd = (instr >> 8) & 15
        rs = (instr >> 4) & 15
        rt = instr & 15
        va = regs[rs & 7]
        vb = regs[rt & 7]
        nxt = pc + 1
        val = 0
        wr = 0
        if op == 1:            # addi rd, rs, imm4
            val = va + rt
            wr = 1
        elif op == 2:          # add rd, rs, rt
            val = va + vb
            wr = 1
        elif op == 3:          # sub rd, rs, rt
            val = va - vb
            wr = 1
        elif op == 4:          # ld rd, (rs)
            val = dmem[va & 15]
            wr = 1
        elif op == 5:          # st rt -> (rs)
            dmem[va & 15] = vb
        elif op == 6:          # beq rs, rt -> rd
            if va == vb:
                nxt = rd
        elif op == 7:          # bne rs, rt -> rd
            if va != vb:
                nxt = rd
        else:                  # halt (op 0 and anything undefined)
            running = 0
        if wr == 1:
            regs[rd & 7] = val
        pc = nxt & 15
        steps = steps + 1
    return steps


__all__ = [
    "ADPCM_SAMPLES",
    "JPEG_BLOCK",
    "JPEG_QUANT",
    "JPEG_RECIP",
    "MIPS_DATA",
    "MIPS_PROGRAM",
    "adpcm_encode",
    "jpeg_dct",
    "mips_vm",
]
