"""FFT butterfly workloads (another Figure 9 population member)."""

from __future__ import annotations

from typing import List

from repro.cdfg.builder import RegionBuilder, Value
from repro.cdfg.region import Region

WIDTH = 32


def _butterfly(b: RegionBuilder, ar: Value, ai: Value, br: Value,
               bi: Value, wr: Value, wi: Value, tag: str):
    """One radix-2 DIT butterfly: (a + w*b, a - w*b), 4 multiplies."""
    tr = b.sub(b.mul(br, wr, name=f"bw_rr{tag}"),
               b.mul(bi, wi, name=f"bw_ii{tag}"), name=f"tr{tag}")
    ti = b.add(b.mul(br, wi, name=f"bw_ri{tag}"),
               b.mul(bi, wr, name=f"bw_ir{tag}"), name=f"ti{tag}")
    return (b.add(ar, tr, name=f"or0{tag}"), b.add(ai, ti, name=f"oi0{tag}"),
            b.sub(ar, tr, name=f"or1{tag}"), b.sub(ai, ti, name=f"oi1{tag}"))


def build_fft_stage(max_latency: int = 16, trip_count: int = 16) -> Region:
    """A streaming single-butterfly FFT stage: fully pipelinable."""
    b = RegionBuilder("fft_stage", is_loop=True, max_latency=max_latency)
    args = [b.read(name, WIDTH) for name in
            ("ar", "ai", "br", "bi", "wr", "wi")]
    outs = _butterfly(b, *args, tag="")
    for name, value in zip(("pr", "pi", "qr", "qi"), outs):
        b.write(name, value)
    b.set_trip_count(trip_count)
    return b.build()


def build_fft8(max_latency: int = 32, trip_count: int = 8) -> Region:
    """A fully unrolled 8-point FFT network (12 butterflies, 48 muls).

    Twiddles come in as ports so the dataflow matches a coefficient-RAM
    driven design.
    """
    b = RegionBuilder("fft8", is_loop=True, max_latency=max_latency)
    re: List[Value] = [b.read(f"re{i}", WIDTH) for i in range(8)]
    im: List[Value] = [b.read(f"im{i}", WIDTH) for i in range(8)]
    twr = [b.read(f"twr{i}", WIDTH) for i in range(4)]
    twi = [b.read(f"twi{i}", WIDTH) for i in range(4)]
    # three stages of radix-2 butterflies over bit-reversed pairs
    pairs_per_stage = [
        [(0, 4), (1, 5), (2, 6), (3, 7)],
        [(0, 2), (1, 3), (4, 6), (5, 7)],
        [(0, 1), (2, 3), (4, 5), (6, 7)],
    ]
    for stage, pairs in enumerate(pairs_per_stage):
        new_re, new_im = list(re), list(im)
        for k, (i, j) in enumerate(pairs):
            pr, pi, qr, qi = _butterfly(
                b, re[i], im[i], re[j], im[j],
                twr[k % 4], twi[k % 4], tag=f"_s{stage}b{k}")
            new_re[i], new_im[i] = pr, pi
            new_re[j], new_im[j] = qr, qi
        re, im = new_re, new_im
    for i in range(8):
        b.write(f"outr{i}", re[i])
        b.write(f"outi{i}", im[i])
    b.set_trip_count(trip_count)
    return b.build()
