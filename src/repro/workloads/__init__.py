"""Workload designs: the paper's example, real kernels and the synthetic
industrial-design generator used for the evaluation section.

:data:`WORKLOAD_REGISTRY` is the single catalog of addressable kernels;
the CLI, flows and benchmarks resolve names through it, and
:func:`register_workload` lets downstream code add entries.
"""

from typing import Callable, Dict

from repro.cdfg.region import Region
from repro.workloads.conv2d import (
    build_conv3x3,
    build_conv3x3_mem,
    reference_conv3x3_mem,
)
from repro.workloads.example1 import build_example1
from repro.workloads.fft import build_fft8, build_fft_stage
from repro.workloads.fir import build_fir, reference_fir
from repro.workloads.idct import build_idct8, build_idct2d
from repro.workloads.matmul import (
    build_dot_product,
    build_dot_product_mem,
    reference_dot_product,
    reference_dot_product_mem,
)
from repro.workloads.sobel import (
    build_sobel,
    build_sobel_mem,
    reference_sobel,
    reference_sobel_mem,
)
from repro.workloads.streaming import (
    build_fir_decimate_stream,
    build_matmul_relu_stream,
    build_sobel_threshold_stream,
    fir_samples,
    matmul_relu_inputs,
    reference_fir_decimate_stream,
    reference_matmul_relu_stream,
    reference_sobel_threshold_stream,
    sobel_rows,
)
from repro.workloads.synthetic import (
    SyntheticSpec,
    build_timing_critical,
    generate_design,
    industrial_suite,
    timing_critical_suite,
)

def build_synthetic() -> Region:
    """A deterministic mid-size synthetic industrial design."""
    return generate_design(SyntheticSpec(name="synthetic", seed=2011,
                                         n_ops=40))


#: workloads addressable by name from the CLI, flows and sweeps.
WORKLOAD_REGISTRY: Dict[str, Callable[[], Region]] = {
    "example1": build_example1,
    "idct": build_idct8,  # the paper's Figure 10/11 kernel (alias)
    "idct8": build_idct8,
    "idct2d": build_idct2d,
    "fir": build_fir,
    "fft_stage": build_fft_stage,
    "fft8": build_fft8,
    "conv3x3": build_conv3x3,
    "conv3x3_mem": build_conv3x3_mem,
    "matmul": build_dot_product,
    "matmul_mem": build_dot_product_mem,
    "sobel": build_sobel,
    "sobel_mem": build_sobel_mem,
    "synthetic": build_synthetic,
}


#: streaming pipelines addressable by name (factories return a
#: :class:`repro.dataflow.Pipeline`, not a Region -- they compose
#: several of them).
PIPELINE_REGISTRY: Dict[str, Callable[[], "Pipeline"]] = {  # noqa: F821
    "matmul_relu_stream": build_matmul_relu_stream,
    "sobel_threshold_stream": build_sobel_threshold_stream,
    "fir_decimate_stream": build_fir_decimate_stream,
}

#: deterministic input streams per registered pipeline (simulation and
#: CLI demos share them).
PIPELINE_INPUTS: Dict[str, Callable[[], Dict[str, list]]] = {
    "matmul_relu_stream": matmul_relu_inputs,
    "sobel_threshold_stream": sobel_rows,
    "fir_decimate_stream": fir_samples,
}


def register_workload(name: str,
                      factory: Callable[[], Region]) -> None:
    """Add (or replace) a named workload in the registry."""
    WORKLOAD_REGISTRY[name] = factory


def get_workload(name: str) -> Callable[[], Region]:
    """Resolve a workload factory; raises ``KeyError`` with choices."""
    try:
        return WORKLOAD_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"choose from {sorted(WORKLOAD_REGISTRY)}") from None


# imported after the registry above exists: the @pyfunc_workload
# decorators in chstone register themselves via register_workload
from repro.workloads.pyfunc import (  # noqa: E402
    PYFUNC_REGISTRY,
    PyfuncWorkload,
    check_against_oracle,
    pyfunc_workload,
)
from repro.workloads.chstone import (  # noqa: E402
    adpcm_encode,
    jpeg_dct,
    mips_vm,
)


def register_pipeline(name: str, factory) -> None:
    """Add (or replace) a named streaming pipeline in the registry."""
    PIPELINE_REGISTRY[name] = factory


def get_pipeline(name: str):
    """Resolve a pipeline factory; raises ``KeyError`` with choices."""
    try:
        return PIPELINE_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown pipeline {name!r}; "
                       f"choose from {sorted(PIPELINE_REGISTRY)}") from None


__all__ = [
    "PIPELINE_INPUTS",
    "PIPELINE_REGISTRY",
    "PYFUNC_REGISTRY",
    "PyfuncWorkload",
    "SyntheticSpec",
    "WORKLOAD_REGISTRY",
    "adpcm_encode",
    "check_against_oracle",
    "jpeg_dct",
    "mips_vm",
    "pyfunc_workload",
    "build_conv3x3",
    "build_conv3x3_mem",
    "build_dot_product",
    "build_dot_product_mem",
    "build_example1",
    "build_fft8",
    "build_fft_stage",
    "build_fir",
    "build_fir_decimate_stream",
    "build_idct2d",
    "build_idct8",
    "build_matmul_relu_stream",
    "build_sobel",
    "build_sobel_mem",
    "build_sobel_threshold_stream",
    "build_synthetic",
    "build_timing_critical",
    "fir_samples",
    "generate_design",
    "get_pipeline",
    "get_workload",
    "industrial_suite",
    "matmul_relu_inputs",
    "register_pipeline",
    "register_workload",
    "reference_conv3x3_mem",
    "reference_dot_product",
    "reference_dot_product_mem",
    "reference_fir",
    "reference_fir_decimate_stream",
    "reference_matmul_relu_stream",
    "reference_sobel",
    "reference_sobel_mem",
    "reference_sobel_threshold_stream",
    "sobel_rows",
    "timing_critical_suite",
]
