"""Workload designs: the paper's example, real kernels and the synthetic
industrial-design generator used for the evaluation section."""

from repro.workloads.conv2d import build_conv3x3
from repro.workloads.example1 import build_example1
from repro.workloads.fft import build_fft8, build_fft_stage
from repro.workloads.fir import build_fir, reference_fir
from repro.workloads.idct import build_idct8, build_idct2d
from repro.workloads.matmul import build_dot_product, reference_dot_product
from repro.workloads.sobel import build_sobel, reference_sobel
from repro.workloads.synthetic import (
    SyntheticSpec,
    build_timing_critical,
    generate_design,
    industrial_suite,
    timing_critical_suite,
)

__all__ = [
    "SyntheticSpec",
    "build_conv3x3",
    "build_dot_product",
    "build_example1",
    "build_fft8",
    "build_fft_stage",
    "build_fir",
    "build_idct2d",
    "build_idct8",
    "build_sobel",
    "build_timing_critical",
    "generate_design",
    "industrial_suite",
    "reference_dot_product",
    "reference_fir",
    "reference_sobel",
    "timing_critical_suite",
]
