"""The paper's running example (Figure 1 / Figure 3).

SystemC source of the do/while body::

    do {
        int filt = mask;
        delta = mask * chrome;
        aver += delta;
        if (aver > th) { aver *= scale; }
        wait();  // s1
        pixel = aver * filt;
    } while (delta != 0);

The DFG (paper Figure 3b) has three multiplications (``mul1_op`` =
mask*chrome, ``mul2_op`` = aver*scale, ``mul3_op`` = aver*filt), an
accumulator strongly connected component {loopMux, add_op, mul2_op, MUX}
and the exit test ``neq_op``.
"""

from __future__ import annotations

from repro.cdfg.builder import RegionBuilder
from repro.cdfg.region import Region

#: default data width of the example (SystemC ``int``).
WIDTH = 32


def build_example1(max_latency: int = 3, width: int = WIDTH) -> Region:
    """Build the paper's Example 1 loop region.

    ``1 <= latency <= max_latency`` as in section IV ("1 <= latency <= 3
    for the do-while loop").
    """
    b = RegionBuilder("example1", is_loop=True,
                      min_latency=1, max_latency=max_latency)
    mask = b.read("mask", width, name="mask_read")
    chrome = b.read("chrome", width, name="chrome_read")
    scale = b.read("scale", width, name="scale_read")
    th = b.read("th", width, name="th_read")

    filt = mask  # int filt = mask (a plain move, copy-propagated away)
    delta = b.mul(mask, chrome, name="mul1_op")

    aver = b.loop_var("aver", b.const(0, width))
    summed = b.add(aver, delta, name="add_op")
    over = b.gt(summed, th, name="gt_op")
    scaled = b.mul(summed, scale, name="mul2_op")
    aver_next = b.mux(over, scaled, summed, name="MUX")
    aver.set_next(aver_next)

    b.write("pixel", b.mul(aver_next, filt, name="mul3_op"),
            name="pixel_write")

    cont = b.neq(delta, 0, name="neq_op")
    b.exit_when_false(cont)
    return b.build()
