"""Synthetic industrial-design generator.

The paper's Figure 9 plots scheduler runtime over ~40 proprietary
industrial designs (filters, FFTs, image processing; 100 to over 6000
operations, average 1400).  Those designs are not available, so this
module generates a deterministic population with the same structural
signature: layered arithmetic dataflow with configurable operation mix,
loop-carried accumulator SCCs with configurable feedback chains, branch
predicates, and a checksum output tree that keeps every value live.

``timing_critical_suite`` builds the seven-design population for the
Table 4 ablation: each design has an SCC whose feedback chain only meets
the clock when the scheduler is free to move the SCC window (the paper's
"seven most timing-critical designs").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cdfg.builder import RegionBuilder, Value
from repro.cdfg.region import Region

#: operation mix modeled on filter/FFT/imaging kernels.
_KIND_WEIGHTS = [
    ("add", 0.34), ("sub", 0.16), ("mul", 0.20), ("mux", 0.08),
    ("xor", 0.06), ("and", 0.05), ("shl", 0.04), ("gt", 0.04),
    ("eq", 0.03),
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one generated design."""

    name: str
    seed: int
    n_ops: int
    n_inputs: int = 4
    n_accumulators: int = 2
    #: feedback chain of each accumulator, e.g. ("add",) or ("mul", "add").
    scc_chain: Sequence[str] = ("add",)
    #: dataflow depth in layers; industrial datapaths are wide, not deep.
    depth: int = 10
    #: feed accumulator chains from input ports only (values available at
    #: state 0), making SCC timing depend purely on window placement --
    #: the controlled setting of the Table 4 experiment.
    scc_from_inputs: bool = False
    width: int = 32
    max_latency: int = 48
    trip_count: int = 64


def generate_design(spec: SyntheticSpec) -> Region:
    """Build one deterministic synthetic design (layered dataflow)."""
    rng = random.Random(spec.seed)
    b = RegionBuilder(spec.name, is_loop=True, max_latency=spec.max_latency)
    inputs: List[Value] = [b.read(f"in{i}", spec.width)
                           for i in range(spec.n_inputs)]
    conds: List[Value] = []
    pool: List[Value] = []  # union of earlier layers
    layer: List[Value] = list(inputs)

    accs = []
    for i in range(spec.n_accumulators):
        lv = b.loop_var(f"acc{i}", b.const(rng.randrange(1, 9), spec.width))
        accs.append(lv)
        layer.append(lv.value)

    def pick(rng: random.Random) -> Value:
        # mostly the previous layer (short chains), sometimes further back
        if pool and rng.random() < 0.25:
            return pool[rng.randrange(len(pool))]
        return layer[rng.randrange(len(layer))]

    kinds = [k for k, _w in _KIND_WEIGHTS]
    weights = [w for _k, w in _KIND_WEIGHTS]
    target = max(spec.n_ops - 3 * spec.n_accumulators
                 - len(layer) - 8, 8)
    per_layer = max(target // spec.depth, 1)
    made = 0
    next_layer: List[Value] = []
    while made < target:
        kind = rng.choices(kinds, weights)[0]
        a, c = pick(rng), pick(rng)
        if kind == "add":
            value = b.add(a, c)
        elif kind == "sub":
            value = b.sub(a, c)
        elif kind == "mul":
            value = b.mul(a, c)
        elif kind == "xor":
            value = b.xor(a, c)
        elif kind == "and":
            value = b.and_(a, c)
        elif kind == "shl":
            value = b.shl(a, b.const(rng.randrange(1, 5), 4))
        elif kind == "gt":
            value = b.gt(a, c)
            conds.append(value)
        elif kind == "eq":
            value = b.eq(a, c)
            conds.append(value)
        else:  # mux
            if not conds:
                cond = b.gt(a, c)
                conds.append(cond)
                made += 1
            value = b.mux(conds[rng.randrange(len(conds))], a, c)
        if value.width > 1:
            next_layer.append(value)
        made += 1
        if len(next_layer) >= per_layer:
            pool.extend(layer)
            layer = next_layer or layer
            next_layer = []
    if next_layer:
        pool.extend(layer)
        layer = next_layer
    pool.extend(layer)

    # close accumulator feedback with the configured SCC chain; feedback
    # operands must be independent of the accumulators, otherwise the SCC
    # would swallow whole dependence chains and no II window could hold it
    tainted = {lv.mux.uid for lv in accs}
    for op in b.dfg.topological_order():
        if any(e.src in tainted for e in b.dfg.in_edges(op.uid)
               if e.distance == 0):
            tainted.add(op.uid)
    if spec.scc_from_inputs:
        clean = list(inputs)
    else:
        clean = [v for v in pool if v.op.uid not in tainted] or list(inputs)
    for i, lv in enumerate(accs):
        value = lv.value
        for j, kind in enumerate(spec.scc_chain):
            other = clean[rng.randrange(len(clean))]
            if kind == "mul":
                value = b.mul(value, other, name=f"scc{i}_mul{j}")
            elif kind == "sub":
                value = b.sub(value, other, name=f"scc{i}_sub{j}")
            else:
                value = b.add(value, other, name=f"scc{i}_add{j}")
        lv.set_next(value)
        pool.append(value)

    # balanced checksum tree keeps every sink alive with log-depth fanin
    consumed = set()
    for op in b.dfg.ops:
        for edge in b.dfg.in_edges(op.uid):
            consumed.add(edge.src)
    level = [v for v in pool if v.op.uid not in consumed] or [pool[-1]]
    while len(level) > 1:
        nxt = [b.xor(level[i], level[i + 1])
               for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    b.write("sig", level[0])
    b.set_trip_count(spec.trip_count)
    return b.build()


def industrial_suite(n_designs: int = 40, seed: int = 2011,
                     min_ops: int = 100,
                     max_ops: int = 6000) -> List[Tuple[SyntheticSpec, Region]]:
    """The Figure 9 population: sizes log-spaced 100..6000 operations.

    Execution time in the paper does not correlate with size but with
    constraint tightness; the population therefore varies accumulator
    count and SCC chains independently of size.
    """
    rng = random.Random(seed)
    designs: List[Tuple[SyntheticSpec, Region]] = []
    for i in range(n_designs):
        frac = i / max(n_designs - 1, 1)
        n_ops = int(min_ops * (max_ops / min_ops) ** frac)
        chain = rng.choice([("add",), ("add", "add"), ("mul",),
                            ("add", "mul")])
        spec = SyntheticSpec(
            name=f"ind{i:02d}",
            seed=seed * 1000 + i,
            n_ops=n_ops,
            n_inputs=max(3, n_ops // 60),
            n_accumulators=1 + rng.randrange(3),
            scc_chain=chain,
            max_latency=48,
            trip_count=32,
        )
        designs.append((spec, generate_design(spec)))
    return designs


def timing_critical_suite(seed: int = 7) -> List[Tuple[str, Region, float, int]]:
    """The Table 4 population: 7 pipelined designs with SCCs whose
    placement decides timing closure.

    Each design embeds the paper's Example 1 mechanics -- an accumulator
    SCC fed by a chained multiply, so the dependency-anchored (timing
    blind) window position violates the clock while a moved window meets
    it -- inside a feedforward side dataflow that scales the total area.
    The chain composition (adder-only vs multiply-bearing) controls how
    much area the compensation step must spend, spreading the penalties
    across the paper's 2..35 % band.

    Returns ``(name, region, clock_ps, ii)`` tuples.
    """
    # every design keeps its *registered* SCC chain within one state
    # (II=1), while the dependency-anchored chained version violates the
    # clock -- the Example 3 mechanism at varying scale and chain cost:
    # ('mul',) registered needs 1580 ps, ('add',) 1000 ps, ('add','add')
    # 1350 ps; the blind anchor chains the delta multiply on top.
    configs = [
        # name, scc kinds,   cores, side ops, clock,  ii
        ("D1", ("mul",), 2, 60, 1600.0, 1),
        ("D2", ("add",), 1, 90, 1600.0, 1),
        ("D3", ("mul",), 2, 22, 1600.0, 1),
        ("D4", ("add", "add"), 2, 30, 1450.0, 1),
        ("D5", ("add",), 1, 150, 1250.0, 1),
        ("D6", ("add", "add"), 1, 120, 1600.0, 1),
        ("D7", ("mul",), 2, 80, 1600.0, 1),
    ]
    out: List[Tuple[str, Region, float, int]] = []
    for i, (name, chain, cores, side_ops, clock, ii) in enumerate(configs):
        region = build_timing_critical(name, chain, side_ops,
                                       seed=seed * 100 + i,
                                       n_cores=cores)
        out.append((name, region, clock, ii))
    return out


def build_timing_critical(name: str, scc_chain: Sequence[str],
                          side_ops: int, seed: int,
                          width: int = 32, n_cores: int = 1) -> Region:
    """One Table 4 design: an Example-1-style SCC plus side dataflow.

    The SCC consumes ``delta = in0 * in1`` -- chained, the multiply's
    arrival pushes the accumulator chain past the clock (the blind
    anchor's mistake); registered (window moved one state later) it
    fits.
    """
    rng = random.Random(seed)
    b = RegionBuilder(name, is_loop=True, min_latency=1, max_latency=24)
    ins = [b.read(f"in{i}", width) for i in range(6)]
    for c in range(n_cores):
        # --- one Example 1 core ---------------------------------------
        delta = b.mul(ins[c % 2], ins[(c + 1) % 3], name=f"c{c}_mul1")
        acc = b.loop_var(f"acc{c}", b.const(0, width))
        summed = b.add(acc, delta, name=f"c{c}_add")
        value = summed
        for j, kind in enumerate(scc_chain):
            if kind == "mul":
                value = b.mul(value, ins[2], name=f"c{c}_scc_mul{j}")
            else:
                value = b.add(value, ins[3], name=f"c{c}_scc_add{j}")
        # like Example 1, the comparison reads the pre-chain sum so it
        # stays off the critical path of the single-state kernel
        over = b.gt(summed, ins[4], name=f"c{c}_gt")
        nxt = b.mux(over, value, summed, name=f"c{c}_mux")
        acc.set_next(nxt)
        b.write(f"out{c}", b.mul(nxt, ins[0], name=f"c{c}_mul3"))
    # --- feedforward side dataflow ------------------------------------
    pool = list(ins)
    sinks = []
    for k in range(side_ops):
        x = pool[rng.randrange(len(pool))]
        y = pool[rng.randrange(len(pool))]
        choice = rng.random()
        if choice < 0.25:
            v = b.mul(x, y, name=f"side_mul{k}")
        elif choice < 0.7:
            v = b.add(x, y, name=f"side_add{k}")
        else:
            v = b.xor(x, y, name=f"side_xor{k}")
        pool.append(v)
        sinks.append(v)
    level = sinks or [pool[-1]]
    while len(level) > 1:
        level = ([b.xor(level[i], level[i + 1])
                  for i in range(0, len(level) - 1, 2)]
                 + ([level[-1]] if len(level) % 2 else []))
    b.write("sig", level[0])
    b.set_trip_count(32)
    return b.build()
