"""Blocked matrix-multiply accumulation workload.

One iteration multiplies a 1xK row slice against a Kx1 column slice and
accumulates into a running dot product -- the inner loop of a blocked
GEMM, with the accumulator SCC that makes pipelining interesting: at
II=1 the accumulate chain must fit a single state.
"""

from __future__ import annotations

from repro.cdfg.builder import RegionBuilder
from repro.cdfg.region import Region


def build_dot_product(k: int = 4, width: int = 32,
                      max_latency: int = 16,
                      trip_count: int = 16) -> Region:
    """K-wide dot-product accumulator: y += sum_i a_i * b_i."""
    if k < 1:
        raise ValueError("k must be >= 1")
    b = RegionBuilder(f"dot{k}", is_loop=True, max_latency=max_latency)
    a_ports = [b.read(f"a{i}", width) for i in range(k)]
    b_ports = [b.read(f"b{i}", width) for i in range(k)]
    acc = b.loop_var("acc", b.const(0, width))
    total = None
    for i in range(k):
        term = b.mul(a_ports[i], b_ports[i], name=f"prod{i}")
        total = term if total is None else b.add(total, term,
                                                 name=f"tsum{i}")
    nxt = b.add(acc, total, name="acc_add")
    acc.set_next(nxt)
    b.write("y", nxt)
    b.set_trip_count(trip_count)
    return b.build()


def reference_dot_product(k: int, a_rows, b_rows):
    """Pure-python oracle: running dot-product partial sums."""
    out = []
    acc = 0
    for a_vec, b_vec in zip(a_rows, b_rows):
        acc += sum(x * y for x, y in zip(a_vec[:k], b_vec[:k]))
        out.append(acc)
    return out
