"""Blocked matrix-multiply accumulation workload.

One iteration multiplies a 1xK row slice against a Kx1 column slice and
accumulates into a running dot product -- the inner loop of a blocked
GEMM, with the accumulator SCC that makes pipelining interesting: at
II=1 the accumulate chain must fit a single state.

Two variants are provided:

* :func:`build_dot_product` -- the historical *scalar* form: the K
  operands arrive as K separate input ports per iteration, so memory
  port contention is invisible to the scheduler.
* :func:`build_dot_product_mem` -- the *memory-backed* form: the
  vectors live in on-chip arrays and each iteration issues K loads per
  array (``address = iteration * K + j``, the unrolled-by-K access
  pattern).  With a single-bank single-port RAM the loads serialize and
  bound II from below by K; cyclic banking by K (``banks=k``) gives
  every load a static bank of its own and restores II=1 -- the
  unroll-plus-partition transformation of memory-aware HLS.  A result
  array additionally exercises the store path.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cdfg.builder import RegionBuilder
from repro.cdfg.region import Region


def build_dot_product(k: int = 4, width: int = 32,
                      max_latency: int = 16,
                      trip_count: int = 16) -> Region:
    """K-wide dot-product accumulator: y += sum_i a_i * b_i (scalar
    ports; kept as the port-streaming variant)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    b = RegionBuilder(f"dot{k}", is_loop=True, max_latency=max_latency)
    a_ports = [b.read(f"a{i}", width) for i in range(k)]
    b_ports = [b.read(f"b{i}", width) for i in range(k)]
    acc = b.loop_var("acc", b.const(0, width))
    total = None
    for i in range(k):
        term = b.mul(a_ports[i], b_ports[i], name=f"prod{i}")
        total = term if total is None else b.add(total, term,
                                                 name=f"tsum{i}")
    nxt = b.add(acc, total, name="acc_add")
    acc.set_next(nxt)
    b.write("y", nxt)
    b.set_trip_count(trip_count)
    return b.build()


def matmul_vectors(depth: int, seed: int = 7) -> List[int]:
    """Deterministic array contents for the memory-backed variant."""
    out = []
    state = seed & 0xFFFF or 1
    for _ in range(depth):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(state % 97 - 48)
    return out


def build_dot_product_mem(k: int = 2, depth: int = 16, width: int = 32,
                          banks: int = 1, ports: int = 1,
                          max_latency: int = 16,
                          seed: int = 7) -> Region:
    """Memory-backed K-wide dot product.

    Vectors ``a`` and ``b`` live in RAM; iteration ``i`` loads words
    ``k*i + j`` (j = 0..k-1) from each, multiplies pairwise and
    accumulates.  The running sum streams out on port ``y`` and is also
    stored into result array ``res`` (the store path).  ``banks`` and
    ``ports`` set the declared RAM geometry of both vector arrays --
    the knobs that move the memory-constrained II.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if depth % k:
        raise ValueError("depth must be divisible by k")
    b = RegionBuilder(f"dot{k}_mem", is_loop=True,
                      max_latency=max_latency)
    trip = depth // k
    a = b.array("a", depth, width, banks=banks, ports=ports,
                init=matmul_vectors(depth, seed))
    bv = b.array("b", depth, width, banks=banks, ports=ports,
                 init=matmul_vectors(depth, seed + 1))
    res = b.array("res", trip, width)
    acc = b.loop_var("acc", b.const(0, width))
    total = None
    for j in range(k):
        av = b.load(a, offset=j, stride=k, name=f"a_ld{j}")
        bw = b.load(bv, offset=j, stride=k, name=f"b_ld{j}")
        term = b.mul(av, bw, name=f"prod{j}")
        total = term if total is None else b.add(total, term,
                                                 name=f"tsum{j}")
    nxt = b.add(acc, total, name="acc_add")
    acc.set_next(nxt)
    b.store(res, nxt, offset=0, stride=1, name="res_st")
    b.write("y", nxt)
    b.set_trip_count(trip)
    return b.build()


def reference_dot_product(k: int, a_rows, b_rows):
    """Pure-python oracle: running dot-product partial sums."""
    out = []
    acc = 0
    for a_vec, b_vec in zip(a_rows, b_rows):
        acc += sum(x * y for x, y in zip(a_vec[:k], b_vec[:k]))
        out.append(acc)
    return out


def reference_dot_product_mem(k: int = 2, depth: int = 16,
                              seed: int = 7,
                              a: Optional[List[int]] = None,
                              b: Optional[List[int]] = None):
    """Oracle for the memory-backed variant: partial sums per iteration."""
    a = a if a is not None else matmul_vectors(depth, seed)
    b = b if b is not None else matmul_vectors(depth, seed + 1)
    out = []
    acc = 0
    for i in range(depth // k):
        acc += sum(a[k * i + j] * b[k * i + j] for j in range(k))
        out.append(acc)
    return out
