"""Workloads defined as plain Python functions (pyfront kernels).

``@pyfunc_workload`` registers a function whose hardware lowering goes
through :func:`repro.frontend.pyfront.compile_python_function` and whose
**oracle is the function itself**: executing it under CPython yields the
exact return value and final array contents the scheduled machine must
reproduce, bit for bit, under 32-bit two's-complement semantics.

The decorated function stays a normal callable, so tests can feed it
Hypothesis-random inputs and compare against the simulators directly.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cdfg.region import Region
from repro.frontend.legacy.elaborate import ElaboratedLoop
from repro.frontend.pyfront import compile_python_function
from repro.sim.evalops import wrap
from repro.sim.machine import simulate_schedule
from repro.sim.reference import SimResult

#: catalog of function-defined workloads, by name.
PYFUNC_REGISTRY: Dict[str, "PyfuncWorkload"] = {}


@dataclass
class OracleRun:
    """What one CPython execution of a kernel produced."""

    #: the function's return value (wrapped to 32 bits), or None.
    value: Optional[int]
    #: final contents per array parameter, zero-padded to the declared
    #: depth (directly comparable to ``SimResult.memories``).
    memories: Dict[str, List[int]]


@dataclass
class PyfuncWorkload:
    """A named kernel written in the pyfront Python subset.

    ``scalars`` are the default values of the int parameters and
    ``arrays`` the default contents of the array parameters; both can be
    overridden per run, which is how the property tests randomize.
    """

    name: str
    fn: Callable
    arrays: Dict[str, List[int]] = field(default_factory=dict)
    scalars: Dict[str, int] = field(default_factory=dict)
    description: str = ""

    # -- compilation ----------------------------------------------------
    def compile(self) -> ElaboratedLoop:
        """Lower the function through pyfront (fresh every call, so
        downstream passes may mutate the region freely)."""
        return compile_python_function(self.fn, arrays=self.arrays)

    def build(self) -> Region:
        """Workload-registry factory: the compiled region."""
        return self.compile().region

    # -- run description ------------------------------------------------
    def _param_kinds(self):
        """``[(name, is_array), ...]`` in declaration order."""
        params = inspect.signature(self.fn).parameters
        return [(p.name, isinstance(p.annotation, str)
                 and "[" in p.annotation)
                for p in params.values()]

    def sim_inputs(self, scalars: Optional[Dict[str, int]] = None,
                   ) -> Dict[str, List[int]]:
        """Port input streams for the simulators (scalar params only)."""
        merged = dict(self.scalars)
        merged.update(scalars or {})
        return {name: [merged.get(name, 0)]
                for name, is_array in self._param_kinds() if not is_array}

    def memory_init(self, arrays: Optional[Dict[str, List[int]]] = None,
                    ) -> Dict[str, List[int]]:
        """Memory override for the simulators (array params only)."""
        merged = dict(self.arrays)
        merged.update(arrays or {})
        return {name: list(contents) for name, contents in merged.items()}

    # -- the oracle -----------------------------------------------------
    def oracle(self, scalars: Optional[Dict[str, int]] = None,
               arrays: Optional[Dict[str, List[int]]] = None,
               depths: Optional[Dict[str, int]] = None) -> OracleRun:
        """Run the function under CPython with the given inputs.

        ``depths`` pads each final array to the hardware depth; when
        omitted it is taken from a fresh compile.
        """
        if depths is None:
            region = self.build()
            depths = {name: decl.depth
                      for name, decl in region.memories.items()}
        scalar_vals = dict(self.scalars)
        scalar_vals.update(scalars or {})
        array_vals = self.memory_init(arrays)
        args = []
        live_arrays: Dict[str, List[int]] = {}
        for name, is_array in self._param_kinds():
            if is_array:
                depth = depths.get(name, len(array_vals.get(name, [])))
                words = list(array_vals.get(name, []))
                words += [0] * (depth - len(words))
                live_arrays[name] = words
                args.append(words)
            else:
                args.append(scalar_vals.get(name, 0))
        value = self.fn(*args)
        return OracleRun(
            value=wrap(value, 32) if value is not None else None,
            memories={name: [wrap(v, 32) for v in words]
                      for name, words in live_arrays.items()})


def pyfunc_workload(name: Optional[str] = None, *,
                    arrays: Optional[Dict[str, List[int]]] = None,
                    scalars: Optional[Dict[str, int]] = None,
                    description: str = "") -> Callable:
    """Decorator registering a pyfront kernel as a named workload.

    The function is returned unchanged (it stays the oracle); the
    workload object lands in :data:`PYFUNC_REGISTRY` and its region
    factory in the global workload registry.
    """
    def register(fn: Callable) -> Callable:
        workload = PyfuncWorkload(
            name=name or fn.__name__, fn=fn,
            arrays={k: list(v) for k, v in (arrays or {}).items()},
            scalars=dict(scalars or {}),
            description=description or (fn.__doc__ or "").strip())
        PYFUNC_REGISTRY[workload.name] = workload
        # late import: this module is imported while repro.workloads is
        # still initializing its own registry
        from repro.workloads import register_workload
        register_workload(workload.name, workload.build)
        return fn
    return register


def check_against_oracle(workload: PyfuncWorkload, schedule,
                         scalars: Optional[Dict[str, int]] = None,
                         arrays: Optional[Dict[str, List[int]]] = None,
                         ) -> Dict[str, object]:
    """Simulate a schedule of the workload and compare with CPython.

    Returns a report dict with ``ok`` plus the two sides; used by the
    equivalence tests and the CI smoke lane.
    """
    region = schedule.region
    sim: SimResult = simulate_schedule(
        schedule, workload.sim_inputs(scalars),
        memory_init=workload.memory_init(arrays))
    depths = {n: d.depth for n, d in region.memories.items()}
    want = workload.oracle(scalars, arrays, depths=depths)
    returns_value = bool(
        region.metadata.get("pyfront", {}).get("returns_value"))
    got_value = sim.output("ret")[-1] if returns_value \
        and sim.output("ret") else None
    ok = (got_value == want.value
          and all(sim.memories.get(name) == words
                  for name, words in want.memories.items()))
    return {"ok": ok, "value": got_value, "expected_value": want.value,
            "memories": sim.memories, "expected_memories": want.memories,
            "cycles": sim.cycles, "iterations": sim.iterations}


__all__ = [
    "OracleRun",
    "PYFUNC_REGISTRY",
    "PyfuncWorkload",
    "check_against_oracle",
    "pyfunc_workload",
]
