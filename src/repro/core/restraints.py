"""Restraints: the failure memory of a scheduling pass.

"The history of the scheduling pass is recorded in a set of restraints,
which are issued every time a binding of an operation to an edge and/or a
resource fails.  Restraint analysis is done for the fanin cones of the
failed operations ...  Restraints are assigned weights based on their
proximity to failed operations and the number of failures they help
solve." (paper section IV.B)

Each restraint captures what went wrong (kind), where (operation, state)
and enough detail for the relaxation engine to judge which corrective
actions would solve it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import profiling
from repro.cdfg.dfg import DFG


class RestraintKind(str, enum.Enum):
    """What kind of failure a restraint records."""

    #: all compatible instances were busy on the state (or its equivalent
    #: edges when pipelining).
    NO_RESOURCE = "no_resource"
    #: every RAM port of the accessed bank(s) was busy on the state --
    #: memory port starvation; solvable by banking or by adding states.
    MEM_PORT = "mem_port"
    #: the FIFO channel's single read (or write) port was busy on the
    #: state -- stream port starvation; solvable by adding states (each
    #: channel endpoint is one physical FIFO port).
    CHAN_PORT = "chan_port"
    #: the binding violated the clock period.
    NEG_SLACK = "neg_slack"
    #: the binding would have closed a false combinational cycle.
    COMB_CYCLE = "comb_cycle"
    #: a member of an SCC window could not be placed inside the window.
    SCC_TIMING = "scc_timing"
    #: a loop-carried dependency's modulo causality bound was violated.
    CARRIED_DEP = "carried_dep"
    #: the operation never became schedulable within the latency bound
    #: (producers failed, or it ran out of states).
    LATENCY = "latency"
    #: a predicated operation was blocked by its condition's position.
    PREDICATE_ORDER = "predicate_order"


@dataclass(slots=True)
class Restraint:
    """One recorded failure, with solver-relevant detail."""

    kind: RestraintKind
    op_uid: int
    state: int
    #: (family, width) involved for resource restraints.
    type_key: Optional[Tuple[str, int]] = None
    #: worst slack observed for timing restraints (negative).
    slack_ps: float = 0.0
    #: whether a *fresh* instance at this state would also fail timing --
    #: when True, adding a resource cannot solve this restraint (this is
    #: what makes the expert system prefer adding a state in the paper's
    #: Example 1: "adding one more multiplier does not help because two
    #: multiplications cannot fit in the given clock cycle").
    fresh_instance_fails: bool = False
    #: whether the registered-input path would fit a fresh state -- when
    #: True, adding a state solves the timing part.
    fits_fresh_state: bool = True
    #: SCC window index for SCC restraints.
    scc_index: Optional[int] = None
    #: the SCC window itself no longer fits the latency bound -- moving
    #: it later cannot help, only adding states can.
    window_overflow: bool = False
    #: instance name for combinational-cycle restraints.
    inst_name: Optional[str] = None
    #: condition uid for predicate-order restraints.
    cond_uid: Optional[int] = None
    #: memory name for RAM-port starvation restraints.
    mem_name: Optional[str] = None
    #: channel name for FIFO-port starvation restraints.
    chan_name: Optional[str] = None
    #: worst chained input arrival observed at the failing state; lets the
    #: relaxation engine probe whether a faster grade would fit in place.
    input_arrival_ps: float = 0.0
    #: filled by analysis: importance of solving this restraint.
    weight: float = 1.0


#: memoized weight sequences, keyed by base weight: entry ``k`` is the
#: result of ``k`` sequential ``w += 0.5 * base`` additions starting at
#: ``base``.  Only three bases exist (1.0 / 0.6 / 0.3), so replaying a
#: merge group's duplicate count costs O(max count) floats total instead
#: of one addition per recorded duplicate -- while reproducing the
#: reference's sequential rounding bit-for-bit (the folds in ``analyze``
#: never touch ``weight``, so a group's final weight is a pure function
#: of its base and its duplicate count).
_WEIGHT_SEQ: Dict[float, List[float]] = {}


def _accumulated_weight(base: float, extra: int) -> float:
    """Weight after ``extra`` sequential ``+= 0.5 * base`` additions."""
    seq = _WEIGHT_SEQ.get(base)
    if seq is None:
        seq = _WEIGHT_SEQ[base] = [base]
    if extra >= len(seq):
        w = seq[-1]
        inc = 0.5 * base
        for _ in range(extra - len(seq) + 1):
            w += inc
            seq.append(w)
    return seq[extra]


class RestraintLog:
    """Accumulates restraints during one scheduling pass."""

    def __init__(self) -> None:
        self.restraints: List[Restraint] = []
        #: multiplicity of each entry: the binder deliberately re-records
        #: one Restraint object per identical in-walk failure (one per
        #: candidate instance) so repeated hits gain weight; collapsing
        #: *all* re-records of the same object into a count keeps the
        #: log short without changing what analysis sees -- the folds in
        #: :meth:`analyze` are idempotent and order-independent, and the
        #: first occurrence (which fixes merge-key order) is preserved.
        self._counts: List[int] = []
        #: id(restraint) -> index into the two lists above; entries stay
        #: alive in ``self.restraints``, so ids are stable and unique.
        self._index: Dict[int, int] = {}
        self.failed_ops: Set[int] = set()

    def record(self, restraint: Restraint) -> None:
        """Append one restraint (same-object repeats just bump a count)."""
        idx = self._index.get(id(restraint))
        if idx is not None:
            self._counts[idx] += 1
            return
        self._index[id(restraint)] = len(self.restraints)
        self.restraints.append(restraint)
        self._counts.append(1)

    def mark_failed(self, op_uid: int) -> None:
        """Mark an operation as terminally failed in this pass."""
        self.failed_ops.add(op_uid)

    @property
    def has_failures(self) -> bool:
        """Whether the pass must be considered failed."""
        return bool(self.failed_ops)

    def analyze(self, dfg: DFG) -> List[Restraint]:
        """Weight restraints by proximity to failed operations.

        Restraints on failed operations weigh 1.0; restraints inside the
        fanin cone of a failed operation weigh 0.6; everything else 0.3
        (still useful: solving them frees alternatives).  Duplicate
        (kind, op, type) records collapse, their weights accumulating so
        repeatedly-hit restraints matter more, echoing the paper's "the
        number of failures they help solve".
        """
        # the fanin cones of all failed ops, as one int bitmask: the
        # DFG's memoized per-op fanin masks (distance-0 closure) are
        # OR-combined over every in-edge of every failed op, turning the
        # per-pass BFS into a handful of word-parallel set unions
        profiling.bump("restraints.analyze")
        masks = dfg.fanin_masks()
        cone_mask = 0
        for uid in self.failed_ops:
            for e in dfg.in_edges(uid):
                cone_mask |= masks[e.src]
        merged: Dict[Tuple, Restraint] = {}
        adds: Dict[Tuple, int] = {}
        # :meth:`record` collapses same-object re-records, so each entry
        # here is a distinct object; different objects can still share a
        # merge key and fold together
        for r, n in zip(self.restraints, self._counts):
            key = (
                r.kind, r.op_uid, r.type_key, r.scc_index, r.inst_name,
                r.mem_name, r.chan_name)
            m = merged.get(key)
            if m is not None:
                adds[key] += n
                m.slack_ps = min(m.slack_ps, r.slack_ps)
                m.fresh_instance_fails = (
                    m.fresh_instance_fails and r.fresh_instance_fails)
                m.fits_fresh_state = (
                    m.fits_fresh_state or r.fits_fresh_state)
                # keep the most favorable arrival: the relaxation engine
                # probes whether a fresh resource could fit *somewhere*,
                # and a later state with registered inputs is exactly
                # that somewhere (keeping the first -- often chained --
                # arrival made add_resource look futile and sent the
                # driver into an add-state death spiral)
                m.input_arrival_ps = min(
                    m.input_arrival_ps, r.input_arrival_ps)
            else:
                merged[key] = r
                adds[key] = n - 1
        failed = self.failed_ops
        for key, m in merged.items():
            uid = m.op_uid
            if uid in failed:
                base = 1.0
            elif uid >= 0 and (cone_mask >> uid) & 1:
                base = 0.6
            else:
                base = 0.3
            # 0.5*base per recorded duplicate; the memoized sequence
            # replicates the reference's one-addition-per-duplicate
            # rounding bit-for-bit (base*(1 + 0.5*n) would round
            # differently)
            m.weight = _accumulated_weight(base, adds[key])
        return sorted(merged.values(), key=lambda r: -r.weight)

    def summary(self) -> Dict[str, int]:
        """Counts per restraint kind (for diagnostics and tests)."""
        out: Dict[str, int] = {}
        for r, n in zip(self.restraints, self._counts):
            out[r.kind.value] = out.get(r.kind.value, 0) + n
        return out
