"""Restraints: the failure memory of a scheduling pass.

"The history of the scheduling pass is recorded in a set of restraints,
which are issued every time a binding of an operation to an edge and/or a
resource fails.  Restraint analysis is done for the fanin cones of the
failed operations ...  Restraints are assigned weights based on their
proximity to failed operations and the number of failures they help
solve." (paper section IV.B)

Each restraint captures what went wrong (kind), where (operation, state)
and enough detail for the relaxation engine to judge which corrective
actions would solve it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cdfg.dfg import DFG


class RestraintKind(str, enum.Enum):
    """What kind of failure a restraint records."""

    #: all compatible instances were busy on the state (or its equivalent
    #: edges when pipelining).
    NO_RESOURCE = "no_resource"
    #: every RAM port of the accessed bank(s) was busy on the state --
    #: memory port starvation; solvable by banking or by adding states.
    MEM_PORT = "mem_port"
    #: the FIFO channel's single read (or write) port was busy on the
    #: state -- stream port starvation; solvable by adding states (each
    #: channel endpoint is one physical FIFO port).
    CHAN_PORT = "chan_port"
    #: the binding violated the clock period.
    NEG_SLACK = "neg_slack"
    #: the binding would have closed a false combinational cycle.
    COMB_CYCLE = "comb_cycle"
    #: a member of an SCC window could not be placed inside the window.
    SCC_TIMING = "scc_timing"
    #: a loop-carried dependency's modulo causality bound was violated.
    CARRIED_DEP = "carried_dep"
    #: the operation never became schedulable within the latency bound
    #: (producers failed, or it ran out of states).
    LATENCY = "latency"
    #: a predicated operation was blocked by its condition's position.
    PREDICATE_ORDER = "predicate_order"


@dataclass
class Restraint:
    """One recorded failure, with solver-relevant detail."""

    kind: RestraintKind
    op_uid: int
    state: int
    #: (family, width) involved for resource restraints.
    type_key: Optional[Tuple[str, int]] = None
    #: worst slack observed for timing restraints (negative).
    slack_ps: float = 0.0
    #: whether a *fresh* instance at this state would also fail timing --
    #: when True, adding a resource cannot solve this restraint (this is
    #: what makes the expert system prefer adding a state in the paper's
    #: Example 1: "adding one more multiplier does not help because two
    #: multiplications cannot fit in the given clock cycle").
    fresh_instance_fails: bool = False
    #: whether the registered-input path would fit a fresh state -- when
    #: True, adding a state solves the timing part.
    fits_fresh_state: bool = True
    #: SCC window index for SCC restraints.
    scc_index: Optional[int] = None
    #: the SCC window itself no longer fits the latency bound -- moving
    #: it later cannot help, only adding states can.
    window_overflow: bool = False
    #: instance name for combinational-cycle restraints.
    inst_name: Optional[str] = None
    #: condition uid for predicate-order restraints.
    cond_uid: Optional[int] = None
    #: memory name for RAM-port starvation restraints.
    mem_name: Optional[str] = None
    #: channel name for FIFO-port starvation restraints.
    chan_name: Optional[str] = None
    #: worst chained input arrival observed at the failing state; lets the
    #: relaxation engine probe whether a faster grade would fit in place.
    input_arrival_ps: float = 0.0
    #: filled by analysis: importance of solving this restraint.
    weight: float = 1.0


class RestraintLog:
    """Accumulates restraints during one scheduling pass."""

    def __init__(self) -> None:
        self.restraints: List[Restraint] = []
        self.failed_ops: Set[int] = set()

    def record(self, restraint: Restraint) -> None:
        """Append one restraint."""
        self.restraints.append(restraint)

    def mark_failed(self, op_uid: int) -> None:
        """Mark an operation as terminally failed in this pass."""
        self.failed_ops.add(op_uid)

    @property
    def has_failures(self) -> bool:
        """Whether the pass must be considered failed."""
        return bool(self.failed_ops)

    def analyze(self, dfg: DFG) -> List[Restraint]:
        """Weight restraints by proximity to failed operations.

        Restraints on failed operations weigh 1.0; restraints inside the
        fanin cone of a failed operation weigh 0.6; everything else 0.3
        (still useful: solving them frees alternatives).  Duplicate
        (kind, op, type) records collapse, their weights accumulating so
        repeatedly-hit restraints matter more, echoing the paper's "the
        number of failures they help solve".
        """
        cones: Set[int] = set()
        for uid in self.failed_ops:
            stack = [e.src for e in dfg.in_edges(uid)]
            while stack:
                cur = stack.pop()
                if cur in cones:
                    continue
                cones.add(cur)
                stack.extend(e.src for e in dfg.in_edges(cur)
                             if e.distance == 0)
        merged: Dict[Tuple, Restraint] = {}
        for r in self.restraints:
            if r.op_uid in self.failed_ops:
                base = 1.0
            elif r.op_uid in cones:
                base = 0.6
            else:
                base = 0.3
            key = (r.kind, r.op_uid, r.type_key, r.scc_index, r.inst_name,
                   r.mem_name, r.chan_name)
            if key in merged:
                merged[key].weight += 0.5 * base
                merged[key].slack_ps = min(merged[key].slack_ps, r.slack_ps)
                merged[key].fresh_instance_fails = (
                    merged[key].fresh_instance_fails and r.fresh_instance_fails)
                merged[key].fits_fresh_state = (
                    merged[key].fits_fresh_state or r.fits_fresh_state)
                # keep the most favorable arrival: the relaxation engine
                # probes whether a fresh resource could fit *somewhere*,
                # and a later state with registered inputs is exactly
                # that somewhere (keeping the first -- often chained --
                # arrival made add_resource look futile and sent the
                # driver into an add-state death spiral)
                merged[key].input_arrival_ps = min(
                    merged[key].input_arrival_ps, r.input_arrival_ps)
            else:
                r.weight = base
                merged[key] = r
        return sorted(merged.values(), key=lambda r: -r.weight)

    def summary(self) -> Dict[str, int]:
        """Counts per restraint kind (for diagnostics and tests)."""
        out: Dict[str, int] = {}
        for r in self.restraints:
            out[r.kind.value] = out.get(r.kind.value, 0) + 1
        return out
