"""Folding a scheduled loop iteration into the pipeline kernel.

Step II of the paper's pipelining approach (section V): once a single
iteration is scheduled in LI states, equivalent edges (II apart) are
folded onto one edge whose operation set is the union of the folded
edges', and control is added so that every operation is predicated by the
stage-valid signal of its pipeline stage.  The prologue activates stages
one by one, the epilogue drains them, and stalling loops freeze all
stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdfg.ops import OpKind
from repro.core.schedule import Schedule


@dataclass(frozen=True)
class FoldedOp:
    """One operation's position in the folded kernel."""

    uid: int
    name: str
    stage: int
    phase: int       # kernel state (state % II)
    state: int       # original state within the iteration
    cycles: int
    resource: Optional[str]


@dataclass
class FoldedPipeline:
    """The pipeline kernel: II states executing all stages concurrently."""

    schedule: Schedule
    ii: int
    n_stages: int
    #: kernel phase -> operations executing there (all stages mixed).
    kernel: Dict[int, List[FoldedOp]]
    #: uid -> folded position.
    positions: Dict[int, FoldedOp]
    #: stage/phase where the loop-exit test resolves, if any.
    exit_position: Optional[Tuple[int, int]]
    #: stalling-loop markers (section V step I.1), re-inserted at fold time.
    stall_positions: List[Tuple[int, int]]

    def ops_at(self, phase: int, stage: Optional[int] = None) -> List[FoldedOp]:
        """Folded operations at a kernel phase (optionally one stage)."""
        ops = self.kernel.get(phase, [])
        if stage is None:
            return list(ops)
        return [f for f in ops if f.stage == stage]

    def stage_table(self) -> str:
        """Render the paper's Figure 5 view: stages x kernel states."""
        lines: List[str] = []
        for stage in range(self.n_stages):
            cells = []
            for phase in range(self.ii):
                names = [f.name for f in self.ops_at(phase, stage)]
                cells.append(", ".join(names) or "-")
            lines.append(f"Stage{stage + 1}: " + " | ".join(cells))
        return "\n".join(lines)


def fold_schedule(schedule: Schedule) -> FoldedPipeline:
    """Fold a pipelined schedule onto its II kernel states.

    Requires the schedule to have been produced with a
    :class:`~repro.cdfg.region.PipelineSpec`; sequential schedules are
    degenerate pipelines with one stage and II = latency.
    """
    ii = schedule.ii if schedule.ii is not None else schedule.latency
    n_stages = schedule.n_stages
    kernel: Dict[int, List[FoldedOp]] = {phase: [] for phase in range(ii)}
    positions: Dict[int, FoldedOp] = {}
    exit_position: Optional[Tuple[int, int]] = None
    stall_positions: List[Tuple[int, int]] = []

    for uid, bound in sorted(schedule.bindings.items()):
        op = bound.op
        if op.is_free:
            continue
        stage, phase = divmod(bound.state, ii)
        folded = FoldedOp(
            uid=uid,
            name=op.name,
            stage=stage,
            phase=phase,
            state=bound.state,
            cycles=bound.cycles,
            resource=bound.inst.name if bound.inst is not None else None,
        )
        kernel[phase].append(folded)
        positions[uid] = folded
        if op.is_exit_test:
            exit_position = (stage, phase)
        if op.kind is OpKind.STALL:
            stall_positions.append((stage, phase))

    for phase in kernel:
        kernel[phase].sort(key=lambda f: (f.stage, f.uid))
    return FoldedPipeline(
        schedule=schedule,
        ii=ii,
        n_stages=n_stages,
        kernel=kernel,
        positions=positions,
        exit_position=exit_position,
        stall_positions=stall_positions,
    )


def validate_folding(folded: FoldedPipeline) -> List[str]:
    """Check fold invariants; returns problems (empty = valid).

    * every scheduled operation appears exactly once in the kernel;
    * no resource instance hosts two non-exclusive operations on the same
      kernel phase (the equivalent-edge sharing rule after folding);
    * stage/phase recompose to the original state.
    """
    problems: List[str] = []
    schedule = folded.schedule
    seen = set()
    for phase, ops in folded.kernel.items():
        by_resource: Dict[str, List[FoldedOp]] = {}
        for f in ops:
            seen.add(f.uid)
            if f.stage * folded.ii + f.phase != f.state:
                problems.append(f"{f.name}: stage/phase do not recompose")
            if f.resource is not None:
                by_resource.setdefault(f.resource, []).append(f)
        for resource, folded_ops in by_resource.items():
            for i, a in enumerate(folded_ops):
                for b in folded_ops[i + 1:]:
                    # account for multi-cycle spans: overlap iff phase ranges
                    # intersect (they are on the same kernel phase here)
                    pa = schedule.bindings[a.uid].op.predicate
                    pb = schedule.bindings[b.uid].op.predicate
                    if not pa.disjoint(pb):
                        problems.append(
                            f"{resource}: {a.name} and {b.name} collide at "
                            f"kernel phase {phase}")
    expected = {uid for uid, b in schedule.bindings.items()
                if not b.op.is_free}
    missing = expected - seen
    if missing:
        names = [schedule.region.dfg.op(u).name for u in sorted(missing)]
        problems.append(f"operations missing from kernel: {names}")
    return problems
