"""The paper's primary contribution: timing-driven simultaneous
scheduling and binding with CDFG-transformation-based loop pipelining."""

from repro.core.allocation import AllocationResult, lower_bound, type_key_for
from repro.core.asap_alap import (
    InfeasibleTiming,
    Mobility,
    compute_mobility,
    min_feasible_latency,
)
from repro.core.registers import RegisterFile, allocate_registers
from repro.core.relaxation import Action, DriverState, propose_actions
from repro.core.restraints import Restraint, RestraintKind, RestraintLog
from repro.core.scc import SCCWindow, find_scc_windows
from repro.core.schedule import AreaReport, Schedule, ScheduleError
from repro.core.scheduler import PassOutcome, SchedulerOptions, schedule_region

__all__ = [
    "Action",
    "AllocationResult",
    "AreaReport",
    "DriverState",
    "InfeasibleTiming",
    "Mobility",
    "PassOutcome",
    "RegisterFile",
    "Restraint",
    "RestraintKind",
    "RestraintLog",
    "SCCWindow",
    "Schedule",
    "ScheduleError",
    "SchedulerOptions",
    "allocate_registers",
    "compute_mobility",
    "find_scc_windows",
    "lower_bound",
    "min_feasible_latency",
    "propose_actions",
    "schedule_region",
    "type_key_for",
]
