"""Scheduling priority function.

"The priority function takes into account the mobility of the operations
defined by timing-aware ASAP/ALAP intervals (similar to Force-Directed
Scheduling), the complexity of operations (more complex ones are
scheduled first), the size of the fanout cone of an operation, etc."
(paper section IV.B, Fig. 7)

For large designs the exact fanout cone size is approximated by the
operation's downstream critical-path height plus its out-degree, which
captures the same urgency signal at O(V+E) total cost.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cdfg.dfg import DFG
from repro.cdfg.ops import Operation, OpKind
from repro.core.asap_alap import Mobility, _optimistic_delay
from repro.tech.library import Library

PriorityKey = Tuple[int, float, float, int, int]


def compute_heights(dfg: DFG, library: Library) -> Dict[int, float]:
    """Downstream critical-path height in picoseconds per operation."""
    heights: Dict[int, float] = {}
    for op in reversed(dfg.topological_order()):
        below = 0.0
        for edge in dfg.out_edges(op.uid):
            if edge.distance >= 1:
                continue
            below = max(below, heights.get(edge.dst, 0.0))
        heights[op.uid] = below + _optimistic_delay(op, library)
    return heights


def priority_key(
    op: Operation,
    mobility: Mobility,
    heights: Dict[int, float],
    dfg: DFG,
    library: Library,
) -> PriorityKey:
    """Sort key: lower sorts first (= scheduled earlier).

    Order of criteria: least mobility, highest complexity (operation
    delay), tallest fanout cone, widest fanout, stable uid tiebreak.
    """
    complexity = _optimistic_delay(op, library)
    fanout = len(dfg.out_edges(op.uid))
    return (
        mobility.mobility,
        -complexity,
        -heights.get(op.uid, 0.0),
        -fanout,
        op.uid,
    )


def priority_statics(
    op: Operation,
    heights: Dict[int, float],
    dfg: DFG,
    library: Library,
) -> Tuple[float, float, int, int]:
    """The pass-invariant tail of :func:`priority_key`.

    Complexity, height and fanout depend only on the DFG and library;
    between relaxation passes only the leading mobility component
    changes, so the scheduler memoizes this tail per operation and
    prepends the current mobility:
    ``(mobility,) + priority_statics(...) == priority_key(...)``.
    """
    complexity = _optimistic_delay(op, library)
    fanout = len(dfg.out_edges(op.uid))
    return (
        -complexity,
        -heights.get(op.uid, 0.0),
        -fanout,
        op.uid,
    )
