"""The relaxation expert system.

"When the pass scheduler fails, the set of scheduling constraints must be
relaxed. ...  Each restraint suggests a set of actions that can be applied
to improve the scheduling.  Timing restraints could be fixed by adding
states to the CFG, by adding resources or by speculating operations.
Restraints stemming from combinational cycles forbid the use of a resource
for an operation, etc.  Every action has an estimated cost, which is
combined with the number of restraints solved by this action and the
restraint weight.  The action with the best estimated gain wins." (paper
section IV.B)

The pipelining-specific action -- moving a whole SCC window to a later
position when it suffers negative slack -- is the paper's novel
timing-driven kernel selection (section V, Example 3; ablated in Table 4).
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import profiling
from repro.cdfg.region import PipelineSpec, Region
from repro.core.restraints import Restraint, RestraintKind
from repro.obs.trace import Tracer
from repro.tech.library import Library, ResourceType


@dataclass
class DriverState:
    """Mutable constraint state threaded through scheduling passes."""

    latency: int
    extra_types: List[ResourceType] = field(default_factory=list)
    forbidden: Set[Tuple[int, str]] = field(default_factory=set)
    scc_shifts: Dict[int, int] = field(default_factory=dict)
    speculated: Set[int] = field(default_factory=set)
    #: banking factor raised beyond a memory's declared value by the
    #: add-bank action (the memory analogue of add_resource).
    bank_overrides: Dict[str, int] = field(default_factory=dict)
    history: List[str] = field(default_factory=list)


@dataclass
class Action:
    """A candidate constraint relaxation."""

    name: str
    cost: float
    solved_weight: float
    apply: Callable[[DriverState], None]
    #: the resource type an ``add_resource`` action appends (None for
    #: every other family); lets the driver's fixpoint detector reason
    #: about what a batch did without unpicking the apply closure.
    rtype: Optional[ResourceType] = None

    @property
    def gain(self) -> float:
        """Estimated gain: restraint weight solved per unit cost."""
        return self.solved_weight / max(self.cost, 1e-6)


def _bank_pressure(region: Region, mem_name: str, banks: int) -> int:
    """Worst number of accesses landing on one bank at a banking factor.

    Dynamic accesses land on every bank (their address is unknown), so
    they contribute to all of them.
    """
    from repro.cdfg.memory import static_bank

    per_bank = [0] * banks
    for op in region.memory_accesses(mem_name):
        bank = static_bank(op, banks, region.access_is_dynamic(op))
        if bank is None:
            per_bank = [n + 1 for n in per_bank]
        else:
            per_bank[bank] += 1
    return max(per_bank) if per_bank else 0


def _bank_proposal(region: Region, library: Library, decl,
                   cur_banks: int):
    """Smallest banking factor that lowers pressure, with its area cost.

    Returns ``(new_banks, extra_area)`` or None when no factor up to the
    cap helps (all conflicting accesses dynamic, or already spread).
    """
    cur_pressure = _bank_pressure(region, decl.name, cur_banks)
    cap = min(decl.depth, 16)
    new_banks = cur_banks * 2
    while new_banks <= cap:
        if _bank_pressure(region, decl.name, new_banks) < cur_pressure:
            # extra cost ~ the added per-bank periphery (total bitcells
            # are unchanged; more macros mean more decoders/sense amps)
            periphery = library.mem.periphery_area
            if decl.ports >= 2:
                periphery *= library.mem.dual_port_area_factor
            extra_area = (new_banks - cur_banks) * periphery
            return new_banks, extra_area
        new_banks *= 2
    return None


def _fits(library: Library, input_arrival: float, delay: float,
          clock_ps: float, with_mux: bool = True) -> bool:
    """Whether a chain ending in ``delay`` meets the clock."""
    capture = input_arrival + delay
    if with_mux:
        capture += library.mux.delay2_ps
    return capture + library.ff.setup_ps <= clock_ps


def propose_actions(
    region: Region,
    library: Library,
    clock_ps: float,
    restraints: List[Restraint],
    state: DriverState,
    pipeline: Optional[PipelineSpec],
    enable_scc_move: bool = True,
    enable_speculation: bool = True,
    allow_grades: bool = True,
    allow_banking: bool = True,
    resource_outlook: Optional[Dict[Tuple[str, int],
                                    Tuple[int, int]]] = None,
) -> List[Action]:
    """Generate scored actions for the analyzed restraint set.

    ``resource_outlook`` maps type keys to ``(demand, instances)`` so the
    add-state action can jump straight to the latency the slot deficit
    requires instead of converging one state per pass.
    """
    actions: List[Action] = []
    ii = pipeline.ii if pipeline else None
    outlook = resource_outlook or {}

    # ---------------------------------------------------------------- add state
    if state.latency < region.max_latency:
        solved = 0.0
        jump = 1
        for r in restraints:
            if r.kind is RestraintKind.NEG_SLACK and r.fits_fresh_state:
                solved += r.weight
            elif r.kind is RestraintKind.NO_RESOURCE:
                # a new state only creates fresh slots when it grows the
                # set of equivalence classes (sequential always does;
                # pipelined only while latency < II)
                if ii is None or state.latency < ii:
                    solved += r.weight
                    demand, count = outlook.get(r.type_key, (0, 1))
                    needed = -(-demand // max(count, 1))
                    jump = max(jump, needed - state.latency)
            elif r.kind in (RestraintKind.MEM_PORT,
                            RestraintKind.CHAN_PORT):
                # like NO_RESOURCE: a new state only provides fresh port
                # slots while it grows the set of equivalence classes
                if ii is None or state.latency < ii:
                    solved += r.weight
            elif r.kind is RestraintKind.LATENCY:
                solved += r.weight
            elif r.kind is RestraintKind.SCC_TIMING and r.fits_fresh_state:
                solved += 0.5 * r.weight  # more room for a later window
        jump = max(1, min(jump, region.max_latency - state.latency))
        if solved > 0:
            def add_state(st: DriverState, n: int = jump) -> None:
                st.latency += n
                st.history.append(f"add_state -> latency {st.latency}")
            actions.append(Action("add_state", 1.0, solved, add_state))

    # ------------------------------------------------------------ add resources
    # NO_RESOURCE wants more instances; NEG_SLACK with a known type wants
    # *faster* instances (grade escalation) -- both resolve to adding a
    # resource the failed operation can actually bind to
    grades = [g.name for g in library.grades] if allow_grades else ["typical"]
    by_type: Dict[Tuple[str, int], List[Restraint]] = {}
    for r in restraints:
        if r.type_key is None:
            continue
        if r.kind is RestraintKind.NO_RESOURCE:
            by_type.setdefault(r.type_key, []).append(r)
        elif r.kind in (RestraintKind.NEG_SLACK, RestraintKind.SCC_TIMING):
            # grade escalation only for *terminal* timing failures
            # (weight >= 1.0 after analysis); deferred attempts that later
            # succeeded elsewhere must not inflate the resource set
            if r.weight >= 1.0:
                by_type.setdefault(r.type_key, []).append(r)
    for type_key, rs in sorted(by_type.items()):
        family, width = type_key
        for grade in grades:
            rtype = library.resource_type(family, width, grade)
            solved = 0.0
            solved_ops = set()
            for r in rs:
                # does the operation fit on a fresh instance of this grade,
                # with its observed chained input arrival?
                arrival = max(r.input_arrival_ps, library.ff.clk_to_q_ps)
                if _fits(library, arrival, rtype.delay_ps, clock_ps):
                    solved += r.weight
                    solved_ops.add(r.op_uid)
                elif (rtype.multicycle_ok
                      and r.input_arrival_ps <= library.ff.clk_to_q_ps):
                    solved += r.weight  # registered inputs, multi-cycle ok
                    solved_ops.add(r.op_uid)
            if solved <= 0:
                continue
            # batch the addition by a damped deficit estimate; unused
            # instances are pruned after the successful pass
            count = max(1, min(8, -(-len(solved_ops) // 4)))

            def add_resource(st: DriverState, rt: ResourceType = rtype,
                             n: int = count) -> None:
                st.extra_types.extend([rt] * n)
                st.history.append(f"add_resource {rt.name} x{n}")
            actions.append(Action(
                f"add_resource:{rtype.name}",
                cost=0.5 + rtype.area / 4000.0,
                solved_weight=solved,
                apply=add_resource,
                rtype=rtype,
            ))
            break  # cheapest fitting grade is enough per type

    # ---------------------------------------------------------------- add banks
    # MEM_PORT starvation: more accesses hit a bank per state than the
    # bank has RAM ports.  Raising the cyclic banking factor spreads
    # *static* accesses over more macros (the memory analogue of
    # add_resource); the action is only proposed when it provably lowers
    # the worst per-bank pressure -- dynamic accesses pin every bank, so
    # banking cannot help them.
    by_mem: Dict[str, float] = {}
    if allow_banking:
        for r in restraints:
            if r.kind is RestraintKind.MEM_PORT and r.mem_name is not None:
                by_mem[r.mem_name] = by_mem.get(r.mem_name, 0.0) + r.weight
    for mem_name, solved in sorted(by_mem.items()):
        decl = region.memories.get(mem_name)
        if decl is None:
            continue
        cur_banks = state.bank_overrides.get(mem_name, decl.banks)
        proposal = _bank_proposal(region, library, decl, cur_banks)
        if proposal is None:
            continue
        new_banks, extra_area = proposal

        def add_bank(st: DriverState, mem: str = mem_name,
                     n: int = new_banks) -> None:
            st.bank_overrides[mem] = n
            st.history.append(f"add_bank {mem} -> {n}")
        actions.append(Action(
            f"add_bank:{mem_name}",
            cost=0.5 + extra_area / 4000.0,
            solved_weight=solved,
            apply=add_bank,
        ))

    # ----------------------------------------------------------------- move SCC
    if pipeline is not None and enable_scc_move:
        by_scc: Dict[int, float] = {}
        for r in restraints:
            if r.kind is RestraintKind.SCC_TIMING \
                    and r.scc_index is not None and not r.window_overflow:
                by_scc[r.scc_index] = by_scc.get(r.scc_index, 0.0) + r.weight
        for scc_index, solved in sorted(by_scc.items()):
            def move_scc(st: DriverState, idx: int = scc_index) -> None:
                st.scc_shifts[idx] = st.scc_shifts.get(idx, 0) + 1
                st.history.append(f"move_scc {idx} -> +{st.scc_shifts[idx]}")
            actions.append(Action(
                f"move_scc:{scc_index}", cost=0.3,
                solved_weight=solved, apply=move_scc))

    # ---------------------------------------------------------- forbid bindings
    seen_forbid: Set[Tuple[int, str]] = set()
    for r in restraints:
        if r.kind is not RestraintKind.COMB_CYCLE or r.inst_name is None:
            continue
        key = (r.op_uid, r.inst_name)
        if key in seen_forbid or key in state.forbidden:
            continue
        seen_forbid.add(key)

        def forbid(st: DriverState, k: Tuple[int, str] = key) -> None:
            st.forbidden.add(k)
            st.history.append(f"forbid op{k[0]} on {k[1]}")
        actions.append(Action(
            f"forbid:{key[0]}@{key[1]}", cost=0.1,
            solved_weight=r.weight, apply=forbid))

    # --------------------------------------------------------------- speculate
    if enable_speculation:
        for r in restraints:
            if r.kind is not RestraintKind.PREDICATE_ORDER:
                continue
            if r.op_uid in state.speculated:
                continue

            def speculate(st: DriverState, uid: int = r.op_uid) -> None:
                st.speculated.add(uid)
                st.history.append(f"speculate op{uid}")
            actions.append(Action(
                f"speculate:{r.op_uid}", cost=0.2,
                solved_weight=r.weight, apply=speculate))

    actions.sort(key=lambda a: (-a.gain, a.name))
    return actions


#: action families that are independent of each other and of any winner:
#: resource/bank additions, binding prohibitions, speculations and SCC
#: shifts neither interact with the winner nor with each other, so the
#: driver applies them together and saves whole scheduling passes.
BATCHABLE_PREFIXES = ("add_resource:", "add_bank:", "forbid:",
                      "speculate:", "move_scc:")


def applied_actions(actions: List[Action], chosen: int) -> List[Action]:
    """The actions :func:`apply_action_batch` applies, in order.

    Factored out so the driver's fixpoint detector can reason about
    exactly the batch that will be (repeatedly) applied.
    """
    winner = actions[chosen]
    batch = [winner]
    for i, extra in enumerate(actions):
        if i == chosen or extra.name == winner.name:
            continue
        if extra.name.startswith(BATCHABLE_PREFIXES):
            batch.append(extra)
    return batch


def apply_action_batch(actions: List[Action], chosen: int,
                       state: DriverState) -> None:
    """Apply ``actions[chosen]`` plus the independent batchable extras.

    This is the driver's single action-application rule: the chosen
    action first, then every *other* batchable action that is not a
    duplicate of the winner, in proposal order.  The serial driver always
    picks ``chosen=0``; the relaxation race hands each worker a different
    index, so branch 0 is bit-identical to the serial path by
    construction.
    """
    for action in applied_actions(actions, chosen):
        action.apply(state)


def _restraint_fingerprint(r: Restraint) -> Tuple:
    """Every field of one analyzed restraint, exact floats included."""
    return (r.kind, r.op_uid, r.state, r.type_key, r.slack_ps,
            r.fresh_instance_fails, r.fits_fresh_state, r.scc_index,
            r.window_overflow, r.inst_name, r.cond_uid, r.mem_name,
            r.chan_name, r.input_arrival_ps, r.weight)


def driver_fingerprint(analyzed: List[Restraint],
                       actions: List[Action]) -> Tuple:
    """Everything the relaxation driver's decision depends on, one pass.

    Two consecutive failed passes with equal fingerprints are the
    trigger condition for the fixpoint fast-forward in
    ``schedule_region``: the analyzed restraint set (all fields, exact
    float values) plus the scored action list fully determine the batch
    the driver applies next.
    """
    return (tuple(_restraint_fingerprint(r) for r in analyzed),
            tuple((a.name, a.cost, a.solved_weight) for a in actions))


def _race_worker(payload: Tuple) -> Tuple[int, bool, DriverState,
                                          Dict[str, int], List[dict]]:
    """One race branch: re-derive actions, apply branch ``b``, run a pass.

    Runs in a worker process.  ``Action.apply`` closures do not pickle,
    so the worker re-derives the action list with :func:`propose_actions`
    -- which is deterministic, yielding exactly the parent's list -- and
    applies the batch for its assigned index.  Returns the branch index,
    whether the pass succeeded, the post-application driver state, the
    worker's profiling counters for the parent to merge, and (when the
    parent traces) the worker's exported spans -- this return tuple is
    the race's merge-back channel, so spans ride it home like the
    counters do.
    """
    (branch, region, library, clock_ps, pipeline, allocation,
     restraints, state, options, outlook, traced) = payload
    from repro.core.scheduler import _Pass  # deferred: circular import

    profiling.reset()  # forked workers inherit the parent's table
    tracer = Tracer() if traced else None
    try:
        actions = propose_actions(
            region, library, clock_ps, restraints, state, pipeline,
            enable_scc_move=options.enable_scc_move,
            enable_speculation=options.enable_speculation,
            allow_grades=options.allow_grades,
            allow_banking=options.allow_banking,
            resource_outlook=outlook)
        if branch >= len(actions):
            return (branch, False, state, profiling.snapshot(),
                    tracer.export() if tracer else [])
        apply_action_batch(actions, branch, state)
        if tracer is None:
            pass_run = _Pass(region, library, clock_ps, state.latency,
                             pipeline, allocation, state, options)
            outcome = pass_run.run()
        else:
            with tracer.span("scheduler.race_branch", branch=branch,
                             action=actions[branch].name,
                             latency=state.latency) as span:
                pass_run = _Pass(region, library, clock_ps,
                                 state.latency, pipeline, allocation,
                                 state, options)
                outcome = pass_run.run()
                span.set("success", outcome.success)
        return (branch, outcome.success, state, profiling.snapshot(),
                tracer.export() if tracer else [])
    except Exception:
        return (branch, False, state, profiling.snapshot(),
                tracer.export() if tracer else [])


def race_relaxation(
    region: Region,
    library: Library,
    clock_ps: float,
    pipeline: Optional[PipelineSpec],
    allocation,
    restraints: List[Restraint],
    state: DriverState,
    options,
    resource_outlook: Dict[Tuple[str, int], Tuple[int, int]],
    n_actions: int,
    tracer: Optional[Tracer] = None,
) -> Optional[Tuple[Optional[int], DriverState]]:
    """Try the top relaxation actions concurrently; lowest feasible wins.

    Each of the first ``min(jobs, n_actions)`` actions is applied (with
    the usual batch of independent extras) in its own process, followed
    by one scheduling pass.  The winner is the successful branch with the
    lowest action index -- a deterministic tie-break, so repeated runs
    take the same trajectory.  When no branch succeeds, branch 0's
    post-application state is adopted, which is exactly what the serial
    driver would have done.  Returns ``(winning branch index, state)``
    -- the index is ``None`` when no branch succeeded -- or ``None`` on
    any infrastructure failure (unpicklable payload, worker crash); the
    caller then falls back to the serial path.

    With a ``tracer``, each worker's spans come back over the result
    tuple and are re-parented under the caller's open span, so the race
    branches appear in the parent's exported trace with their worker
    pids intact.
    """
    branches = min(options.jobs, n_actions)
    if branches < 2:
        return None
    payloads = [
        (b, region, library, clock_ps, pipeline, allocation,
         restraints, state, options, resource_outlook,
         tracer is not None)
        for b in range(branches)
    ]
    results = []
    try:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=branches) as pool:
            futures = [pool.submit(_race_worker, p) for p in payloads]
            for fut in futures:
                results.append(fut.result())
    except Exception:
        profiling.bump("race.fallback")
        return None
    profiling.bump("race.calls")
    profiling.bump("race.branches", len(results))
    winner: Optional[Tuple[int, DriverState]] = None
    for branch, success, new_state, snap, spans in results:
        profiling.merge(snap)
        if tracer is not None:
            tracer.absorb(spans)
        if success and winner is None:
            winner = (branch, new_state)
            profiling.bump("race.win")
    if winner is None:
        profiling.bump("race.no_winner")
        return None, results[0][2]
    return winner
