"""The pass scheduler and its relaxation driver.

This is the paper's section IV engine: iterative simultaneous scheduling
and binding.  Each pass performs latency-, clock- and resource-constrained
list scheduling (Fig. 7): operations become ready when their producers are
bound, are picked by priority, and are bound to the first compatible
resource instance that is free (including the equivalent-edge semantics of
pipelining), meets timing on the incrementally built netlist, and does not
close a false combinational cycle.  A failed pass leaves behind a set of
restraints; the expert system (:mod:`repro.core.relaxation`) picks the
corrective action with the best estimated gain, and the driver iterates
until a pass succeeds or no action remains.

Pipelining adds exactly two rules (section V, step I.3): every SCC is
clamped into an II-state window, and a resource busy on an edge is busy on
all equivalent edges -- everything else is the unchanged non-pipelined
scheduler, which is the point of the paper.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import profiling
from repro.cdfg.dfg import DFG
from repro.cdfg.memory import static_bank
from repro.cdfg.ops import Operation, OpKind
from repro.cdfg.region import PipelineSpec, Region
from repro.core.allocation import AllocationResult, build_pool, lower_bound, type_key_for
from repro.core.asap_alap import InfeasibleTiming, Mobility, compute_mobility
from repro.core.priorities import compute_heights, priority_key, priority_statics
from repro.core.relaxation import (
    DriverState,
    apply_action_batch,
    applied_actions,
    driver_fingerprint,
    propose_actions,
    race_relaxation,
)
from repro.core.restraints import Restraint, RestraintKind, RestraintLog
from repro.obs.trace import Tracer, maybe_span
from repro.core.scc import SCCWindow, apply_windows, find_scc_windows, window_of
from repro.core.schedule import Schedule, ScheduleError
from repro.tech.library import Library
from repro.tech.resources import (
    MemoryConfig,
    MemoryPortInstance,
    ResourceInstance,
    ResourcePool,
    build_memory_configs,
)
from repro.timing.cycles import CombCycleGuard
from repro.timing.engine import (
    CandidateTiming,
    TimingEngine,
    TimingStatics,
    registered_path_ps,
)


@dataclass
class SchedulerOptions:
    """Knobs for the scheduler; defaults mirror the paper's tool.

    ``enable_scc_move`` is the Table 4 ablation switch (timing-driven
    kernel selection); ``anticipate_muxes`` ablates the section IV.B
    anticipatory sharing muxes.
    """

    max_passes: int = 200
    enable_scc_move: bool = True
    enable_speculation: bool = True
    anticipate_muxes: bool = True
    allow_multicycle: bool = True
    allow_grades: bool = True
    #: let the relaxation driver raise a memory's banking factor beyond
    #: its declaration (the add-bank action); disable to pin the
    #: declared banking for controlled port-constraint experiments.
    allow_banking: bool = True
    validate_result: bool = True
    #: Table 4 ablation companion: with the SCC move disabled, SCC members
    #: are anchored by dependency-only (timing-blind) analysis and bound
    #: even when they violate the clock -- downstream logic synthesis then
    #: has to buy the slack back with area (see rtl.compensation).
    accept_negative_slack: bool = False
    trace: bool = False
    #: the scheduler-core optimizations (commit-outcome cache, pass-to-pass
    #: carryover of mobility/heights/dependency maps, memoized priorities
    #: and candidate lists).  Every one of them is decision-neutral --
    #: bindings, restraints and actions are bit-identical either way --
    #: and ``False`` exists purely as the reference path the equivalence
    #: test suite compares against.
    fast_paths: bool = True
    #: fast-forward relaxation death spirals: when two consecutive failed
    #: passes produce identical analyzed restraints and identical scored
    #: actions, and the applied batch provably cannot change any future
    #: pass (add_resource-only additions whose instances stay empty and
    #: whose sharing outlook is already saturated), the driver synthesizes
    #: the remaining identical iterations instead of executing them.  The
    #: raised budget-exhausted error (message, history, state) is
    #: bit-identical to the cold path; ``False`` is the reference path the
    #: equivalence suite compares against.
    fixpoint_ffwd: bool = True
    #: relaxation race width: with ``jobs > 1``, after a failed pass the
    #: top actions are tried concurrently in worker processes and the
    #: lowest-indexed feasible branch wins (deterministic tie-break).
    #: ``jobs=1`` is the exact serial path.
    jobs: int = 1


class _RegionCache:
    """Pass-to-pass (and point-to-point) scheduling carryover.

    The relaxation driver re-runs the pass scheduler dozens of times per
    region while only *constraints* change (latency, resource set,
    forbidden pairs, speculation).  Everything derivable from the region
    + library alone -- heights, engine static structure, type keys,
    priority statics -- is computed once; mobility and the dependency
    maps are memoized on the constraint subset they actually depend on
    (clock, latency and the speculated set) and handed out as fresh
    copies when a pass would mutate them in place.

    Clock-dependent entries carry the clock in their key, so one cache
    may outlive a single ``schedule_region`` call and serve every design
    point of a sweep that shares the region structure (the sweep
    engine's ``SweepContext`` does exactly that).
    """

    def __init__(self, region: Region, library: Library) -> None:
        self.statics = TimingStatics(region.dfg, library)
        self.heights: Optional[Dict[int, float]] = None
        #: (clock_ps, latency, frozenset(speculated)) -> pristine
        #: mobility map, or the InfeasibleTiming it raised.
        self.mobility: Dict[Tuple, object] = {}
        #: frozenset(speculated) -> (unresolved, consumers) dependency maps.
        self.depmaps: Dict[frozenset, Tuple[Dict[int, int],
                                            Dict[int, List[Tuple[int, int]]]]] = {}
        self.type_keys: Dict[int, Optional[Tuple[str, int]]] = {}
        #: uid -> static tail of the priority key (complexity, height,
        #: fanout, uid); only mobility varies between passes.
        self.prio_static: Dict[int, Tuple] = {}
        #: (clock_ps, uid) -> fits-fresh-state verdict (non-memory ops
        #: only: memory budgets depend on the pass's banking config).
        self.fits_fresh: Dict[Tuple[float, int], bool] = {}
        #: uid -> (root, producer op) pairs for combinational chain edges.
        self.chain_roots: Dict[int, List[Tuple[int, Operation]]] = {}


@dataclass
class PassOutcome:
    """Everything a single scheduling pass produced."""

    success: bool
    netlist: TimingEngine
    pool: ResourcePool
    windows: List[SCCWindow]
    mobility: Dict[int, Mobility]
    log: RestraintLog


def _node_name(op: Operation, inst: Optional[ResourceInstance]) -> str:
    return inst.name if inst is not None else f"op{op.uid}"


def _cand_key(inst: ResourceInstance) -> Tuple[float, int]:
    """Per-call candidate sort key over a base list pre-sorted by
    (area, index); stability supplies the index tie-break."""
    return (inst.rtype.area, -len(inst._ops_map))


def _equivalent_states(needed: List[int], latency: int,
                       ii: Optional[int]) -> List[int]:
    """States to check for occupancy: needed states plus equivalents."""
    if ii is None:
        return needed
    classes = {s % ii for s in needed}
    return [s for s in range(latency) if s % ii in classes]


class _Pass:
    """One execution of SCHEDULE_PASS (paper Fig. 7)."""

    def __init__(
        self,
        region: Region,
        library: Library,
        clock_ps: float,
        latency: int,
        pipeline: Optional[PipelineSpec],
        allocation: AllocationResult,
        state: DriverState,
        options: SchedulerOptions,
        cache: Optional[_RegionCache] = None,
    ) -> None:
        self.region = region
        self.dfg = region.dfg
        self.library = library
        self.clock_ps = clock_ps
        self.latency = latency
        self.pipeline = pipeline
        self.ii = pipeline.ii if pipeline else None
        self.state = state
        self.options = options
        self.cache = cache if options.fast_paths else None
        self.log = RestraintLog()
        self.pool = build_pool(allocation, library)
        for rtype in state.extra_types:
            self.pool.add(rtype)
        # RAM banks: one port instance per (memory, bank, port); the
        # effective banking factor honors the driver's add-bank overrides
        self.memories: Dict[str, MemoryConfig] = build_memory_configs(
            region.memories, library, state.bank_overrides)
        #: per memory op: (memory name, dynamic address?, static bank).
        self._mem_shape: Dict[int, Tuple[str, bool, Optional[int]]] = {}
        for op in region.memory_ops:
            dynamic = region.access_is_dynamic(op)
            banks = self.memories[op.payload].banks
            self._mem_shape[op.uid] = (
                op.payload, dynamic, static_bank(op, banks, dynamic))
        self.netlist = TimingEngine(
            self.dfg, library, clock_ps,
            anticipate_muxes=options.anticipate_muxes,
            statics=self.cache.statics if self.cache else None)
        self.netlist.use_commit_cache = options.fast_paths
        demand = {key: n for key, n in allocation.demand.items()}
        counts = {key: self.pool.count(*key) for key in demand}
        # RAM address-mux anticipation: more accesses than physical
        # ports means the ports will be shared across states
        for name, cfg in self.memories.items():
            key = (cfg.rtype.family, cfg.rtype.width)
            demand[key] = demand.get(key, 0) + len(
                region.memory_accesses(name))
            counts[key] = counts.get(key, 0) + cfg.banks * cfg.ports
        self.netlist.set_sharing_outlook(demand, counts)
        self.guard = CombCycleGuard()
        self.windows: List[SCCWindow] = []
        self.mobility: Dict[int, Mobility] = {}
        # readiness machinery
        self._unresolved: Dict[int, int] = {}
        self._earliest: Dict[int, int] = {}
        #: root uid -> (consumer uid, min state gap after root completes).
        self._consumers: Dict[int, List[Tuple[int, int]]] = {}
        self._cond_waiters: Dict[int, List[int]] = {}
        self._ready_heap: List[Tuple] = []
        self._in_heap: Set[int] = set()
        self._heights: Dict[int, float] = {}
        #: SCC members force-placed by the timing-blind ablation; their
        #: bindings are accepted even with negative slack.
        self._forced_sccs: Set[int] = set()
        # fast-path memos (all decision-neutral; see SchedulerOptions)
        self._window_map: Optional[Dict[int, SCCWindow]] = None
        self._compat: Dict[Tuple[OpKind, int], List[ResourceInstance]] = {}
        #: sorted candidate order per compatibility key:
        #: ``[log position, order, member names]``.  Revalidated against
        #: the pool's mutation log -- only mutations of a group's own
        #: members force a re-sort.
        self._cand_cache: Dict[Tuple[OpKind, int], List] = {}
        self._n_priority_keys = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _mobility(self) -> Dict[int, Mobility]:
        """This pass's mobility map, via the carryover cache when enabled.

        The cache stores the pristine result per (latency, speculated
        set) and hands out per-op copies: SCC window clamping and the
        timing-blind anchor ablation mutate Mobility records in place.
        """
        if self.cache is None:
            return compute_mobility(
                self.region, self.library, self.clock_ps, self.latency,
                self.state.speculated)
        key = (self.clock_ps, self.latency, frozenset(self.state.speculated))
        cached = self.cache.mobility.get(key)
        if cached is None:
            try:
                cached = compute_mobility(
                    self.region, self.library, self.clock_ps, self.latency,
                    self.state.speculated)
            except InfeasibleTiming as exc:
                self.cache.mobility[key] = exc
                raise
            self.cache.mobility[key] = cached
            profiling.bump("mobility.compute")
        elif isinstance(cached, InfeasibleTiming):
            profiling.bump("mobility.cache_hit")
            raise cached
        else:
            profiling.bump("mobility.cache_hit")
        return {uid: mob.copy() for uid, mob in cached.items()}

    def _prepare(self) -> bool:
        """Mobility + SCC windows; returns False (with restraints) on failure."""
        try:
            self.mobility = self._mobility()
        except InfeasibleTiming as exc:
            uid = exc.uid if exc.uid is not None else -1
            self.log.record(Restraint(
                kind=RestraintKind.LATENCY, op_uid=uid,
                state=self.latency - 1, fits_fresh_state=True))
            if uid >= 0:
                self.log.mark_failed(uid)
            return False
        if self.pipeline is not None:
            blind_anchor = (not self.options.enable_scc_move
                            and self.options.accept_negative_slack)
            anchor_mobility = self.mobility
            if blind_anchor:
                # timing-blind kernel placement: dependency-only ASAP, the
                # behaviour the Table 4 ablation measures
                anchor_mobility = compute_mobility(
                    self.region, self.library, float("inf"), self.latency,
                    self.state.speculated)
            self.windows = find_scc_windows(
                self.region, anchor_mobility, self.pipeline.ii)
            ok = True
            for window in self.windows:
                window.start += self.state.scc_shifts.get(window.index, 0)
                if blind_anchor:
                    for uid in window.ops:
                        mob = self.mobility.get(uid)
                        amob = anchor_mobility.get(uid)
                        if mob is None or amob is None:
                            continue
                        mob.asap = max(amob.asap, window.start)
                        mob.alap = max(mob.asap,
                                       window.end - (mob.cycles - 1))
                        mob.alap = min(mob.alap, window.end)
                        self._forced_sccs.add(uid)
                    continue
                try:
                    apply_windows(self.mobility, [window], self.latency)
                except ValueError:
                    anchor = min(window.ops)
                    self.log.record(Restraint(
                        kind=RestraintKind.SCC_TIMING, op_uid=anchor,
                        state=window.start, scc_index=window.index,
                        fits_fresh_state=True,
                        window_overflow=window.end > self.latency - 1))
                    self.log.mark_failed(anchor)
                    ok = False
            if not ok:
                return False
        return True

    def _build_dependency_maps(self) -> None:
        if self.cache is not None:
            spec_key = frozenset(self.state.speculated)
            cached = self.cache.depmaps.get(spec_key)
            if cached is not None:
                unresolved, consumers = cached
                # unresolved is decremented as producers bind: copy.
                # consumers is only ever read (never mutated): share.
                self._unresolved = dict(unresolved)
                self._consumers = consumers
                self._earliest = {uid: self.mobility[uid].asap
                                  for uid in unresolved}
                profiling.bump("depmaps.cache_hit")
                return
        resolve = self.netlist.resolve_source
        for op in self.dfg.ops:
            if op.is_free:
                continue
            #: root uid -> min state gap after the root completes
            #: (ordering edges carry their dependence-class gap; data
            #: edges use 0, chaining/multicycle rules refine at bind).
            roots: Dict[int, int] = {}
            for edge in self.dfg.in_edges(op.uid):
                if edge.distance >= 1:
                    continue
                root = resolve(edge.src)
                if self.dfg.op(root).is_free:
                    continue
                gap = edge.min_gap if edge.order else 0
                roots[root] = max(roots.get(root, 0), gap)
            conds: Set[int] = set()
            if (not op.predicate.is_true
                    and op.uid not in self.state.speculated):
                conds = {uid for uid in op.predicate.condition_uids()
                         if uid in self.dfg and uid != op.uid
                         and uid not in roots}
            self._unresolved[op.uid] = len(roots) + len(conds)
            for root, gap in roots.items():
                self._consumers.setdefault(root, []).append((op.uid, gap))
            for cond in conds:
                self._consumers.setdefault(cond, []).append((op.uid, 0))
            self._earliest[op.uid] = self.mobility[op.uid].asap
        if self.cache is not None:
            self.cache.depmaps[frozenset(self.state.speculated)] = (
                dict(self._unresolved), self._consumers)
            profiling.bump("depmaps.compute")

    def _push_ready(self, uid: int) -> None:
        if uid in self._in_heap:
            return
        op = self.dfg.op(uid)
        self._n_priority_keys += 1
        if self.cache is None:
            key = priority_key(op, self.mobility[uid], self._heights,
                               self.dfg, self.library)
        else:
            tail = self.cache.prio_static.get(uid)
            if tail is None:
                tail = priority_statics(op, self._heights,
                                        self.dfg, self.library)
                self.cache.prio_static[uid] = tail
            key = (self.mobility[uid].mobility,) + tail
        heapq.heappush(self._ready_heap, (self._earliest[uid], key, uid))
        self._in_heap.add(uid)

    def _on_bound(self, uid: int, end_state: int, multicycle: bool) -> None:
        """Release consumers whose producers are now all bound."""
        for cons, gap in self._consumers.get(uid, ()):
            avail = end_state + 1 if multicycle else end_state
            avail = max(avail, end_state + gap)
            self._earliest[cons] = max(self._earliest[cons], avail,
                                       self.mobility[cons].asap)
            self._unresolved[cons] -= 1
            if self._unresolved[cons] == 0:
                self._push_ready(cons)

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def _candidates(self, op: Operation) -> List[ResourceInstance]:
        if self.cache is None:
            insts = [inst for inst in self.pool.compatible(op)
                     if (op.uid, inst.name) not in self.state.forbidden]
        else:
            # pool membership is fixed for the whole pass, so the
            # compatibility scan depends only on (kind, width)
            ckey = (op.kind, op.resource_width)
            log = self.pool._order_log
            epoch = len(log)
            order: Optional[List[ResourceInstance]] = None
            ent = self._cand_cache.get(ckey)
            if ent is not None:
                last, order, members = ent
                if last != epoch:
                    for name in log[last:]:
                        if name in members or name == "*":
                            order = None
                            break
                    else:
                        ent[0] = epoch
            if order is None:
                base = self._compat.get(ckey)
                if base is None:
                    # pre-sorted by (area, index): the stable re-sort
                    # on (area, occupancy) below then yields exactly
                    # the reference (area, -n_ops_bound, index) order
                    base = sorted(self.pool.compatible(op),
                                  key=lambda i: (i.rtype.area, i.index))
                    self._compat[ckey] = base
                order = list(base)
                order.sort(key=_cand_key)
                self._cand_cache[ckey] = [
                    epoch, order, {i.name for i in base}]
            forbidden = self.state.forbidden
            if forbidden:
                # the sort key is a unique total order, so filtering the
                # sorted list equals sorting the filtered list
                return [inst for inst in order
                        if (op.uid, inst.name) not in forbidden]
            # callers only iterate the returned list
            return order
        # cheapest grade first; within a grade prefer instances already
        # hosting operations, so sharing consolidates and over-allocated
        # instances stay empty (they are pruned after the pass succeeds)
        insts.sort(key=lambda i: (i.rtype.area, -i.n_ops_bound, i.index))
        return insts

    def _chain_sources(self, op: Operation, state: int) -> List[str]:
        """Connection-graph names of committed producers chained into
        ``op`` at ``state``.

        Depends only on the committed netlist, never on the candidate
        instance, so one list serves a whole candidate walk (the walk
        restores the netlist between candidates).
        """
        roots = self.cache.chain_roots.get(op.uid)
        if roots is None:
            roots = []
            for edge in self.dfg.in_edges(op.uid):
                if edge.distance >= 1 or edge.order:
                    continue
                root = self.netlist.resolve_source(edge.src)
                producer = self.dfg.op(root)
                if producer.is_free or producer.kind is OpKind.READ:
                    continue
                roots.append((root, producer))
            self.cache.chain_roots[op.uid] = roots
        srcs: List[str] = []
        if roots:
            bound_map = self.netlist._bound
            for root, producer in roots:
                pb = bound_map.get(root)
                if pb is not None and pb.state == state and pb.cycles == 1:
                    srcs.append(_node_name(producer, pb.inst))
        return srcs

    def _chain_edges(self, op: Operation,
                     inst: Optional[ResourceInstance],
                     state: int) -> List[Tuple[str, str]]:
        """Combinational connection edges this binding adds."""
        edges: List[Tuple[str, str]] = []
        dst = _node_name(op, inst)
        if self.cache is not None:
            return [(src, dst) for src in self._chain_sources(op, state)]
        for edge in self.dfg.in_edges(op.uid):
            if edge.distance >= 1 or edge.order:
                continue  # ordering edges carry no combinational path
            root = self.netlist.resolve_source(edge.src)
            producer = self.dfg.op(root)
            if producer.is_free or producer.kind is OpKind.READ:
                continue
            pb = self.netlist.binding(root)
            if pb is None or pb.state != state or pb.cycles > 1:
                continue
            edges.append((_node_name(producer, pb.inst), dst))
        return edges

    def _check_carried(self, op: Operation, state: int) -> bool:
        """Modulo causality toward already-bound carried neighbours.

        Ordering edges use their dependence-class gap (0 for WAR, 1 for
        RAW/WAW) instead of the data edges' implicit gap of one state,
        and are checked in both directions: a consumer access placed too
        early violates its carried producer just as surely.
        """
        ii = self.ii if self.ii is not None else self.latency
        for edge in self.dfg.out_edges(op.uid):
            if edge.distance < 1:
                continue
            cb = self.netlist.binding(edge.dst)
            if cb is None:
                continue
            gap = edge.min_gap if edge.order else 1
            if state > cb.state + edge.distance * ii - gap:
                return False
        for edge in self.dfg.in_edges(op.uid):
            if edge.distance < 1 or not edge.order:
                continue
            pb = self.netlist.binding(edge.src)
            if pb is None:
                continue
            if pb.end_state > state + edge.distance * ii - edge.min_gap:
                return False
        return True

    def _try_bind(self, op: Operation, e: int) -> Tuple[bool, List[Restraint]]:
        """Attempt to bind ``op`` at state ``e``; returns (bound, restraints)."""
        restraints: List[Restraint] = []
        needs_resource = self._type_key(op) is not None
        # the input-arrival probe only feeds restraint payloads; it reads
        # (never mutates) the netlist, and every consumer below runs with
        # the netlist in exactly the state it has here (failed commits
        # are rolled back, successful ones return early), so computing it
        # on demand is bit-exact while skipping the probe entirely on the
        # overwhelmingly common successful binds
        probe_memo: List[float] = []

        def arrival_probe() -> float:
            if not probe_memo:
                probe_memo.append(self.netlist.worst_input_arrival(op, e))
            return probe_memo[0]

        if self.cache is None:
            arrival_probe()  # eager, mirroring the reference path
        if not self._check_carried(op, e):
            window = self._window_of(op.uid)
            if window is not None:
                # a windowed op blocked by modulo causality means the
                # whole SCC sits too early: moving the window (the
                # paper's timing-driven kernel selection) is the fix
                restraints.append(Restraint(
                    kind=RestraintKind.SCC_TIMING, op_uid=op.uid, state=e,
                    scc_index=window.index, fits_fresh_state=False))
            else:
                restraints.append(Restraint(
                    kind=RestraintKind.CARRIED_DEP, op_uid=op.uid, state=e,
                    fits_fresh_state=False))
            return False, restraints

        accept_violation = (
            op.uid in self._forced_sccs
            or (self.options.accept_negative_slack
                and e >= self.mobility[op.uid].alap))

        if op.is_stream and not self._stream_port_free(op, e):
            # the channel endpoint is one physical FIFO port: at most
            # one pop (and one push) per channel per equivalence class
            restraints.append(Restraint(
                kind=RestraintKind.CHAN_PORT, op_uid=op.uid, state=e,
                chan_name=op.payload,
                fits_fresh_state=self.ii is None or self.latency < self.ii))
            return False, restraints

        if op.kind in (OpKind.LOAD, OpKind.STORE):
            return self._try_bind_memory(op, e, restraints)

        if not needs_resource:
            timing = self.netlist.evaluate(
                op, None, e, allow_multicycle=False)
            if not timing.ok and not accept_violation:
                restraints.append(self._timing_restraint(
                    op, e, timing, arrival_probe(), None))
                return False, restraints
            chain = self._chain_edges(op, None, e)
            if self.guard.would_cycle(chain):
                restraints.append(Restraint(
                    kind=RestraintKind.COMB_CYCLE, op_uid=op.uid, state=e,
                    inst_name=_node_name(op, None)))
                return False, restraints
            self.netlist.commit(op, None, e, timing)
            self.guard.commit(chain)
            self._on_bound(op.uid, e, multicycle=False)
            return True, restraints

        busy = 0
        best_slack: Optional[float] = None
        fallback: Optional[Tuple[ResourceInstance, CandidateTiming]] = None
        type_key = self._type_key(op)
        candidates = self._candidates(op)
        if not candidates:
            # no instance at all (everything forbidden, or the pool lacks
            # the type): only adding a resource can help
            fresh = self.netlist.evaluate_fresh(op, e)
            restraints.append(Restraint(
                kind=RestraintKind.NO_RESOURCE, op_uid=op.uid, state=e,
                type_key=type_key,
                input_arrival_ps=arrival_probe(),
                fresh_instance_fails=not fresh.ok,
                fits_fresh_state=self._fits_fresh_state(op)))
            return False, restraints
        # loop-invariant lookups hoisted out of the candidate walk: the
        # SCC window depends only on the op, and the equivalence class of
        # a single-cycle binding only on (state, latency, ii)
        window = self._window_of(op.uid)
        eq_single: Optional[List[int]] = None
        # identical in-walk failures re-record ONE Restraint object (the
        # log counts repeats); constructing a fresh copy per candidate
        # was pure allocation overhead with the same analysis outcome
        lat_r: Optional[Restraint] = None
        scc_r: Optional[Restraint] = None
        last_broken: Optional[Tuple[Tuple, Restraint]] = None
        # raw input arrivals are candidate-independent and the netlist
        # is restored between candidates, so one profile serves the walk
        prof = self.netlist.input_profile(op, e) \
            if self.cache is not None else None
        # chained-producer names are likewise walk-invariant; only the
        # destination node differs per candidate
        chain_srcs = self._chain_sources(op, e) \
            if self.cache is not None else None
        # within one candidate walk, every still-empty instance of one
        # grade is indistinguishable to the timing model (no occupants
        # means no sources and no sharing mux), so evaluate once per
        # grade and reuse the verdict for its empty siblings.  The empty
        # verdict also bounds the occupied siblings: sharing muxes only
        # grow arrivals (mux delay is monotone in fanin; anticipation is
        # a per-grade flag) and the multicycle/chained rescue conditions
        # are grade-invariant, so when the empty sibling fails timing
        # non-rescuably every occupied sibling fails too, with a smaller
        # slack -- skip their evaluations outright.  Only exact when the
        # empty sibling is itself in the walk (it then contributes the
        # grade's dominant best_slack), and never under accept_violation
        # (the fallback choice needs the per-instance timings).
        empty_eval: Dict[int, CandidateTiming] = {}
        empty_member: Dict[int, ResourceInstance] = {}
        if self.cache is not None and not accept_violation:
            for inst in candidates:
                if not inst._ops_map:
                    empty_member.setdefault(id(inst.rtype), inst)
        for inst in candidates:
            if self.cache is not None and not inst._ops_map:
                ekey = id(inst.rtype)
                timing = empty_eval.get(ekey)
                if timing is None:
                    timing = self.netlist.evaluate(
                        op, inst, e,
                        allow_multicycle=self.options.allow_multicycle,
                        profile=prof)
                    empty_eval[ekey] = timing
            else:
                em = empty_member.get(id(inst.rtype))
                if em is not None:
                    ekey = id(inst.rtype)
                    base = empty_eval.get(ekey)
                    if base is None:
                        base = self.netlist.evaluate(
                            op, em, e,
                            allow_multicycle=self.options.allow_multicycle,
                            profile=prof)
                        empty_eval[ekey] = base
                    if not base.ok:
                        continue
                timing = self.netlist.evaluate(
                    op, inst, e,
                    allow_multicycle=self.options.allow_multicycle,
                    profile=prof)
            if not timing.ok:
                if best_slack is None or timing.slack_ps > best_slack:
                    best_slack = timing.slack_ps
                if accept_violation:
                    if eq_single is None:
                        eq_single = _equivalent_states(
                            [e], self.latency, self.ii)
                    if inst.is_free(op, eq_single) \
                            and not self.guard.would_cycle(
                                self._chain_edges(op, inst, e)):
                        if (fallback is None
                                or timing.slack_ps > fallback[1].slack_ps):
                            fallback = (inst, timing)
                continue
            if timing.cycles == 1:
                needed = [e]
                last = e
                if eq_single is None:
                    eq_single = _equivalent_states([e], self.latency,
                                                   self.ii)
                eq_states = eq_single
            else:
                needed = list(range(e, e + timing.cycles))
                last = needed[-1]
                eq_states = None
            if last > self.latency - 1:
                if lat_r is None:
                    lat_r = Restraint(
                        kind=RestraintKind.LATENCY, op_uid=op.uid, state=e,
                        type_key=type_key, fits_fresh_state=True)
                restraints.append(lat_r)
                continue
            if window is not None and last > window.end:
                if scc_r is None:
                    scc_r = Restraint(
                        kind=RestraintKind.SCC_TIMING, op_uid=op.uid,
                        state=e, scc_index=window.index,
                        fits_fresh_state=True)
                restraints.append(scc_r)
                continue
            if eq_states is None:
                eq_states = _equivalent_states(needed, self.latency, self.ii)
            # inlined ResourceInstance.is_free (keep in sync): one call
            # per candidate, a million times per heavy design
            occ = inst._occupancy
            if occ:
                pred = op.predicate
                free = True
                for s in eq_states:
                    others = occ.get(s)
                    if others:
                        for other in others:
                            if not pred.disjoint(other.predicate):
                                free = False
                                break
                        if not free:
                            break
                if not free:
                    busy += 1
                    continue
            if chain_srcs is not None:
                dst_name = _node_name(op, inst) if chain_srcs else ""
                chain = [(src, dst_name) for src in chain_srcs]
            else:
                chain = self._chain_edges(op, inst, e)
            if chain and self.guard.would_cycle(chain):
                restraints.append(Restraint(
                    kind=RestraintKind.COMB_CYCLE, op_uid=op.uid, state=e,
                    type_key=type_key, inst_name=inst.name))
                continue
            # the commit re-times every binding the new sharing mux (or
            # chain) disturbs; rolled back (inside try_commit, which also
            # memoizes the doomed outcomes) if a neighbour's path breaks
            result, broken_info = self.netlist.try_commit(op, inst, e,
                                                          timing)
            if broken_info is not None:
                if last_broken is not None \
                        and last_broken[0] == broken_info:
                    restraints.append(last_broken[1])
                else:
                    broken_uid, broken_state, broken_slack, \
                        broken_arrival = broken_info
                    br = Restraint(
                        kind=RestraintKind.NEG_SLACK, op_uid=broken_uid,
                        state=broken_state, type_key=type_key,
                        slack_ps=broken_slack,
                        input_arrival_ps=broken_arrival)
                    last_broken = (broken_info, br)
                    restraints.append(br)
                continue
            inst.occupy(op, needed)
            self.guard.commit(chain)
            self._on_bound(op.uid, needed[-1], multicycle=timing.cycles > 1)
            return True, restraints

        if fallback is not None:
            # bind with a timing violation; logic synthesis will pay for it
            inst, timing = fallback
            chain = self._chain_edges(op, inst, e)
            self.netlist.commit(op, inst, e, timing)
            inst.occupy(op, [e])
            self.guard.commit(chain)
            self._on_bound(op.uid, e, multicycle=False)
            return True, restraints

        if busy:
            fresh = self.netlist.evaluate_fresh(op, e)
            restraints.append(Restraint(
                kind=RestraintKind.NO_RESOURCE, op_uid=op.uid, state=e,
                type_key=type_key,
                input_arrival_ps=arrival_probe(),
                fresh_instance_fails=not fresh.ok,
                fits_fresh_state=self._fits_fresh_state(op)))
        if best_slack is not None:
            dummy = CandidateTiming(False, 0.0, 0.0, best_slack)
            restraints.append(self._timing_restraint(
                op, e, dummy, arrival_probe(), type_key))
        return False, restraints

    def _stream_port_free(self, op: Operation, e: int) -> bool:
        """Whether ``op``'s channel port is free at state ``e``.

        A FIFO exposes one read and one write port; accesses of the same
        direction on one channel serialize across (equivalence classes
        of) states.  Predicate-disjoint accesses may share the port --
        only one of them executes per iteration.
        """
        eq = set(_equivalent_states([e], self.latency, self.ii))
        for other in self.region.channel_accesses(op.payload, op.kind):
            if other.uid == op.uid:
                continue
            ob = self.netlist.binding(other.uid)
            if ob is None:
                continue
            if ob.state in eq and not op.predicate.disjoint(other.predicate):
                return False
        return True

    def _try_bind_memory(self, op: Operation, e: int,
                         restraints: List[Restraint]
                         ) -> Tuple[bool, List[Restraint]]:
        """Bind a LOAD/STORE to a RAM port of its memory at state ``e``.

        RAM ports are shared instances: at most P accesses per bank per
        state (P = ports per bank), honoring pipelining's equivalent
        edges.  A static-bank access claims one port of its bank; a
        dynamic access may address any bank, so it conservatively
        reserves the same port index on *every* bank.  Timing (address
        mux + array access + read-data capture) is charged through the
        incremental engine against the primary port instance.
        """
        mem, _dynamic, bank = self._mem_shape[op.uid]
        cfg = self.memories[mem]
        if bank is not None:
            candidate_sets = [[cfg.port_insts[bank][p]]
                              for p in range(cfg.ports)]
        else:
            candidate_sets = [[cfg.port_insts[b][p]
                               for b in range(cfg.banks)]
                              for p in range(cfg.ports)]
        busy = 0
        best_slack: Optional[float] = None
        for insts in candidate_sets:
            primary = insts[0]
            timing = self.netlist.evaluate(
                op, primary, e, allow_multicycle=False)
            if not timing.ok:
                if best_slack is None or timing.slack_ps > best_slack:
                    best_slack = timing.slack_ps
                continue
            needed = list(range(e, e + timing.cycles))
            if needed[-1] > self.latency - 1:
                restraints.append(Restraint(
                    kind=RestraintKind.LATENCY, op_uid=op.uid, state=e,
                    fits_fresh_state=True))
                continue
            window = self._window_of(op.uid)
            if window is not None and needed[-1] > window.end:
                restraints.append(Restraint(
                    kind=RestraintKind.SCC_TIMING, op_uid=op.uid, state=e,
                    scc_index=window.index, fits_fresh_state=True))
                continue
            eq_states = _equivalent_states(needed, self.latency, self.ii)
            if not all(inst.is_free(op, eq_states) for inst in insts):
                busy += 1
                continue
            chain = self._chain_edges(op, primary, e)
            if self.guard.would_cycle(chain):
                restraints.append(Restraint(
                    kind=RestraintKind.COMB_CYCLE, op_uid=op.uid, state=e,
                    inst_name=primary.name))
                continue
            result, broken_info = self.netlist.try_commit(op, primary, e,
                                                          timing)
            if broken_info is not None:
                broken_uid, broken_state, broken_slack, broken_arrival = \
                    broken_info
                restraints.append(Restraint(
                    kind=RestraintKind.NEG_SLACK, op_uid=broken_uid,
                    state=broken_state, slack_ps=broken_slack,
                    input_arrival_ps=broken_arrival))
                continue
            for inst in insts:
                inst.occupy(op, needed)
            self.guard.commit(chain)
            self._on_bound(op.uid, needed[-1],
                           multicycle=timing.cycles > 1)
            return True, restraints

        # a new state only provides fresh port slots while it grows the
        # set of equivalence classes (sequential always; pipelined only
        # below II states) -- mirrored by the add-state action
        fresh_state_helps = self.ii is None or self.latency < self.ii
        if busy:
            restraints.append(Restraint(
                kind=RestraintKind.MEM_PORT, op_uid=op.uid, state=e,
                mem_name=mem, fits_fresh_state=fresh_state_helps))
        if best_slack is not None:
            budget = self.clock_ps * max(cfg.rtype.access_cycles, 1)
            restraints.append(Restraint(
                kind=RestraintKind.NEG_SLACK, op_uid=op.uid, state=e,
                slack_ps=best_slack,
                input_arrival_ps=self.netlist.worst_input_arrival(op, e),
                fresh_instance_fails=True,
                fits_fresh_state=registered_path_ps(
                    self.library, cfg.rtype) <= budget))
        return False, restraints

    def _timing_restraint(self, op: Operation, e: int,
                          timing: CandidateTiming, arrival: float,
                          type_key) -> Restraint:
        window = self._window_of(op.uid)
        kind = RestraintKind.NEG_SLACK
        if window is not None:
            # the paper distinguishes SCC timing failures from ordinary
            # negative slack so the move-SCC action can be suggested
            kind = RestraintKind.SCC_TIMING
        return Restraint(
            kind=kind, op_uid=op.uid, state=e, type_key=type_key,
            slack_ps=timing.slack_ps,
            scc_index=window.index if window else None,
            input_arrival_ps=arrival,
            fresh_instance_fails=not self.netlist.evaluate_fresh(op, e).ok,
            fits_fresh_state=self._fits_fresh_state(op))

    def _window_of(self, uid: int) -> Optional[SCCWindow]:
        """SCC window containing ``uid`` (first in list order), if any."""
        if self.cache is None:
            return window_of(self.windows, uid)
        if self._window_map is None:
            wmap: Dict[int, SCCWindow] = {}
            for window in self.windows:
                for wuid in window.ops:
                    if wuid not in wmap:
                        wmap[wuid] = window
            self._window_map = wmap
        return self._window_map.get(uid)

    def _type_key(self, op: Operation):
        """Memoized :func:`type_key_for` (pure in kind/width/library)."""
        if self.cache is None:
            return type_key_for(op, self.library)
        try:
            return self.cache.type_keys[op.uid]
        except KeyError:
            key = type_key_for(op, self.library)
            self.cache.type_keys[op.uid] = key
            return key

    def _fits_fresh_state(self, op: Operation) -> bool:
        """Would the op fit a state where all its inputs are registered?

        Memory accesses depend on the pass's banking configuration; for
        everything else the verdict is a pure function of library, clock
        and options, so it carries over between passes.
        """
        if self.cache is not None and not op.is_memory:
            key = (self.clock_ps, op.uid)
            cached = self.cache.fits_fresh.get(key)
            if cached is None:
                cached = self._fits_fresh_state_impl(op)
                self.cache.fits_fresh[key] = cached
            return cached
        return self._fits_fresh_state_impl(op)

    def _fits_fresh_state_impl(self, op: Operation) -> bool:
        lib = self.library
        if op.is_free or op.is_io or op.is_mux or op.kind is OpKind.STALL:
            return True
        if op.is_memory:
            rtype = self.memories[op.payload].rtype
            budget = self.clock_ps * max(rtype.access_cycles, 1)
            return registered_path_ps(lib, rtype) <= budget
        families = lib.families_for(op.kind)
        if not families:
            return False
        rtype = lib.resource_type(families[0], op.resource_width)
        if registered_path_ps(lib, rtype) <= self.clock_ps:
            return True
        return rtype.multicycle_ok and self.options.allow_multicycle

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> PassOutcome:
        """Execute the pass; restraints accumulate in ``self.log``."""
        try:
            return self._run()
        finally:
            profiling.bump("pass.count")
            profiling.bump("engine.evaluate", self.netlist.n_evaluate)
            profiling.bump("engine.commit", self.netlist.n_commit)
            profiling.bump("engine.rollback", self.netlist.n_rollback)
            profiling.bump("engine.propagated", self.netlist.n_propagated)
            profiling.bump("engine.commit_cache_hit",
                           self.netlist.n_cache_hits)
            profiling.bump("engine.commit_cache_miss",
                           self.netlist.n_cache_misses)
            profiling.bump("scheduler.priority_keys", self._n_priority_keys)

    def _run(self) -> PassOutcome:
        if not self._prepare():
            return PassOutcome(False, self.netlist, self.pool,
                               self.windows, self.mobility, self.log)
        if self.cache is not None:
            if self.cache.heights is None:
                self.cache.heights = compute_heights(self.dfg, self.library)
            self._heights = self.cache.heights
        else:
            self._heights = compute_heights(self.dfg, self.library)
        self._build_dependency_maps()
        for uid, count in self._unresolved.items():
            if count == 0:
                self._push_ready(uid)

        bound: Set[int] = set()
        schedulable = {op.uid for op in self.region.schedulable_ops()}
        deferred: List[Tuple] = []
        for e in range(self.latency):
            for item in deferred:
                heapq.heappush(self._ready_heap, item)
                self._in_heap.add(item[2])
            deferred = []
            attempted: Set[int] = set()
            while self._ready_heap:
                avail, key, uid = heapq.heappop(self._ready_heap)
                self._in_heap.discard(uid)
                if uid in bound or uid in self.log.failed_ops:
                    continue
                if avail > e:
                    deferred.append((avail, key, uid))
                    continue
                if uid in attempted:
                    deferred.append((avail, key, uid))
                    continue
                op = self.dfg.op(uid)
                mob = self.mobility[uid]
                if op.pinned_state is not None and e != op.pinned_state:
                    if e < op.pinned_state:
                        deferred.append((op.pinned_state, key, uid))
                        continue
                    self.log.mark_failed(uid)
                    self.log.record(Restraint(
                        kind=RestraintKind.LATENCY, op_uid=uid, state=e))
                    continue
                ok, restraints = self._try_bind(op, e)
                for r in restraints:
                    self.log.record(r)
                if ok:
                    bound.add(uid)
                    continue
                attempted.add(uid)
                if e >= mob.alap:
                    # "if op_best failed and e is last in lifespan"
                    self.log.mark_failed(uid)
                    if not op.predicate.is_true and uid not in self.state.speculated:
                        self.log.record(Restraint(
                            kind=RestraintKind.PREDICATE_ORDER, op_uid=uid,
                            state=e, cond_uid=next(
                                iter(op.predicate.condition_uids()), None)))
                else:
                    deferred.append((avail, key, uid))

        for uid in sorted(schedulable - bound - self.log.failed_ops):
            self.log.mark_failed(uid)
            self.log.record(Restraint(
                kind=RestraintKind.LATENCY, op_uid=uid,
                state=self.latency - 1, fits_fresh_state=True))
        success = not self.log.has_failures and schedulable <= bound
        return PassOutcome(success, self.netlist, self.pool,
                           self.windows, self.mobility, self.log)


def _ffwd_stable(batch, pool, netlist) -> bool:
    """Whether repeating ``batch`` forever cannot change a future pass.

    Sound only for pure ``add_resource`` batches: every other action
    family mutates monotone driver state (forbidden pairs, speculation,
    SCC shifts, bank overrides) that feeds back into the next proposal.
    For resource additions, two conditions make the extra instances
    invisible to the candidate walk (the empty-sibling argument behind
    the PR 6 fast paths):

    - at least one instance of each added type stayed empty through the
      whole observed pass, so the binder never needed instances beyond
      the ones both passes shared; and
    - the type's sharing outlook is already saturated
      (``demand <= count`` with the engine's memory-port adjustments),
      so the anticipation flag -- the one timing input that reads the
      pool *size* -- cannot flip as copies pile up.
    """
    for action in batch:
        if action.rtype is None or \
                not action.name.startswith("add_resource:"):
            return False
    demand = netlist._type_demand
    counts = netlist._type_count
    for action in batch:
        rt = action.rtype
        key = (rt.family, rt.width)
        if demand.get(key, 0) > counts.get(key, 1):
            return False
        if not any(inst.rtype.name == rt.name and not inst.ops_bound()
                   for inst in pool.instances):
            return False
    return True


#: counters whose per-pass deltas annotate ``scheduler.pass`` spans.
#: Timing-engine commits stay aggregated at pass granularity on
#: purpose: per-commit spans would blow the tracing overhead budget
#: (try_commit runs orders of magnitude more often than passes).
_ENGINE_SPAN_KEYS = ("engine.evaluate", "engine.commit",
                     "engine.rollback", "engine.commit_cache_hit",
                     "engine.commit_cache_miss")


def schedule_region(
    region: Region,
    library: Library,
    clock_ps: float,
    pipeline: Optional[PipelineSpec] = None,
    options: Optional[SchedulerOptions] = None,
    carryover: Optional[_RegionCache] = None,
    tracer: Optional[Tracer] = None,
) -> Schedule:
    """Schedule and bind a region; the paper's full iterative flow.

    Raises :class:`~repro.core.schedule.ScheduleError` when the design is
    overconstrained and no relaxation action remains.

    ``carryover`` is the sweep engine's cross-point hook: a
    :class:`_RegionCache` built for this exact region + library that
    outlives the call, letting design points that share the region
    structure reuse timing statics, heights, priority orders and
    clock-keyed mobility skeletons.  Every cached entry is
    decision-neutral, so results are bit-identical with or without it.

    ``tracer`` records one ``scheduler.pass`` span per relaxation pass
    (success flag, engine counter deltas, dominant restraint kind and
    slack, the chosen action) -- observation only, never steering: a
    traced run's decisions are bit-identical to an untraced one, which
    the equivalence suite pins.
    """
    options = options or SchedulerOptions()
    region.validate()
    if pipeline is not None and not region.is_loop:
        raise ScheduleError(f"{region.name}: cannot pipeline a non-loop")
    min_latency = region.min_latency
    if pipeline is not None:
        # "exploration often starts from LI = II + 1 (the minimum for
        # pipelined execution)" -- section V
        min_latency = max(min_latency, pipeline.ii + 1)
    if min_latency > region.max_latency:
        raise ScheduleError(
            f"{region.name}: latency bound {region.max_latency} below "
            f"minimum {min_latency}")

    try:
        alloc_mobility = compute_mobility(
            region, library, clock_ps, region.max_latency)
    except InfeasibleTiming as exc:
        raise ScheduleError(
            f"{region.name}: infeasible even at max latency: {exc}") from exc
    allocation = lower_bound(
        region, library, alloc_mobility, region.max_latency,
        pipeline.ii if pipeline else None)

    state = DriverState(latency=min_latency)
    if carryover is not None and options.fast_paths:
        cache = carryover
    else:
        cache = _RegionCache(region, library) if options.fast_paths else None
    outcome: Optional[PassOutcome] = None
    prev_fp = None
    for pass_no in range(1, options.max_passes + 1):
        with maybe_span(tracer, "scheduler.pass", pass_no=pass_no,
                        region=region.name,
                        latency=state.latency) as pspan:
            if pspan is not None:
                eng_before = {key: profiling.counters.get(key, 0)
                              for key in _ENGINE_SPAN_KEYS}
            pass_run = _Pass(region, library, clock_ps, state.latency,
                             pipeline, allocation, state, options,
                             cache=cache)
            outcome = pass_run.run()
            if pspan is not None:
                pspan.set("success", outcome.success)
                for key in _ENGINE_SPAN_KEYS:
                    pspan.set(key.replace(".", "_"),
                              profiling.counters.get(key, 0)
                              - eng_before[key])
            if options.trace:
                print(f"[pass {pass_no}] latency={state.latency} "
                      f"success={outcome.success} "
                      f"restraints={outcome.log.summary()}")
            if outcome.success:
                # prune instances the binder never used (batched
                # resource additions may overshoot; unused copies cost
                # only area)
                for inst in list(outcome.pool.instances):
                    if not inst.ops_bound():
                        outcome.pool.remove(inst)
                schedule = Schedule(
                    region=region,
                    library=library,
                    clock_ps=clock_ps,
                    latency=state.latency,
                    pipeline=pipeline,
                    bindings=outcome.netlist.bindings,
                    pool=outcome.pool,
                    netlist=outcome.netlist,
                    scc_windows=outcome.windows,
                    passes=pass_no,
                    actions_taken=list(state.history),
                    speculated=frozenset(state.speculated),
                    memories=pass_run.memories,
                )
                if options.validate_result:
                    problems = schedule.validate(
                        allow_negative_slack=options.
                        accept_negative_slack)
                    if problems:
                        raise ScheduleError(
                            f"{region.name}: internal validation "
                            f"failed", problems)
                return schedule
            analyzed = outcome.log.analyze(region.dfg)
            outlook = {key: (demand, outcome.pool.count(*key))
                       for key, demand in allocation.demand.items()}
            if pspan is not None and analyzed:
                # the dominant (highest-weight) restraint drives the
                # relaxation choice; its slack is the admission margin
                # the failed binding missed by
                top = analyzed[0]
                pspan.set("restraint_kind", top.kind.value)
                pspan.set("restraint_weight", top.weight)
                if top.slack_ps is not None:
                    pspan.set("slack_ps", top.slack_ps)
                kinds: Dict[str, int] = {}
                for r in analyzed:
                    kinds[r.kind.value] = kinds.get(r.kind.value, 0) + 1
                pspan.set("restraints", kinds)
            actions = propose_actions(
                region, library, clock_ps, analyzed, state, pipeline,
                enable_scc_move=options.enable_scc_move,
                enable_speculation=options.enable_speculation,
                allow_grades=options.allow_grades,
                allow_banking=options.allow_banking,
                resource_outlook=outlook)
            if not actions:
                if pspan is not None:
                    pspan.set("action", None)
                    pspan.set("action_outcome", "overconstrained")
                diagnostics = [
                    f"{r.kind.value}: op "
                    f"{region.dfg.op(r.op_uid).name} at "
                    f"s{r.state + 1} (weight {r.weight:.1f})"
                    for r in analyzed[:10] if r.op_uid in region.dfg
                ]
                raise ScheduleError(
                    f"{region.name}: overconstrained, no relaxation "
                    f"action after pass {pass_no}", diagnostics)
            if pspan is not None:
                pspan.set("action", actions[0].name)
                pspan.set("action_gain", actions[0].gain)
                pspan.set("action_outcome", "accepted")
            if options.jobs > 1 and len(actions) > 1:
                raced = race_relaxation(
                    region, library, clock_ps, pipeline, allocation,
                    analyzed, state, options, outlook, len(actions),
                    tracer=tracer)
                if raced is not None:
                    branch, state = raced
                    if pspan is not None:
                        pspan.set("raced", True)
                        pspan.set("race_winner", branch)
                        pspan.set("action",
                                  actions[branch].name
                                  if branch is not None
                                  else actions[0].name)
                    prev_fp = None  # may diverge from branch 0
                    continue
            # relaxation fixpoint fast-forward: when this failed pass
            # is an exact replay of the previous one (same analyzed
            # restraints, same scored actions) and the batch about to
            # be applied provably cannot perturb any future pass,
            # every remaining iteration up to the pass budget is the
            # same pass again -- synthesize their state/history
            # updates and exhaust the budget without running them.
            # Death-spiral points (the dominant cost of infeasible
            # sweeps) collapse from hundreds of passes to the spiral
            # prefix.
            if options.fixpoint_ffwd and cache is not None:
                fp = driver_fingerprint(analyzed, actions)
                if fp == prev_fp:
                    if _ffwd_stable(applied_actions(actions, 0),
                                    outcome.pool, outcome.netlist):
                        remaining = options.max_passes - pass_no + 1
                        profiling.bump("scheduler.ffwd")
                        profiling.bump("scheduler.ffwd_passes",
                                       remaining - 1)
                        if pspan is not None:
                            pspan.set("ffwd", "accepted")
                            pspan.set("ffwd_passes", remaining - 1)
                        for _ in range(remaining):
                            apply_action_batch(actions, 0, state)
                        break
                    # an exact replay whose batch could still perturb
                    # a future pass: stay on the cold path (and count
                    # it, so sweep reports can show accepted vs
                    # rejected fixpoints)
                    profiling.bump("scheduler.ffwd_reject")
                    if pspan is not None:
                        pspan.set("ffwd", "rejected")
                prev_fp = fp
            # apply the winning action plus the batch of independent
            # secondary actions (resource additions for other types,
            # binding prohibitions, speculations): they interact with
            # neither the winner nor each other, so applying them
            # together saves whole scheduling passes on large designs
            apply_action_batch(actions, 0, state)
    raise ScheduleError(
        f"{region.name}: pass budget ({options.max_passes}) exhausted",
        state.history)
