"""The schedule produced by the pass scheduler, plus area/timing reports
and a structural validator used heavily by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdfg.memory import static_bank
from repro.cdfg.ops import OpKind
from repro.cdfg.region import PipelineSpec, Region
from repro.core.registers import RegisterFile, allocate_registers
from repro.core.scc import SCCWindow, check_carried_dependencies
from repro.tech.library import Library
from repro.tech.resources import MemoryConfig, ResourcePool
from repro.timing.engine import BoundOp, TimingEngine
from repro.timing.sta import TimingReport, verify_timing


class ScheduleError(RuntimeError):
    """Raised when scheduling fails and no relaxation action remains."""

    def __init__(self, message: str, diagnostics: Optional[List[str]] = None):
        super().__init__(message)
        self.diagnostics = diagnostics or []

    #: diagnostics rendered by ``str()`` before eliding the rest; the
    #: full list is always available via ``.diagnostics`` (see the
    #: "Diagnostics" section of docs/ARCHITECTURE.md for the format).
    MAX_SHOWN = 12

    def __str__(self) -> str:
        head = super().__str__()
        if not self.diagnostics:
            return head
        shown = self.diagnostics[:self.MAX_SHOWN]
        text = head + "".join(f"\n  - {line}" for line in shown)
        hidden = len(self.diagnostics) - len(shown)
        if hidden:
            text += (f"\n  ... and {hidden} more "
                     f"(all {len(self.diagnostics)} in .diagnostics)")
        return text


@dataclass
class AreaReport:
    """Area breakdown of a bound schedule (paper Table 3 numbers)."""

    resources: float
    registers: float
    sharing_muxes: float
    steering_muxes: float  # MUX/LOOPMUX operations
    memories: float = 0.0  # RAM macros of declared arrays

    @property
    def total(self) -> float:
        """Total area."""
        return (self.resources + self.registers
                + self.sharing_muxes + self.steering_muxes
                + self.memories)

    def rows(self) -> List[Tuple[str, float]]:
        """(component, area) rows for reports."""
        return [
            ("functional resources", self.resources),
            ("registers", self.registers),
            ("sharing muxes", self.sharing_muxes),
            ("steering muxes", self.steering_muxes),
            ("memories", self.memories),
            ("total", self.total),
        ]


@dataclass
class Schedule:
    """A complete scheduling + binding result for one region.

    Produced by :func:`~repro.core.scheduler.schedule_region`; the
    single artifact every backend consumes (RTL, simulators, power,
    reports).  ``bindings`` maps op uid to its (state, instance,
    cycles, arrival) record; ``netlist`` is the incremental timing
    engine the bindings were admitted against, so
    :meth:`timing_report` signs off with the very arithmetic that
    admitted each path.

    Example::

        from repro import RegionBuilder, artisan90, schedule_region

        b = RegionBuilder("mac", is_loop=True, max_latency=4)
        x = b.read("x", 32)
        acc = b.loop_var("acc", b.const(0, 32))
        acc.set_next(b.add(acc, b.mul(x, x)))
        b.write("y", acc.value)
        schedule = schedule_region(b.build(), artisan90(), 1600.0)
        assert schedule.validate() == []          # structurally sound
        assert schedule.timing_report().met       # and meets timing
        print(schedule.table())                   # paper Table 2 grid
    """

    region: Region
    library: Library
    clock_ps: float
    latency: int
    pipeline: Optional[PipelineSpec]
    bindings: Dict[int, BoundOp]
    pool: ResourcePool
    netlist: TimingEngine
    scc_windows: List[SCCWindow] = field(default_factory=list)
    passes: int = 1
    actions_taken: List[str] = field(default_factory=list)
    speculated: frozenset = frozenset()
    #: physical realization of the region's declared memories (effective
    #: banking may exceed the declared one via the add-bank action).
    memories: Dict[str, MemoryConfig] = field(default_factory=dict)

    @property
    def ii(self) -> Optional[int]:
        """Initiation interval, None when not pipelined."""
        return self.pipeline.ii if self.pipeline else None

    @property
    def ii_effective(self) -> int:
        """Cycles between iteration starts (latency when sequential)."""
        return self.pipeline.ii if self.pipeline else self.latency

    @property
    def n_stages(self) -> int:
        """Pipeline stages (1 when sequential)."""
        if self.pipeline is None:
            return 1
        return self.pipeline.stages(self.latency)

    def state_of(self, uid: int) -> int:
        """Start state of a bound operation."""
        return self.bindings[uid].state

    def states_map(self) -> Dict[int, int]:
        """op uid -> start state for all bound operations."""
        return {uid: b.state for uid, b in self.bindings.items()}

    # ------------------------------------------------------------------
    # derived artifacts
    # ------------------------------------------------------------------
    def register_file(self) -> RegisterFile:
        """Register binding for this schedule."""
        return allocate_registers(
            self.region.dfg, self.bindings, self.latency,
            self.ii, self.n_stages)

    def timing_report(self) -> TimingReport:
        """From-scratch timing verification."""
        return verify_timing(self.netlist)

    def area_report(self) -> AreaReport:
        """Area breakdown: resources + registers + muxes."""
        lib = self.library
        regs = self.register_file()
        mem_ports = {inst.name: inst for cfg in self.memories.values()
                     for inst in cfg.all_port_insts()}
        sharing = 0.0
        for (inst_name, _port), sources in sorted(
                self.netlist.port_sources().items()):
            if len(sources) < 2:
                continue
            inst = mem_ports.get(inst_name) or next(
                i for i in self.pool.instances if i.name == inst_name)
            sharing += lib.mux.area(len(sources), inst.rtype.width)
        steering = 0.0
        for uid, bound in self.bindings.items():
            if bound.op.is_mux:
                steering += lib.mux.area(2, bound.op.width)
        return AreaReport(
            resources=self.pool.total_area(),
            registers=regs.area(lib),
            sharing_muxes=sharing,
            steering_muxes=steering,
            memories=sum(cfg.area for cfg in self.memories.values()),
        )

    @property
    def area(self) -> float:
        """Total area (convenience accessor)."""
        return self.area_report().total

    @property
    def delay_ps(self) -> float:
        """Iteration delay = effective II x clock (paper section VI)."""
        return self.ii_effective * self.clock_ps

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    def table(self) -> str:
        """Render the paper's Table 2: states x resources grid."""
        columns: List[str] = [inst.name for inst in self.pool.instances]
        columns += [inst.name for cfg in self.memories.values()
                    for inst in cfg.all_port_insts()]
        mux_ops = [b for b in self.bindings.values() if b.op.is_mux]
        if mux_ops:
            columns.append("mux")
        grid: Dict[Tuple[int, str], List[str]] = {}
        for uid, bound in sorted(self.bindings.items()):
            if bound.op.is_free or bound.op.is_io:
                continue
            if bound.op.is_mux:
                col = "mux"
            elif bound.inst is not None:
                col = bound.inst.name
            else:
                continue
            for state in range(bound.state, bound.end_state + 1):
                grid.setdefault((state, col), []).append(bound.op.name)
        widths = {col: max([len(col)] + [
            len(", ".join(grid.get((s, col), [])))
            for s in range(self.latency)]) for col in columns}
        header = "state | " + " | ".join(col.ljust(widths[col])
                                         for col in columns)
        lines = [header, "-" * len(header)]
        for state in range(self.latency):
            cells = [", ".join(grid.get((state, col), [])).ljust(widths[col])
                     for col in columns]
            lines.append(f"s{state + 1:<4} | " + " | ".join(cells))
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        """Key figures for benches and experiment logs."""
        report = self.area_report()
        timing = self.timing_report()
        return {
            "region": self.region.name,
            "clock_ps": self.clock_ps,
            "latency": self.latency,
            "ii": self.ii_effective,
            "stages": self.n_stages,
            "passes": self.passes,
            "area": round(report.total, 1),
            "wns_ps": round(timing.wns_ps, 1),
            "resources": self.pool.summary(),
            "register_bits": self.register_file().total_bits,
            "memories": {name: {"banks": cfg.banks,
                                "ports": cfg.ports,
                                "macro": cfg.rtype.name}
                         for name, cfg in sorted(self.memories.items())},
        }

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, allow_negative_slack: bool = False) -> List[str]:
        """Structural validity check; returns problems (empty = valid).

        Covers: every schedulable op bound within the latency; data
        dependencies respected (with chaining and multi-cycle rules);
        resource occupancy exclusive (modulo equivalent edges and
        predicate exclusivity); SCC windows honored; carried-dependency
        causality; pins respected; timing met.
        """
        problems: List[str] = []
        dfg = self.region.dfg
        for op in self.region.schedulable_ops():
            bound = self.bindings.get(op.uid)
            if bound is None:
                problems.append(f"{op.name}: not scheduled")
                continue
            if not 0 <= bound.state <= self.latency - 1:
                problems.append(f"{op.name}: state {bound.state} outside body")
            if bound.end_state > self.latency - 1:
                problems.append(f"{op.name}: multicycle spills past latency")
            if (op.pinned_state is not None
                    and bound.state != op.pinned_state):
                problems.append(f"{op.name}: pin {op.pinned_state} violated")
        for op in self.region.schedulable_ops():
            bound = self.bindings.get(op.uid)
            if bound is None:
                continue
            for edge in dfg.in_edges(op.uid):
                if edge.order:
                    pb = self.bindings.get(edge.src)
                    if pb is None:
                        continue
                    ii = self.ii_effective
                    lhs = bound.state + edge.distance * ii
                    if lhs - pb.end_state < edge.min_gap:
                        producer = dfg.op(edge.src)
                        problems.append(
                            f"{op.name}: memory-order violation against "
                            f"{producer.name} (distance {edge.distance}, "
                            f"gap {edge.min_gap})")
                    continue
                if edge.distance >= 1:
                    continue
                root = self.netlist.resolve_source(edge.src)
                producer = dfg.op(root)
                if producer.is_free:
                    continue
                pb = self.bindings.get(root)
                if pb is None:
                    continue
                if pb.cycles > 1:
                    if bound.state <= pb.end_state:
                        problems.append(
                            f"{op.name}: starts at s{bound.state + 1} before "
                            f"multicycle producer {producer.name} completes")
                elif bound.state < pb.state:
                    problems.append(
                        f"{op.name}: scheduled before producer {producer.name}")
        # resource occupancy including equivalence classes
        for inst in self.pool.instances:
            by_class: Dict[int, List] = {}
            for state in inst.states_used():
                key = state % self.ii if self.pipeline else state
                by_class.setdefault(key, []).extend(inst.occupants(state))
            for key, ops in by_class.items():
                for i, a in enumerate(ops):
                    for b in ops[i + 1:]:
                        if a.uid == b.uid:
                            continue
                        if not a.predicate.disjoint(b.predicate):
                            problems.append(
                                f"{inst.name}: {a.name} and {b.name} clash "
                                f"on equivalent edges (class {key})")
        problems.extend(self._validate_memory_ports())
        problems.extend(self._validate_stream_ports())
        for window in self.scc_windows:
            for uid in window.ops:
                bound = self.bindings.get(uid)
                if bound is None:
                    continue
                if not (window.start <= bound.state
                        and bound.end_state <= window.end):
                    problems.append(
                        f"SCC {window.index}: {dfg.op(uid).name} at "
                        f"s{bound.state + 1} outside window "
                        f"[{window.start + 1},{window.end + 1}]")
        if self.pipeline:
            problems.extend(check_carried_dependencies(
                self.region, self.states_map(), self.pipeline.ii))
        if not allow_negative_slack:
            timing = self.timing_report()
            if not timing.met:
                problems.append(f"timing not met: WNS {timing.wns_ps:.0f}ps")
        return problems

    def _validate_stream_ports(self) -> List[str]:
        """Check that no FIFO channel port serves two accesses per state.

        A channel endpoint is one physical FIFO port: at most one pop
        (and one push) per channel per equivalence class, except for
        predicate-exclusive accesses (only one of them executes).
        """
        problems: List[str] = []
        usage: Dict[Tuple[str, OpKind, int], List] = {}
        for op in self.region.dfg.ops_of_kind(OpKind.POP, OpKind.PUSH):
            bound = self.bindings.get(op.uid)
            if bound is None:
                continue
            key = bound.state % self.ii if self.pipeline else bound.state
            usage.setdefault((op.payload, op.kind, key), []).append(op)
        for (chan, kind, key), ops in sorted(
                usage.items(), key=lambda kv: (kv[0][0], kv[0][1].value,
                                               kv[0][2])):
            for i, a in enumerate(ops):
                for b in ops[i + 1:]:
                    if not a.predicate.disjoint(b.predicate):
                        problems.append(
                            f"channel {chan}: {a.name} and {b.name} clash "
                            f"on the {kind.value} port (class {key})")
        return problems

    def _validate_memory_ports(self) -> List[str]:
        """Check that no bank serves more accesses per state than it has
        RAM ports, independent of the binder's bookkeeping.

        Accesses are grouped per (equivalence class, bank); dynamic
        addresses count against every bank.  Predicate-exclusive
        accesses may share one port (only one of them executes).
        """
        problems: List[str] = []
        for name, cfg in sorted(self.memories.items()):
            #: (class, bank) -> accesses landing there
            usage: Dict[Tuple[int, int], List] = {}
            for op in self.region.memory_accesses(name):
                bound = self.bindings.get(op.uid)
                if bound is None:
                    continue
                bank = static_bank(op, cfg.banks,
                                   self.region.access_is_dynamic(op))
                banks = [bank] if bank is not None else range(cfg.banks)
                for state in range(bound.state, bound.end_state + 1):
                    key = state % self.ii if self.pipeline else state
                    for b in banks:
                        usage.setdefault((key, b), []).append(op)
            for (key, b), ops in sorted(usage.items()):
                # greedy predicate-exclusive grouping: one port serves a
                # group of pairwise-disjoint accesses
                groups: List[List] = []
                for op in ops:
                    for group in groups:
                        if all(op.predicate.disjoint(o.predicate)
                               for o in group):
                            group.append(op)
                            break
                    else:
                        groups.append([op])
                if len(groups) > cfg.ports:
                    names = ", ".join(o.name for o in ops)
                    problems.append(
                        f"memory {name} bank {b}: {len(groups)} concurrent "
                        f"accesses exceed {cfg.ports} port(s) in class "
                        f"{key} ({names})")
        return problems
