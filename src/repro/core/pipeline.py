"""High-level pipelining driver.

Step I (schedule one iteration under the SCC-window and equivalent-edge
rules) is performed by :func:`~repro.core.scheduler.schedule_region` with
a :class:`~repro.cdfg.region.PipelineSpec`; Step II (folding onto the
kernel) by :func:`~repro.core.folding.fold_schedule`.  This module wires
the two together and offers the exploration entry point used by the
examples and the Figure 10/11 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cdfg.region import PipelineSpec, Region
from repro.core.folding import FoldedPipeline
from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulerOptions, schedule_region
from repro.tech.library import Library


@dataclass
class PipelineResult:
    """A pipelined implementation: the iteration schedule plus its kernel."""

    schedule: Schedule
    folded: FoldedPipeline

    @property
    def ii(self) -> int:
        """Initiation interval."""
        return self.folded.ii

    @property
    def stages(self) -> int:
        """Number of pipeline stages."""
        return self.folded.n_stages


def pipeline_loop(
    region: Region,
    library: Library,
    clock_ps: float,
    ii: int,
    options: Optional[SchedulerOptions] = None,
) -> PipelineResult:
    """Pipeline a loop region at designer-specified II (paper section V).

    The latency interval is chosen by the tool within the region bounds,
    starting from II + 1; the fold is validated before returning.

    Thin shim over the ``pipeline`` flow (:mod:`repro.flow`); kept for
    the original exception-raising calling convention.
    """
    from repro.flow.flow import run_flow  # deferred: flow sits above core

    ctx = run_flow("pipeline", region=region, library=library,
                   clock_ps=clock_ps, pipeline=PipelineSpec(ii=ii),
                   options=options, run_optimizer=False)
    ctx.raise_if_failed()
    return PipelineResult(schedule=ctx.schedule, folded=ctx.folded)


def explore_microarchitectures(
    region_factory,
    library: Library,
    clock_ps: float,
    iis: List[Optional[int]],
    options: Optional[SchedulerOptions] = None,
) -> Dict[str, Schedule]:
    """Schedule one region at several microarchitectures.

    ``iis`` entries are initiation intervals; ``None`` means sequential.
    ``region_factory`` must build a fresh region per call (schedules bind
    operation state).  Returns label -> schedule, labels like ``S``,
    ``P2``, ``P1`` as in the paper's Table 3.
    """
    out: Dict[str, Schedule] = {}
    for ii in iis:
        region = region_factory()
        if ii is None:
            out["S"] = schedule_region(region, library, clock_ps,
                                       options=options)
        else:
            out[f"P{ii}"] = pipeline_loop(
                region, library, clock_ps, ii, options).schedule
    return out
