"""Strongly-connected-component windows for pipelining.

Iteration dependencies are cycles in the DFG (through loop-carried
edges).  "Preserving causality requires all operations from each strongly
connected component of the DFG to be scheduled within II states" (paper
section V, step I.3a).  There is freedom in *where* the II-state window
sits, "which might be exploited to achieve better timing": the relaxation
action of moving an SCC to a later stage when facing negative slack is
the paper's novel timing-driven kernel selection (sections V/VI, Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.cdfg.region import Region
from repro.core.asap_alap import Mobility


@dataclass
class SCCWindow:
    """An II-state scheduling window for one strongly connected component."""

    index: int
    ops: FrozenSet[int]
    start: int
    ii: int

    @property
    def end(self) -> int:
        """Last state of the window (inclusive)."""
        return self.start + self.ii - 1

    def contains(self, state: int) -> bool:
        """Whether a state lies inside the window."""
        return self.start <= state <= self.end

    def shifted(self, delta: int) -> "SCCWindow":
        """A copy moved ``delta`` states later."""
        return SCCWindow(self.index, self.ops, self.start + delta, self.ii)


def find_scc_windows(
    region: Region,
    mobility: Dict[int, Mobility],
    ii: int,
) -> List[SCCWindow]:
    """Initial windows: each SCC anchored at its earliest feasible start.

    The anchor is the maximum ASAP over the component's members minus the
    room the members need, clamped to the component's combined bounds; in
    practice the window starts at the smallest member ASAP so the
    scheduler has the whole II span to distribute chained members.
    """
    windows: List[SCCWindow] = []
    for idx, comp in enumerate(region.dfg.sccs()):
        start = min(mobility[uid].asap for uid in comp if uid in mobility)
        windows.append(SCCWindow(idx, frozenset(comp), start, ii))
    return windows


def apply_windows(
    mobility: Dict[int, Mobility],
    windows: List[SCCWindow],
    latency: int,
) -> None:
    """Clamp member mobilities into their windows, in place.

    Raises ``ValueError`` when a window cannot accommodate a member (the
    relaxation engine turns this into an SCC restraint / move action).
    """
    for window in windows:
        if window.end > latency - 1:
            raise ValueError(
                f"SCC {window.index}: window [{window.start},{window.end}] "
                f"exceeds latency {latency}")
        for uid in window.ops:
            mob = mobility.get(uid)
            if mob is None:
                continue
            new_asap = max(mob.asap, window.start)
            new_alap = min(mob.alap, window.end - (mob.cycles - 1))
            if new_asap > new_alap:
                raise ValueError(
                    f"SCC {window.index}: op {uid} cannot fit window "
                    f"[{window.start},{window.end}]")
            mob.asap, mob.alap = new_asap, new_alap


def window_of(windows: List[SCCWindow], uid: int) -> Optional[SCCWindow]:
    """The window containing an operation, if any."""
    for window in windows:
        if uid in window.ops:
            return window
    return None


def check_carried_dependencies(
    region: Region,
    schedule_state: Dict[int, int],
    ii: int,
) -> List[str]:
    """Validate the modulo causality constraint on a complete schedule.

    For every loop-carried edge (producer p, consumer c, distance d):
    ``state(p) <= state(c) + d*II - 1`` -- the value is registered before
    the consuming iteration, offset ``d*II`` cycles later, reads it.
    Returns human-readable violations (empty = valid).
    """
    problems: List[str] = []
    for op in region.dfg.ops:
        for edge in region.dfg.in_edges(op.uid):
            if edge.distance < 1:
                continue
            p_state = schedule_state.get(edge.src)
            c_state = schedule_state.get(edge.dst)
            if p_state is None or c_state is None:
                continue
            if p_state > c_state + edge.distance * ii - 1:
                src = region.dfg.op(edge.src).name
                dst = region.dfg.op(edge.dst).name
                problems.append(
                    f"carried edge {src}(s{p_state + 1}) -> {dst}"
                    f"(s{c_state + 1}) violates distance {edge.distance} "
                    f"at II={ii}")
    return problems
