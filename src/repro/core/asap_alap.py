"""Timing-aware ASAP/ALAP mobility intervals.

The paper improves on classic mobility analysis in two ways (section
IV.A): life spans are *timing aware* (ASAP/ALAP come from approximate
timing analysis of the DFG, initially ignoring the sharing multiplexers),
and mutual exclusivity from predicate conversion is honored by the
allocator.  This module implements the first part: a forward/backward
pass over the DFG that assigns each operation an earliest and latest
control step for a given latency and clock, accounting for combinational
chaining within a cycle and for multi-cycle operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from repro.cdfg.dfg import DFG
from repro.cdfg.ops import MEMORY_KINDS, Operation, OpKind
from repro.cdfg.region import Region
from repro.tech.library import Library


class InfeasibleTiming(RuntimeError):
    """An operation cannot meet the clock with any resource or cycle count."""

    def __init__(self, message: str, uid: Optional[int] = None) -> None:
        super().__init__(message)
        self.uid = uid


@dataclass(slots=True)
class Mobility:
    """Scheduling freedom of one operation.

    ``asap``/``alap`` bound the *start* state; ``cycles`` is the number of
    consecutive states the operation occupies when even the fastest
    implementation exceeds one clock period; ``asap_arrival_ps`` is the
    optimistic output arrival when started at ``asap``.
    """

    asap: int
    alap: int
    cycles: int = 1
    asap_arrival_ps: float = 0.0

    @property
    def mobility(self) -> int:
        """Slack in states between the earliest and latest start."""
        return self.alap - self.asap

    def copy(self) -> "Mobility":
        """An independent copy (SCC window clamping mutates in place)."""
        return Mobility(self.asap, self.alap, self.cycles,
                        self.asap_arrival_ps)


def _memory_delay(op: Operation, library: Library) -> float:
    """Approximate RAM access delay for mobility analysis.

    Uses the library's anchor-depth macro; the exact per-decl depth is
    charged by the timing engine at binding time (mobility is
    approximate analysis by design, paper IV.A).
    """
    return library.memory_resource(
        op.resource_width, library.mem.ANCHOR_DEPTH, 1).delay_ps


def _optimistic_delay(op: Operation, library: Library) -> float:
    """The op's combinational delay, ignoring sharing muxes (paper IV.A)."""
    if op.is_free or op.is_io or op.kind is OpKind.STALL:
        return 0.0
    if op.is_mux:
        return library.mux.delay2_ps
    if op.kind in MEMORY_KINDS:
        return _memory_delay(op, library)
    families = library.families_for(op.kind)
    if not families:
        raise InfeasibleTiming(
            f"no resource family implements {op.kind.value}")
    return min(library.resource_type(f, op.resource_width).delay_ps
               for f in families)


def _fastest_delay(op: Operation, library: Library) -> float:
    """Best achievable delay at the highest speed grade."""
    if op.is_free or op.is_io or op.kind is OpKind.STALL:
        return 0.0
    if op.is_mux:
        return library.mux.delay2_ps
    if op.kind in MEMORY_KINDS:
        return _memory_delay(op, library)
    return library.fastest(op.kind, op.resource_width).delay_ps


def _can_multicycle(op: Operation, library: Library) -> bool:
    if op.kind in MEMORY_KINDS:
        return False  # RAM macros have a fixed access latency
    families = library.families_for(op.kind)
    if not families:
        return False
    return library.resource_type(
        families[0], op.resource_width).multicycle_ok


def compute_asap(
    region: Region,
    library: Library,
    clock_ps: float,
    latency: int,
    speculated: Optional[Set[int]] = None,
) -> Dict[int, Mobility]:
    """Forward pass: earliest start state and arrival per operation.

    Chaining is assumed whenever the accumulated arrival still meets the
    clock; otherwise the operation slips to the next state with registered
    inputs.  Operations whose registered-input path exceeds one period get
    a multi-cycle span when the library permits, otherwise
    :class:`InfeasibleTiming` is raised (the clock is simply too fast).

    ``speculated`` operations ignore the predicate-ordering constraint
    (may start before their branch condition is computed).
    """
    speculated = speculated or set()
    ff = library.ff
    result: Dict[int, Mobility] = {}
    cond_state: Dict[int, int] = {}

    for op in region.dfg.topological_order():
        delay = _optimistic_delay(op, library)
        # earliest state from producers (distance-0 edges only)
        start = 0
        arrival_reg = ff.clk_to_q_ps  # arrival when all inputs registered
        chained_in = ff.clk_to_q_ps
        for edge in region.dfg.in_edges(op.uid):
            if edge.distance >= 1:
                continue
            prod = region.dfg.op(edge.src)
            pm = result[prod.uid]
            if edge.order:
                # memory-dependence edge: no value flows; the access
                # simply may not start before producer-end + gap
                req = pm.asap + pm.cycles - 1 + edge.min_gap
                if req > start:
                    start, chained_in = req, ff.clk_to_q_ps
                continue
            avail = pm.asap + pm.cycles - 1  # state where the value appears
            if pm.cycles > 1:
                # multi-cycle results are registered; usable next state
                if avail + 1 > start:
                    start, chained_in = avail + 1, ff.clk_to_q_ps
                continue
            if avail > start:
                start, chained_in = avail, pm.asap_arrival_ps
            elif avail == start:
                chained_in = max(chained_in, pm.asap_arrival_ps)
        # predicate ordering: no earlier than the condition (unless speculated)
        if not op.predicate.is_true and op.uid not in speculated:
            for cond_uid in op.predicate.condition_uids():
                if cond_uid in result:
                    start = max(start, result[cond_uid].asap)
        if op.pinned_state is not None:
            if op.pinned_state < start:
                raise InfeasibleTiming(
                    f"{op.name}: pinned to state {op.pinned_state} before "
                    f"its inputs are available (state {start})", op.uid)
            start, chained_in = op.pinned_state, ff.clk_to_q_ps
        # fit the chain into the clock; slip to a fresh state if needed
        out = chained_in + delay
        if out + ff.setup_ps > clock_ps and chained_in > ff.clk_to_q_ps:
            start += 1
            out = ff.clk_to_q_ps + delay
        cycles = 1
        if out + ff.setup_ps > clock_ps:
            fastest = _fastest_delay(op, library)
            if ff.clk_to_q_ps + fastest + ff.setup_ps <= clock_ps:
                out = ff.clk_to_q_ps + fastest  # a faster grade will fit
            elif _can_multicycle(op, library):
                cycles = math.ceil(
                    (ff.clk_to_q_ps + fastest + ff.setup_ps) / clock_ps)
                out = ff.clk_to_q_ps + fastest - (cycles - 1) * clock_ps
            else:
                raise InfeasibleTiming(
                    f"{op.name} ({op.kind.value}, w{op.width}): cannot meet "
                    f"clock {clock_ps}ps with any grade or cycle count",
                    op.uid)
        result[op.uid] = Mobility(asap=start, alap=latency - 1,
                                  cycles=cycles, asap_arrival_ps=out)
        if op.is_condition:
            cond_state[op.uid] = start
    return result


def compute_alap(
    region: Region,
    library: Library,
    clock_ps: float,
    latency: int,
    mobility: Dict[int, Mobility],
) -> None:
    """Backward pass: fill in the latest start state, in place.

    Conservative in the paper's spirit of approximate analysis: a consumer
    chained in the same state requires the producer no later than the
    consumer; otherwise the producer must finish one state earlier.
    """
    ff = library.ff
    order = region.dfg.topological_order()
    for op in reversed(order):
        mob = mobility[op.uid]
        latest = latency - mob.cycles
        if op.pinned_state is not None:
            latest = min(latest, op.pinned_state)
        delay = _optimistic_delay(op, library)
        for edge in region.dfg.out_edges(op.uid):
            if edge.distance >= 1:
                continue
            cons = region.dfg.op(edge.dst)
            cm = mobility[cons.uid]
            if edge.order:
                latest = min(latest,
                             cm.alap - edge.min_gap - (mob.cycles - 1))
                continue
            cons_delay = _optimistic_delay(cons, library)
            fits_chain = (ff.clk_to_q_ps + delay + cons_delay
                          + ff.setup_ps <= clock_ps)
            if mob.cycles > 1 or not fits_chain:
                latest = min(latest, cm.alap - mob.cycles)
            else:
                latest = min(latest, cm.alap)
        if latest < mob.asap:
            raise InfeasibleTiming(
                f"{op.name}: ALAP {latest} precedes ASAP {mob.asap} at "
                f"latency {latency}", op.uid)
        mob.alap = latest


def compute_mobility(
    region: Region,
    library: Library,
    clock_ps: float,
    latency: int,
    speculated: Optional[Set[int]] = None,
) -> Dict[int, Mobility]:
    """Full timing-aware ASAP/ALAP analysis for one latency choice."""
    mobility = compute_asap(region, library, clock_ps, latency, speculated)
    compute_alap(region, library, clock_ps, latency, mobility)
    return mobility


def min_feasible_latency(
    region: Region,
    library: Library,
    clock_ps: float,
    limit: int = 256,
) -> int:
    """Smallest latency with a non-empty mobility for every operation."""
    for latency in range(max(region.min_latency, 1), limit + 1):
        try:
            compute_mobility(region, library, clock_ps, latency)
            return latency
        except InfeasibleTiming:
            continue
    raise InfeasibleTiming(
        f"{region.name}: no feasible latency up to {limit}")
