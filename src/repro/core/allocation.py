"""Initial resource allocation: a timing- and exclusivity-aware lower bound.

Implements the paper's section IV.A, which improves over Sharma-Jain
interval estimation in two ways: operation life spans are *timing aware*
(they come from :mod:`repro.core.asap_alap`), and operations made mutually
exclusive by predicate conversion do not both count against the same
interval's demand.

For pipelined loops the interval capacity is additionally capped at II
(only II distinct equivalence classes of control steps exist, and a
resource busy on one edge is busy on all equivalent edges -- section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cdfg.ops import Operation, OpKind
from repro.cdfg.region import Region
from repro.core.asap_alap import Mobility
from repro.tech.library import Library
from repro.tech.resources import ResourcePool

TypeKey = Tuple[str, int]  # (family, width bucket)


@dataclass
class AllocationResult:
    """Lower-bound instance counts per (family, width bucket)."""

    counts: Dict[TypeKey, int]
    demand: Dict[TypeKey, int]  # number of compatible operations per type

    def total(self) -> int:
        """Total instances allocated."""
        return sum(self.counts.values())


def type_key_for(op: Operation, library: Library) -> Optional[TypeKey]:
    """The (family, width bucket) an operation maps to, or None.

    Free operations, I/O, stall markers and muxes occupy no library
    resource; memory accesses bind to their declared memory's RAM bank
    ports, which the scheduler allocates from the region's
    ``MemoryDecl``s rather than from this lower bound.  Widths map to
    the smallest bucket that fits; the paper merges close widths into
    one resource type but "not resources of very different bit widths",
    which the bucket ladder realizes.
    """
    if op.is_free or op.is_io or op.is_mux or op.is_memory \
            or op.kind is OpKind.STALL:
        return None
    families = library.families_for(op.kind)
    if not families:
        raise KeyError(f"no resource family for {op.kind.value}")
    return (families[0], library.bucket(op.resource_width))


def _self_contradictory(literals) -> bool:
    """Whether a predicate requires both polarities of one condition."""
    for uid, pol in literals:
        if (uid, not pol) in literals:
            return True
    return False


def _exclusive_groups(ops: List[Operation]) -> int:
    """Greedy count of predicate-exclusive groups.

    Operations in one group are pairwise mutually exclusive, so a single
    resource slot can serve the whole group.  The count of groups is the
    effective demand.

    Equivalent to the naive greedy scan (first group whose members are
    all disjoint with the op wins), with the two dominant cases resolved
    in O(1) instead of a pairwise walk: an unconditional op is disjoint
    *only* with self-contradictory predicates (tracked per group by an
    all-contradictory flag), and a self-contradictory op is disjoint
    with everything (it always joins the first group).
    """
    groups: List[List[Operation]] = []
    all_contra: List[bool] = []
    contra_idxs: List[int] = []  # sorted indices of all-contra groups
    for op in ops:
        pred = op.predicate
        lits = pred.literals
        if not lits:
            # unconditional: joins the first all-contradictory group
            if contra_idxs:
                idx = contra_idxs.pop(0)
                groups[idx].append(op)
                all_contra[idx] = False
            else:
                groups.append([op])
                all_contra.append(False)
        elif _self_contradictory(lits):
            # never satisfiable: disjoint with everything
            if groups:
                groups[0].append(op)
            else:
                groups.append([op])
                all_contra.append(True)
                contra_idxs.append(0)
        else:
            placed = False
            for idx, group in enumerate(groups):
                if all(pred.disjoint(other.predicate) for other in group):
                    group.append(op)
                    if all_contra[idx]:
                        all_contra[idx] = False
                        contra_idxs.remove(idx)
                    placed = True
                    break
            if not placed:
                groups.append([op])
                all_contra.append(False)
    return len(groups)


def lower_bound(
    region: Region,
    library: Library,
    mobility: Dict[int, Mobility],
    latency: int,
    ii: Optional[int] = None,
) -> AllocationResult:
    """Compute the initial instance count per resource type.

    For each type, every interval ``[a, b]`` of control steps is examined:
    operations whose whole life span falls inside contribute demand
    (weighted by their cycle count), discounted by mutual exclusivity;
    capacity is the number of distinct usable slots in the interval.  The
    lower bound is the max over intervals of ``ceil(demand / capacity)``.
    """
    by_type: Dict[TypeKey, List[Operation]] = {}
    for op in region.schedulable_ops():
        key = type_key_for(op, library)
        if key is not None:
            by_type.setdefault(key, []).append(op)

    counts: Dict[TypeKey, int] = {}
    demand: Dict[TypeKey, int] = {}
    for key, ops in sorted(by_type.items()):
        demand[key] = len(ops)
        starts = sorted({mobility[op.uid].asap for op in ops})
        ends = sorted({mobility[op.uid].alap + mobility[op.uid].cycles - 1
                       for op in ops})
        best = 1
        for a in starts:
            for b in ends:
                if b < a:
                    continue
                inside = [op for op in ops
                          if mobility[op.uid].asap >= a
                          and (mobility[op.uid].alap
                               + mobility[op.uid].cycles - 1) <= b]
                if not inside:
                    continue
                eff = _exclusive_groups(inside)
                # weight multi-cycle occupancy
                extra = sum(mobility[op.uid].cycles - 1 for op in inside)
                eff += extra
                span = b - a + 1
                capacity = min(span, ii) if ii is not None else span
                need = -(-eff // capacity)
                best = max(best, need)
        counts[key] = best
    return AllocationResult(counts=counts, demand=demand)


def build_pool(
    allocation: AllocationResult,
    library: Library,
) -> ResourcePool:
    """Materialize the allocation as typical-grade instances."""
    pool = ResourcePool()
    for (family, width), count in sorted(allocation.counts.items()):
        rtype = library.resource_type(family, width)
        for _ in range(count):
            pool.add(rtype)
    return pool
