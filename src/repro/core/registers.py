"""Register binding: lifetimes, modulo variable expansion, left-edge sharing.

Any value produced in one control step and consumed in a later one (or by
a later iteration, through loop-carried edges) must be held in a register.
Sequential schedules share registers between values with disjoint
lifetimes (classic left-edge allocation).  Pipelined schedules cannot
share that way -- consecutive iterations are alive simultaneously -- and a
value whose lifetime exceeds the initiation interval needs
``ceil(lifetime / II)`` physical copies (modulo variable expansion), which
is one of the genuine area costs of pipelining visible in the paper's
Table 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdfg.dfg import DFG
from repro.cdfg.ops import Operation, OpKind
from repro.tech.library import Library
from repro.timing.engine import BoundOp


@dataclass
class ValueLifetime:
    """Storage need of one produced value."""

    uid: int
    name: str
    width: int
    def_state: int
    last_need: int  # state (possibly beyond latency for carried values)

    @property
    def length(self) -> int:
        """Lifetime in states (at least 1 when a register is needed)."""
        return self.last_need - self.def_state


@dataclass
class RegisterInfo:
    """One allocated register (possibly holding several shared values)."""

    name: str
    width: int
    copies: int
    values: List[int] = field(default_factory=list)
    writers: int = 1

    @property
    def bits(self) -> int:
        """Total storage bits including modulo-expansion copies."""
        return self.width * self.copies


@dataclass
class RegisterFile:
    """The complete register binding of a schedule."""

    registers: List[RegisterInfo]
    fsm_bits: int

    @property
    def data_bits(self) -> int:
        """Datapath storage bits (excluding the FSM)."""
        return sum(reg.bits for reg in self.registers)

    @property
    def total_bits(self) -> int:
        """All storage bits."""
        return self.data_bits + self.fsm_bits

    def area(self, library: Library) -> float:
        """Register area plus write-port sharing muxes."""
        area = library.register_area(self.total_bits)
        for reg in self.registers:
            if reg.writers > 1:
                area += library.mux.area(reg.writers, reg.width)
        return area


def _resolved_consumers(dfg: DFG, uid: int) -> List[Tuple[Operation, int]]:
    """(consumer, distance) pairs, looking through free wiring ops.

    Memory-ordering edges are not value uses and do not extend
    lifetimes.
    """
    result: List[Tuple[Operation, int]] = []
    stack: List[Tuple[int, int]] = [(e.dst, e.distance)
                                    for e in dfg.out_edges(uid)
                                    if not e.order]
    while stack:
        cur, dist = stack.pop()
        op = dfg.op(cur)
        if op.is_free:
            stack.extend((e.dst, dist + e.distance)
                         for e in dfg.out_edges(cur) if not e.order)
        else:
            result.append((op, dist))
    return result


def compute_lifetimes(
    dfg: DFG,
    bindings: Dict[int, BoundOp],
    ii_effective: int,
) -> List[ValueLifetime]:
    """Lifetimes of all values that must be registered."""
    lifetimes: List[ValueLifetime] = []
    for uid, bound in sorted(bindings.items()):
        op = bound.op
        if op.is_free or op.kind in (OpKind.WRITE, OpKind.STALL,
                                     OpKind.STORE, OpKind.PUSH):
            continue  # stores/pushes produce no value (RAM/FIFO holds it)
        def_state = bound.end_state
        last_need = def_state
        for cons, dist in _resolved_consumers(dfg, uid):
            cb = bindings.get(cons.uid)
            if cb is None:
                continue
            need_until = cb.state + dist * ii_effective
            if dist >= 1 or cb.state > def_state or bound.cycles > 1:
                last_need = max(last_need, need_until)
        if op.is_exit_test:
            # the FSM samples the exit flag in the following state
            last_need = max(last_need, def_state + 1)
        if last_need > def_state:
            lifetimes.append(ValueLifetime(
                uid=uid, name=op.name, width=op.width,
                def_state=def_state, last_need=last_need))
    return lifetimes


def _left_edge(lifetimes: List[ValueLifetime]) -> List[List[ValueLifetime]]:
    """Classic left-edge sharing: values with disjoint lifetimes stack."""
    columns: List[Tuple[int, List[ValueLifetime]]] = []  # (busy_until, vals)
    for lt in sorted(lifetimes, key=lambda l: (l.def_state, l.last_need)):
        placed = False
        for i, (busy_until, vals) in enumerate(columns):
            if lt.def_state >= busy_until:
                vals.append(lt)
                columns[i] = (lt.last_need, vals)
                placed = True
                break
        if not placed:
            columns.append((lt.last_need, [lt]))
    return [vals for _busy, vals in columns]


def allocate_registers(
    dfg: DFG,
    bindings: Dict[int, BoundOp],
    latency: int,
    ii: Optional[int],
    n_stages: int = 1,
) -> RegisterFile:
    """Bind values to registers for a completed schedule.

    ``ii=None`` marks a sequential (non-overlapped) schedule: lifetimes
    use ``ii_effective = latency`` and left-edge sharing applies.  With
    pipelining, sharing is disabled and modulo expansion kicks in.
    """
    ii_effective = ii if ii is not None else max(latency, 1)
    lifetimes = compute_lifetimes(dfg, bindings, ii_effective)
    registers: List[RegisterInfo] = []
    if ii is None:
        by_width: Dict[int, List[ValueLifetime]] = {}
        for lt in lifetimes:
            by_width.setdefault(lt.width, []).append(lt)
        for width in sorted(by_width):
            for column in _left_edge(by_width[width]):
                registers.append(RegisterInfo(
                    name=f"r_{column[0].name}",
                    width=width,
                    copies=1,
                    values=[lt.uid for lt in column],
                    writers=len(column),
                ))
    else:
        for lt in lifetimes:
            copies = max(1, math.ceil(lt.length / ii))
            registers.append(RegisterInfo(
                name=f"r_{lt.name}",
                width=lt.width,
                copies=copies,
                values=[lt.uid],
                writers=1,
            ))
    # output-port holding registers: one per written port, shared by all
    # writes to that port
    port_writes: Dict[str, List[BoundOp]] = {}
    for uid, bound in sorted(bindings.items()):
        if bound.op.kind is OpKind.WRITE:
            port_writes.setdefault(str(bound.op.payload), []).append(bound)
    for port, writes in sorted(port_writes.items()):
        registers.append(RegisterInfo(
            name=f"r_port_{port}",
            width=max(b.op.width for b in writes),
            copies=1,
            values=[b.op.uid for b in writes],
            writers=len(writes),
        ))
    kernel_states = ii if ii is not None else latency
    fsm_bits = max(1, math.ceil(math.log2(max(kernel_states, 2))))
    if ii is not None:
        fsm_bits += n_stages  # stage-valid shift register
    return RegisterFile(registers=registers, fsm_bits=fsm_bits)
