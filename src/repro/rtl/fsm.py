"""Control FSM of a scheduled loop.

Sequential schedules walk their states in a ring.  Folded pipelines keep a
kernel-state counter (mod II) plus a *stage-valid* shift register: "all
loop operations are predicated by the corresponding stage signals,
generated from the appropriate FSM state registers (if the stage is not
active, the operation is not executed)" (paper section V).  The prologue
fills stage-valid bits one by one, the epilogue drains them once the exit
condition resolves, and stalling loops gate the whole advance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.folding import FoldedPipeline
from repro.core.schedule import Schedule


@dataclass
class FSMSpec:
    """Everything the RTL backend needs to build the controller."""

    kernel_states: int
    state_bits: int
    n_stages: int
    pipelined: bool
    #: (stage, phase) where the exit test resolves; None for counted loops.
    exit_position: Optional[Tuple[int, int]]
    #: (stage, phase) positions that can freeze the pipeline.
    stall_positions: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def stage_valid_bits(self) -> int:
        """Width of the stage-valid shift register (0 when sequential)."""
        return self.n_stages if self.pipelined else 0

    def describe(self) -> str:
        """Human-readable controller summary."""
        lines = [
            f"kernel states : {self.kernel_states} "
            f"({self.state_bits} state bits)",
            f"stages        : {self.n_stages}"
            + (" (pipelined)" if self.pipelined else " (sequential)"),
        ]
        if self.exit_position is not None:
            stage, phase = self.exit_position
            lines.append(f"exit resolves : stage {stage + 1}, "
                         f"kernel state {phase + 1}")
        for stage, phase in self.stall_positions:
            lines.append(f"stall point   : stage {stage + 1}, "
                         f"kernel state {phase + 1}")
        return "\n".join(lines)


def build_fsm(schedule: Schedule,
              folded: Optional[FoldedPipeline] = None) -> FSMSpec:
    """Derive the FSM specification for a schedule."""
    pipelined = schedule.pipeline is not None
    if pipelined and folded is None:
        raise ValueError("build_fsm: pipelined schedules need the fold")
    kernel_states = folded.ii if folded is not None and pipelined \
        else schedule.latency
    exit_position: Optional[Tuple[int, int]] = None
    stall_positions: List[Tuple[int, int]] = []
    if folded is not None and pipelined:
        exit_position = folded.exit_position
        stall_positions = list(folded.stall_positions)
    elif schedule.region.exit_op_uid is not None:
        bound = schedule.bindings.get(schedule.region.exit_op_uid)
        if bound is not None:
            exit_position = (0, bound.state)
    return FSMSpec(
        kernel_states=kernel_states,
        state_bits=max(1, math.ceil(math.log2(max(kernel_states, 2)))),
        n_stages=schedule.n_stages,
        pipelined=pipelined,
        exit_position=exit_position,
        stall_positions=stall_positions,
    )
