"""Verilog testbench generation.

Produces a self-checking testbench for a generated module: drives the
input ports with the same stream the simulators consumed, starts the
FSM, and compares committed port writes against expected values computed
by the reference interpreter.  Downstream users with a Verilog simulator
get a ready-made regression; in this repository the testbench text
itself is structurally validated by the test-suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.schedule import Schedule
from repro.rtl.verilog import _ident
from repro.sim.reference import SimResult


def generate_testbench(
    schedule: Schedule,
    inputs: Dict[str, List[int]],
    expected: SimResult,
    module_name: Optional[str] = None,
    clock_ps: Optional[float] = None,
) -> str:
    """Render a self-checking testbench for the schedule's module."""
    region = schedule.region
    module = _ident(module_name or region.name)
    period = clock_ps if clock_ps is not None else schedule.clock_ps
    half = max(int(period) // 2, 1)
    n_samples = max((len(v) for v in inputs.values()), default=0)
    run_cycles = (expected.iterations + 2) * schedule.ii_effective \
        + schedule.latency + 8

    lines: List[str] = [
        f"// Self-checking testbench for {module}",
        "`timescale 1ps/1ps",
        f"module {module}_tb;",
        "    reg clk = 0;",
        "    reg rst = 1;",
        "    reg start = 0;",
        f"    always #{half} clk = ~clk;",
    ]
    for port in region.input_ports:
        width = max(op.width for op in region.reads if op.payload == port)
        lines.append(f"    reg signed [{width - 1}:0] {_ident(port)};")
    for port in region.output_ports:
        width = max(op.width for op in region.writes if op.payload == port)
        lines.append(f"    wire signed [{width - 1}:0] {_ident(port)};")
    lines.append("    wire done;")

    # input sample memories
    for port, stream in sorted(inputs.items()):
        width = max((op.width for op in region.reads
                     if op.payload == port), default=32)
        lines.append(f"    reg signed [{width - 1}:0] "
                     f"{_ident(port)}_mem [0:{max(len(stream) - 1, 0)}];")
    lines.append("    integer sample = 0;")
    lines.append("    integer errors = 0;")

    ports = ["clk", "rst", "start"]
    ports += [_ident(p) for p in region.input_ports]
    ports += [_ident(p) for p in region.output_ports]
    ports.append("done")
    wiring = ", ".join(f".{p}({p})" for p in ports)
    lines.append(f"    {module} dut ({wiring});")

    lines.append("    initial begin")
    for port, stream in sorted(inputs.items()):
        for i, value in enumerate(stream):
            literal = f"-{abs(value)}" if value < 0 else str(value)
            lines.append(f"        {_ident(port)}_mem[{i}] = {literal};")
    lines += [
        "        repeat (2) @(posedge clk);",
        "        rst = 0;",
        "        start = 1;",
        f"        repeat ({run_cycles}) @(posedge clk);",
        "        if (errors == 0) $display(\"TB PASS\");",
        "        else $display(\"TB FAIL: %0d errors\", errors);",
        "        $finish;",
        "    end",
    ]

    # feed one sample per initiation interval
    ii = schedule.ii_effective
    lines.append("    always @(posedge clk) begin")
    lines.append("        if (!rst) begin")
    for port in sorted(inputs):
        mem = f"{_ident(port)}_mem"
        limit = max(len(inputs[port]) - 1, 0)
        lines.append(f"            {_ident(port)} <= "
                     f"{mem}[(sample > {limit}) ? {limit} : sample];")
    lines.append(f"            sample <= sample + 1;")
    lines.append("        end")
    lines.append("    end")

    # expected output checks: sampled when each value is committed
    for port in region.output_ports:
        values = expected.output(port)
        if not values:
            continue
        mem = f"exp_{_ident(port)}"
        width = max(op.width for op in region.writes if op.payload == port)
        lines.append(f"    reg signed [{width - 1}:0] "
                     f"{mem} [0:{len(values) - 1}];")
        lines.append(f"    integer {mem}_idx = 0;")
        lines.append("    initial begin")
        for i, value in enumerate(values):
            literal = f"-{abs(value)}" if value < 0 else str(value)
            lines.append(f"        {mem}[{i}] = {literal};")
        lines.append("    end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
