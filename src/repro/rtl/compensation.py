"""Post-synthesis slack compensation by resource upsizing.

The paper's Table 4 experiment disables the timing-driven SCC move and
measures how much *area* downstream logic synthesis must spend to buy the
resulting negative slack back.  This module is that downstream step: it
re-times the bound netlist (through the unified timing engine's
whole-netlist recomputation -- regrading changes delays under fixed
bindings), walks the critical path of every failing endpoint and
upsizes the dominant resource to the next speed grade until timing
closes (or the grade ladder is exhausted), reporting the area penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.schedule import Schedule
from repro.timing.retime import retime
from repro.timing.sta import trace_critical_path, verify_timing


@dataclass
class CompensationResult:
    """Outcome of the sizing loop."""

    area_before: float
    area_after: float
    wns_before_ps: float
    wns_after_ps: float
    upsizings: List[str]
    closed: bool

    @property
    def area_penalty_pct(self) -> float:
        """Percent area increase spent on closing timing (Table 4)."""
        if self.area_before <= 0:
            return 0.0
        return 100.0 * (self.area_after - self.area_before) / self.area_before


def compensate_slack(schedule: Schedule,
                     max_upsizings: int = 200) -> CompensationResult:
    """Upsize resources until the schedule meets timing.

    Mutates the schedule's resource pool (grades only -- the binding
    structure is untouched, exactly like logic synthesis working on a
    fixed RTL netlist).
    """
    library = schedule.library
    netlist = schedule.netlist
    retime(netlist)
    report = verify_timing(netlist)
    area_before = schedule.area
    wns_before = report.wns_ps
    upsizings: List[str] = []

    for _round in range(max_upsizings):
        if report.met:
            break
        end_uid = report.failing_ops()[0]
        path = trace_critical_path(netlist, end_uid)
        # pick the largest upgradable delay contributor on the path
        candidates = []
        for point in path:
            for _uid, bound in netlist.bindings.items():
                if bound.op.name != point.op_name or bound.inst is None:
                    continue
                ladder = library.upsizing_ladder(bound.inst.rtype)
                if len(ladder) > 1:
                    candidates.append((bound.inst.rtype.delay_ps, bound.inst))
                break
        if not candidates:
            break  # ladder exhausted: residual violation remains
        candidates.sort(key=lambda c: (-c[0], c[1].name))
        inst = candidates[0][1]
        next_type = library.upsizing_ladder(inst.rtype)[1]
        upsizings.append(f"{inst.name}: {inst.rtype.grade} -> {next_type.grade}")
        schedule.pool.regrade(inst, next_type)
        retime(netlist)
        report = verify_timing(netlist)

    return CompensationResult(
        area_before=area_before,
        area_after=schedule.area,
        wns_before_ps=wns_before,
        wns_after_ps=report.wns_ps,
        upsizings=upsizings,
        closed=report.met,
    )
