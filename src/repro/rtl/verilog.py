"""Verilog-2001 RTL emission.

Produces the paper's "output generation" artifact: a synthesizable-style
module with the kernel-state FSM, the stage-valid shift register, shared
resource units with their input-select muxes, chained datapath wires and
predicated register/port updates.  The emphasis is structural fidelity --
one unit per resource instance with state-driven operand selection, not
one operator per operation -- matching what the binder decided.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import math

from repro.cdfg.memory import static_bank
from repro.cdfg.ops import Operation, OpKind
from repro.core.folding import FoldedPipeline
from repro.core.registers import RegisterFile
from repro.core.schedule import Schedule
from repro.rtl.fsm import FSMSpec, build_fsm

_VERILOG_OPS = {
    OpKind.ADD: "+", OpKind.SUB: "-", OpKind.MUL: "*", OpKind.DIV: "/",
    OpKind.MOD: "%", OpKind.SHL: "<<", OpKind.SHR: ">>",
    OpKind.AND: "&", OpKind.OR: "|", OpKind.XOR: "^",
    OpKind.LT: "<", OpKind.GT: ">", OpKind.LE: "<=", OpKind.GE: ">=",
    OpKind.EQ: "==", OpKind.NEQ: "!=",
}


def _ident(name: str) -> str:
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not out or out[0].isdigit():
        out = "v_" + out
    return out


class VerilogWriter:
    """Builds the RTL text for one schedule."""

    def __init__(self, schedule: Schedule,
                 folded: Optional[FoldedPipeline] = None,
                 module_name: Optional[str] = None) -> None:
        self.schedule = schedule
        self.folded = folded
        self.dfg = schedule.region.dfg
        self.module = _ident(module_name or schedule.region.name)
        self.regs: RegisterFile = schedule.register_file()
        self.fsm: FSMSpec = build_fsm(schedule, folded)
        self._reg_of_value: Dict[int, str] = {}
        for reg in self.regs.registers:
            for uid in reg.values:
                self._reg_of_value[uid] = _ident(reg.name)

    # ------------------------------------------------------------------
    # expression helpers
    # ------------------------------------------------------------------
    def _wire(self, op: Operation) -> str:
        return "w_" + _ident(op.name)

    def _operand_expr(self, op: Operation, port: int) -> str:
        """RTL source feeding one input: chained wire, register or port."""
        edge = self.dfg.in_edge(op.uid, port)
        if edge is None:
            return "'0"
        root = self.schedule.netlist.resolve_source(edge.src)
        producer = self.dfg.op(root)
        if producer.kind is OpKind.CONST:
            value = producer.payload
            if value < 0:
                return f"-{producer.width}'sd{abs(value)}"
            return f"{producer.width}'sd{value}"
        my_bound = self.schedule.bindings.get(op.uid)
        p_bound = self.schedule.bindings.get(root)
        if edge.distance >= 1:
            return self._reg_of_value.get(root, self._wire(producer))
        if producer.kind is OpKind.READ:
            if (my_bound is not None and p_bound is not None
                    and my_bound.state == p_bound.state):
                return _ident(str(producer.payload))  # direct port wire
            return self._reg_of_value.get(root, _ident(str(producer.payload)))
        if (my_bound is not None and p_bound is not None
                and my_bound.state == p_bound.state and p_bound.cycles == 1):
            return self._wire(producer)  # combinational chain
        return self._reg_of_value.get(root, self._wire(producer))

    def _phase_select(self, srcs: List[Tuple[int, str, str]]) -> str:
        """State-steered select chain for a shared port.

        ``srcs`` holds ``(phase, guard, expr)`` per user of the port.
        Entries that share a kernel phase (predicate-disjoint operations
        may legally share an instance on one state) are distinguished by
        their guard -- the operation's predicate expression.
        """
        if len({expr for _p, _g, expr in srcs}) == 1:
            return srcs[0][2]
        phase_counts: Dict[int, int] = {}
        for phase, _guard, _expr in srcs:
            phase_counts[phase] = phase_counts.get(phase, 0) + 1
        sel = srcs[-1][2]
        for phase, guard, expr in reversed(srcs[:-1]):
            cond = f"kstate == {self.fsm.state_bits}'d{phase}"
            if phase_counts[phase] > 1 and guard != "1'b1":
                cond += f" && ({guard})"
            sel = f"({cond}) ? {expr} : {sel}"
        return sel

    # ------------------------------------------------------------------
    # memory helpers
    # ------------------------------------------------------------------
    def _mem_bank_name(self, mem: str, bank: int) -> str:
        return f"mem_{_ident(mem)}_b{bank}"

    def _mem_addr_expr(self, op: Operation) -> str:
        """The access's word address: dynamic operand or affine counter."""
        if self.schedule.region.access_is_dynamic(op):
            return self._operand_expr(op, 0)
        stage = self.schedule.bindings[op.uid].state \
            // self.schedule.ii_effective
        iter_expr = f"(iter_count - {stage})" if stage else "iter_count"
        if op.io_stride == 0:
            return str(op.io_offset)
        expr = iter_expr if op.io_stride == 1 \
            else f"{iter_expr} * {op.io_stride}"
        return f"({expr} + {op.io_offset})" if op.io_offset else expr

    def _store_data_expr(self, op: Operation) -> str:
        """RTL source of a store's write data (port 1 dynamic, 0 affine)."""
        dynamic = self.schedule.region.access_is_dynamic(op)
        return self._operand_expr(op, 1 if dynamic else 0)

    def _memory_datapath(self) -> List[str]:
        """RAM bank read ports: per-bank/port address muxes, load wires.

        Every bank is a register array with its own address bus per
        port; reads are asynchronous (data valid within the access
        state, matching the timing model).  An access whose bank is not
        static appears on its port of *every* bank and selects the read
        data by ``address % banks``.
        """
        lines: List[str] = []
        region = self.schedule.region
        for name, cfg in sorted(self.schedule.memories.items()):
            aw = max(1, math.ceil(math.log2(max(cfg.decl.depth, 2))))
            #: (bank, port) -> [(phase, address expr)]
            by_bank_port: Dict[Tuple[int, int], List[Tuple[int, str]]] = {}
            loads: List[Operation] = []
            for op in region.memory_accesses(name):
                bound = self.schedule.bindings.get(op.uid)
                if bound is None or op.kind is not OpKind.LOAD:
                    continue
                loads.append(op)
                phase = bound.state % self.schedule.ii_effective
                addr = self._mem_addr_expr(op)
                sbank = static_bank(op, cfg.banks,
                                    region.access_is_dynamic(op))
                banks = [sbank] if sbank is not None else range(cfg.banks)
                for bank in banks:
                    by_bank_port.setdefault(
                        (bank, bound.inst.port), []).append(
                            (phase, self._predicate_expr(op), addr))
            for (bank, port), srcs in sorted(by_bank_port.items()):
                # the RAM port's address mux the timing engine charged
                sel = self._phase_select(srcs)
                addr = f"{_ident(name)}_b{bank}p{port}_addr"
                local = f"({addr}) / {cfg.banks}" if cfg.banks > 1 else addr
                lines.append(f"    wire [{aw - 1}:0] {addr} = {sel};")
                lines.append(
                    f"    wire signed [{cfg.decl.width - 1}:0] "
                    f"{_ident(name)}_b{bank}p{port}_q = "
                    f"{self._mem_bank_name(name, bank)}[{local}];")
            for op in loads:
                bound = self.schedule.bindings[op.uid]
                port = bound.inst.port
                sbank = static_bank(op, cfg.banks,
                                    region.access_is_dynamic(op))
                if sbank is not None:
                    src = f"{_ident(name)}_b{sbank}p{port}_q"
                else:
                    # the bank varies per iteration: select by modulo
                    addr = self._mem_addr_expr(op)
                    src = f"{_ident(name)}_b{cfg.banks - 1}p{port}_q"
                    for bank in range(cfg.banks - 1):
                        q = f"{_ident(name)}_b{bank}p{port}_q"
                        src = (f"(({addr}) % {cfg.banks} == {bank}) ? "
                               f"{q} : {src}")
                lines.append(
                    f"    wire signed [{op.width - 1}:0] "
                    f"{self._wire(op)} = {src};")
        return lines

    def _memory_writes(self) -> List[str]:
        """Store commits inside the clocked block (RAM write ports)."""
        lines: List[str] = []
        region = self.schedule.region
        for name, cfg in sorted(self.schedule.memories.items()):
            for op in region.memory_accesses(name):
                bound = self.schedule.bindings.get(op.uid)
                if bound is None or op.kind is not OpKind.STORE:
                    continue
                cond = self._stage_phase(bound.end_state)
                pred = self._predicate_expr(op)
                if pred != "1'b1":
                    cond += f" && ({pred})"
                addr = self._mem_addr_expr(op)
                data = self._store_data_expr(op)
                dynamic = region.access_is_dynamic(op)
                banks = range(cfg.banks) if dynamic or cfg.banks > 1 \
                    else (0,)
                for bank in banks:
                    bank_cond = cond
                    local = addr
                    if cfg.banks > 1:
                        bank_cond += f" && (({addr}) % {cfg.banks} == {bank})"
                        local = f"({addr}) / {cfg.banks}"
                    lines.append(
                        f"                if ({bank_cond}) "
                        f"{self._mem_bank_name(name, bank)}[{local}] "
                        f"<= {data};")
        return lines

    def _memory_declarations(self) -> List[str]:
        """Bank arrays, initial contents and the iteration counter."""
        lines: List[str] = []
        if not self.schedule.memories:
            return lines
        for name, cfg in sorted(self.schedule.memories.items()):
            depth = cfg.decl.bank_depth
            contents = cfg.decl.contents()
            for bank in range(cfg.banks):
                bname = self._mem_bank_name(name, bank)
                lines.append(
                    f"    reg signed [{cfg.decl.width - 1}:0] "
                    f"{bname} [0:{depth - 1}];")
            lines.append("    initial begin")
            for word, value in enumerate(contents):
                bank, local = word % cfg.banks, word // cfg.banks
                lines.append(
                    f"        {self._mem_bank_name(name, bank)}[{local}]"
                    f" = {value};")
            lines.append("    end")
        lines.append("    reg signed [31:0] iter_count;")
        return lines

    def _stream_datapath(self) -> List[str]:
        """FIFO handshake logic: pop data taps, ``stall_req``, enables.

        The stage self-stalls: ``stall_req`` is high whenever a pop
        executing this cycle finds its FIFO empty or a push finds its
        FIFO full; the sequential block freezes on it (whole-stage
        stall, the composed machine model), and the read/write enables
        only fire on un-stalled cycles.
        """
        region = self.schedule.region
        if not (region.input_channels or region.output_channels):
            return []
        lines: List[str] = []
        stall_terms: List[str] = []
        assigns: List[str] = []
        for chan in region.input_channels:
            name = _ident(chan)
            exec_terms: List[str] = []
            for op in region.channel_accesses(chan, OpKind.POP):
                bound = self.schedule.bindings.get(op.uid)
                if bound is None:
                    continue
                cond = self._stage_phase(bound.state)
                pred = self._predicate_expr(op)
                if pred != "1'b1":
                    cond += f" && ({pred})"
                exec_terms.append(f"({cond})")
                lines.append(
                    f"    wire signed [{op.width - 1}:0] "
                    f"{self._wire(op)} = {name}_dout;")
            if not exec_terms:
                continue
            any_exec = " || ".join(exec_terms)
            stall_terms.append(f"(({any_exec}) && {name}_empty)")
            assigns.append(f"    assign {name}_rd_en = running && "
                           f"!stall_req && ({any_exec});")
        for chan in region.output_channels:
            name = _ident(chan)
            exec_terms = []
            srcs: List[Tuple[int, str, str]] = []
            for op in region.channel_accesses(chan, OpKind.PUSH):
                bound = self.schedule.bindings.get(op.uid)
                if bound is None:
                    continue
                cond = self._stage_phase(bound.state)
                pred = self._predicate_expr(op)
                if pred != "1'b1":
                    cond += f" && ({pred})"
                exec_terms.append(f"({cond})")
                phase = bound.state % self.schedule.ii_effective
                srcs.append((phase, pred, self._operand_expr(op, 0)))
            if not exec_terms:
                continue
            any_exec = " || ".join(exec_terms)
            stall_terms.append(f"(({any_exec}) && {name}_full)")
            assigns.append(
                f"    assign {name}_din = {self._phase_select(srcs)};")
            assigns.append(f"    assign {name}_wr_en = running && "
                           f"!stall_req && ({any_exec});")
        lines.append("    wire stall_req = "
                     + (" || ".join(stall_terms) if stall_terms
                        else "1'b0") + ";")
        lines += assigns
        return lines

    @property
    def _has_streams(self) -> bool:
        region = self.schedule.region
        return bool(region.input_channels or region.output_channels)

    def _stage_phase(self, state: int) -> str:
        """Activation condition of a control step."""
        ii = self.schedule.ii_effective
        stage, phase = divmod(state, ii)
        cond = f"kstate == {self.fsm.state_bits}'d{phase}"
        if self.fsm.pipelined:
            cond += f" && stage_valid[{stage}]"
        return cond

    def _predicate_expr(self, op: Operation) -> str:
        terms: List[str] = []
        for cond_uid, polarity in sorted(op.predicate.literals):
            cond_op = self.dfg.op(cond_uid)
            cb = self.schedule.bindings.get(cond_uid)
            ob = self.schedule.bindings.get(op.uid)
            if cb is not None and ob is not None and cb.state == ob.state:
                src = self._wire(cond_op)
            else:
                src = self._reg_of_value.get(cond_uid, self._wire(cond_op))
            terms.append(src if polarity else f"!{src}")
        return " && ".join(terms) if terms else "1'b1"

    # ------------------------------------------------------------------
    # sections
    # ------------------------------------------------------------------
    def _ports(self) -> List[str]:
        region = self.schedule.region
        lines = ["    input  wire clk,", "    input  wire rst,",
                 "    input  wire start,"]
        for port in region.input_ports:
            width = max(op.width for op in region.reads
                        if op.payload == port)
            lines.append(
                f"    input  wire signed [{width - 1}:0] {_ident(port)},")
        # FIFO handshake ports per channel: the stage is the FIFO's
        # consumer (dout/empty/rd_en) or producer (din/full/wr_en)
        for chan in region.input_channels:
            width = max(op.width for op in region.pops
                        if op.payload == chan)
            name = _ident(chan)
            lines.append(
                f"    input  wire signed [{width - 1}:0] {name}_dout,")
            lines.append(f"    input  wire {name}_empty,")
            lines.append(f"    output wire {name}_rd_en,")
        for chan in region.output_channels:
            width = max(op.width for op in region.pushes
                        if op.payload == chan)
            name = _ident(chan)
            lines.append(
                f"    output wire signed [{width - 1}:0] {name}_din,")
            lines.append(f"    output wire {name}_wr_en,")
            lines.append(f"    input  wire {name}_full,")
        for port in region.output_ports:
            width = max(op.width for op in region.writes
                        if op.payload == port)
            lines.append(
                f"    output reg  signed [{width - 1}:0] {_ident(port)},")
        lines.append("    output wire done")
        return lines

    def _declarations(self) -> List[str]:
        lines = [f"    reg [{self.fsm.state_bits - 1}:0] kstate;",
                 "    reg running;", "    reg first_iter;"]
        if self.fsm.pipelined:
            lines.append(
                f"    reg [{self.fsm.n_stages - 1}:0] stage_valid;")
            lines.append("    reg issue_enable;")
        for reg in self.regs.registers:
            name = _ident(reg.name)
            for copy in range(reg.copies):
                suffix = f"_c{copy}" if reg.copies > 1 else ""
                lines.append(
                    f"    reg signed [{reg.width - 1}:0] {name}{suffix};")
        lines += self._memory_declarations()
        return lines

    def _datapath(self) -> List[str]:
        lines: List[str] = []
        emitted: Set[int] = set()
        # one unit per shared resource instance, operand muxes by state
        for inst in self.schedule.pool.instances:
            ops = [o for o in inst.ops_bound()
                   if o.uid in self.schedule.bindings]
            if not ops:
                continue
            unit = _ident(inst.name)
            width = inst.rtype.width
            shared = ", ".join(
                f"{o.name}@s{self.schedule.bindings[o.uid].state + 1}"
                for o in ops)
            lines.append(f"    // {inst.rtype.name} unit shared by: {shared}")
            n_ports = max(len(self.dfg.in_edges(o.uid)) for o in ops)
            for port in range(n_ports):
                srcs = []
                for o in ops:
                    state = self.schedule.bindings[o.uid].state
                    phase = state % self.schedule.ii_effective
                    expr = self._operand_expr(o, port)
                    srcs.append((phase, self._predicate_expr(o), expr))
                sel = self._phase_select(srcs)
                lines.append(
                    f"    wire signed [{width - 1}:0] {unit}_i{port} = {sel};")
            symbol = _VERILOG_OPS.get(ops[0].kind)
            if symbol is not None and n_ports >= 2:
                expr = f"{unit}_i0 {symbol} {unit}_i1"
            elif symbol is not None:
                expr = f"{symbol}{unit}_i0"
            else:
                expr = f"{unit}_i0"  # black-box / IP placeholder
            lines.append(
                f"    wire signed [{width - 1}:0] {unit}_y = {expr};")
            for o in ops:
                lines.append(
                    f"    wire signed [{o.width - 1}:0] {self._wire(o)} = "
                    f"{unit}_y[{o.width - 1}:0];")
                emitted.add(o.uid)
        lines += self._memory_datapath()
        lines += self._stream_datapath()
        # dedicated logic: muxes, loop muxes, unshared conditions
        for uid, bound in sorted(self.schedule.bindings.items()):
            op = bound.op
            if uid in emitted or op.is_free or op.is_io \
                    or op.is_memory or op.kind is OpKind.STALL:
                continue
            if op.kind is OpKind.MUX:
                sel = self._operand_expr(op, 0)
                a = self._operand_expr(op, 1)
                b = self._operand_expr(op, 2)
                lines.append(
                    f"    wire signed [{op.width - 1}:0] {self._wire(op)} = "
                    f"{sel} ? {a} : {b};")
            elif op.kind is OpKind.LOOPMUX:
                init = self._operand_expr(op, 0)
                carried = self._reg_of_value.get(
                    self.schedule.netlist.resolve_source(
                        self.dfg.in_edge(uid, 1).src),
                    init)
                lines.append(
                    f"    wire signed [{op.width - 1}:0] {self._wire(op)} = "
                    f"first_iter ? {init} : {carried};")
            else:
                symbol = _VERILOG_OPS.get(op.kind)
                srcs = [self._operand_expr(op, e.port)
                        for e in self.dfg.in_edges(uid)]
                if symbol is not None and len(srcs) >= 2:
                    expr = f"{srcs[0]} {symbol} {srcs[1]}"
                elif symbol is not None and srcs:
                    expr = f"{symbol}{srcs[0]}"
                else:
                    expr = srcs[0] if srcs else "'0"
                lines.append(
                    f"    wire signed [{op.width - 1}:0] {self._wire(op)} = "
                    f"{expr};")
        return lines

    def _sequential(self) -> List[str]:
        lines = ["    always @(posedge clk) begin",
                 "        if (rst) begin",
                 f"            kstate <= {self.fsm.state_bits}'d0;",
                 "            running <= 1'b0;",
                 "            first_iter <= 1'b1;"]
        if self.schedule.memories:
            lines.append("            iter_count <= 32'd0;")
        if self.fsm.pipelined:
            lines.append(f"            stage_valid <= "
                         f"{self.fsm.n_stages}'d0;")
            lines.append("            issue_enable <= 1'b1;")
        # a stage with FIFO channels freezes wholesale while any of its
        # pops/pushes would block (back-pressure as stall states)
        gate = "running && !stall_req" if self._has_streams else "running"
        lines += ["        end else begin",
                  "            if (start) running <= 1'b1;",
                  f"            if ({gate}) begin"]
        last = self.fsm.kernel_states - 1
        lines.append(f"                kstate <= (kstate == "
                     f"{self.fsm.state_bits}'d{last}) ? "
                     f"{self.fsm.state_bits}'d0 : kstate + 1'b1;")
        if self.fsm.pipelined:
            lines.append(f"                if (kstate == "
                         f"{self.fsm.state_bits}'d{last})")
            lines.append("                    stage_valid <= "
                         "{stage_valid[%d:0], issue_enable};"
                         % max(self.fsm.n_stages - 2, 0))
        # register updates, grouped by (stage, phase)
        for reg in self.regs.registers:
            name = _ident(reg.name)
            for uid in reg.values:
                bound = self.schedule.bindings.get(uid)
                if bound is None:
                    continue
                op = bound.op
                cond = self._stage_phase(bound.end_state)
                pred = self._predicate_expr(op)
                if pred != "1'b1":
                    cond += f" && ({pred})"
                if op.kind is OpKind.WRITE:
                    src = self._operand_expr(op, 0)
                    lines.append(f"                if ({cond}) "
                                 f"{_ident(str(op.payload))} <= {src};")
                else:
                    src = self._wire(op) if not op.kind is OpKind.READ \
                        else _ident(str(op.payload))
                    target = name + ("_c0" if reg.copies > 1 else "")
                    lines.append(f"                if ({cond}) "
                                 f"{target} <= {src};")
            for copy in range(1, reg.copies):
                lines.append(
                    f"                {name}_c{copy} <= {name}_c{copy - 1};")
        exit_uid = self.schedule.region.exit_op_uid
        if exit_uid is not None and exit_uid in self.schedule.bindings:
            bound = self.schedule.bindings[exit_uid]
            cond = self._stage_phase(bound.state)
            flag = ("issue_enable <= 1'b0;" if self.fsm.pipelined
                    else "running <= 1'b0;")
            lines.append(f"                if ({cond} && "
                         f"!{self._wire(bound.op)}) {flag}")
        lines += self._memory_writes()
        if self.schedule.memories:
            # one source iteration enters (or completes) per kernel wrap;
            # affine addresses derive from this counter per stage
            advance = f"kstate == {self.fsm.state_bits}'d{last}"
            if self.fsm.pipelined:
                advance += " && issue_enable"
            lines.append(f"                if ({advance}) "
                         "iter_count <= iter_count + 32'd1;")
        lines.append(f"                if (kstate == "
                     f"{self.fsm.state_bits}'d{last}) first_iter <= 1'b0;")
        lines += ["            end", "        end", "    end"]
        return lines

    # ------------------------------------------------------------------
    def emit(self) -> str:
        """Render the full module text."""
        header = [
            f"// Generated by repro-hls: {self.schedule.region.name}",
            f"// clock {self.schedule.clock_ps:.0f} ps, latency "
            f"{self.schedule.latency}, II {self.schedule.ii_effective}, "
            f"stages {self.fsm.n_stages}",
            f"module {self.module} (",
        ]
        body = self._ports() + [");"]
        body += self._declarations()
        body.append("")
        body += self._datapath()
        body.append("")
        body += self._sequential()
        if self.fsm.pipelined:
            body.append("    assign done = !issue_enable && "
                        "stage_valid == 0;")
        else:
            body.append("    assign done = !running;")
        body.append("endmodule")
        return "\n".join(header + body) + "\n"


def generate_verilog(schedule: Schedule,
                     folded: Optional[FoldedPipeline] = None,
                     module_name: Optional[str] = None) -> str:
    """Emit Verilog RTL for a schedule (folded kernel when pipelined)."""
    return VerilogWriter(schedule, folded, module_name).emit()


def lint_verilog(text: str) -> List[str]:
    """Cheap structural lint used by the test-suite.

    Checks module/endmodule pairing, begin/end balance and that every
    wire/reg identifier used is declared somewhere.
    """
    problems: List[str] = []
    if text.count("module ") - text.count("endmodule") != 0:
        problems.append("module/endmodule imbalance")
    begins = len([1 for token in text.split() if token == "begin"])
    ends = len([1 for token in text.split() if token in ("end", "end;")])
    if begins != ends:
        problems.append(f"begin/end imbalance: {begins} vs {ends}")
    import re
    declared = set(re.findall(
        r"(?:wire|reg|input\s+wire|output\s+reg)\s+"
        r"(?:signed\s+)?(?:\[[^\]]+\]\s*)?(\w+)", text))
    declared |= set(re.findall(r"module\s+(\w+)", text))
    keywords = {
        "module", "endmodule", "input", "output", "wire", "reg", "signed",
        "always", "posedge", "negedge", "if", "else", "begin", "end",
        "assign", "localparam", "clk", "rst", "d0", "b0", "b1", "sd",
    }
    used = set(re.findall(r"\b([a-zA-Z_]\w*)\b", text))
    for name in sorted(used - declared - keywords):
        if re.fullmatch(r"(s?d\d+|b[01]+|c\d+|i\d+)", name):
            continue
        if name.startswith(("w_", "r_")) or name in (
                "kstate", "stage_valid", "running", "first_iter",
                "issue_enable", "start", "done"):
            if name not in declared and not name.startswith("w_"):
                problems.append(f"undeclared identifier: {name}")
    return problems
