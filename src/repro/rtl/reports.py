"""Text reporting helpers shared by examples, benchmarks and EXPERIMENTS.md.

Everything renders to plain aligned text so benchmark harnesses can print
the same rows the paper's tables report.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.schedule import Schedule
from repro.tech.power import estimate_power


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Align a list of rows under headers (markdown-ish plain text)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))
    lines = [fmt(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def schedule_report(schedule: Schedule) -> str:
    """Full implementation report: schedule grid, area, timing, power."""
    area = schedule.area_report()
    timing = schedule.timing_report()
    power = estimate_power(schedule)
    lines = [
        f"=== {schedule.region.name} @ {schedule.clock_ps:.0f} ps ===",
        f"latency {schedule.latency}, II {schedule.ii_effective}, "
        f"stages {schedule.n_stages}, passes {schedule.passes}",
        "",
        schedule.table(),
        "",
        format_table(("component", "area"),
                     [(n, f"{v:.1f}") for n, v in area.rows()]),
        "",
        f"WNS: {timing.wns_ps:.0f} ps"
        + ("" if timing.met else "  (VIOLATED)"),
        format_table(("power", "mW"),
                     [(n, f"{v:.3f}") for n, v in power.rows()]),
    ]
    if schedule.actions_taken:
        lines.append("")
        lines.append("relaxation history: " + "; ".join(schedule.actions_taken))
    return "\n".join(lines)


def pareto_header() -> List[str]:
    """Column names used by the Figure 10/11 sweep printers."""
    return ["microarch", "clock_ps", "II", "delay_ps", "area", "power_mW"]
