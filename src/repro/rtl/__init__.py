"""Output generation substrate: FSM derivation, Verilog emission, slack
compensation (the logic-synthesis stand-in) and text reports."""

from repro.rtl.compensation import CompensationResult, compensate_slack
from repro.rtl.fsm import FSMSpec, build_fsm
from repro.rtl.reports import format_table, schedule_report
from repro.rtl.verilog import VerilogWriter, generate_verilog, lint_verilog

__all__ = [
    "CompensationResult",
    "FSMSpec",
    "VerilogWriter",
    "build_fsm",
    "compensate_slack",
    "format_table",
    "generate_verilog",
    "lint_verilog",
    "schedule_report",
]
