"""Declarative tuning goals: constraints plus one objective.

A :class:`Goal` is the user-facing specification of a performance-
constrained synthesis request -- the paper's premise turned into a
datatype: "delay <= X ps, minimize area", "area <= A, minimize delay",
optionally with a power budget riding along.  Every metric is
minimized; constraints are upper bounds.  Goals validate eagerly so a
typo'd metric or a negative budget fails at construction, not three
strategies deep into a search.

The comparison key (:meth:`Goal.key`) is deliberately lexicographic
over *all* metrics (objective first): two candidates with equal
objective scores are ordered by the remaining axes, which is what lets
the search strategies guarantee their winner is never dominated by the
exhaustive sweep's Pareto front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.explore.pareto import DesignPoint

#: metrics a goal may bound or optimize; all are minimized.
METRICS: Tuple[str, ...] = ("delay_ps", "area", "power_mw")

#: CLI-friendly spellings of the metric names.
METRIC_ALIASES: Dict[str, str] = {
    "delay": "delay_ps",
    "delay_ps": "delay_ps",
    "area": "area",
    "power": "power_mw",
    "power_mw": "power_mw",
}

#: absolute slack when comparing float metrics against bounds.
TOLERANCE = 1e-9


class GoalError(ValueError):
    """A malformed goal specification (unknown metric, bad bound...)."""


def canonical_metric(name: str) -> str:
    """Resolve a metric spelling (``delay``/``power``/...) to its
    canonical :data:`METRICS` name; raises :class:`GoalError`."""
    try:
        return METRIC_ALIASES[name]
    except KeyError:
        raise GoalError(f"unknown metric {name!r}; "
                        f"choose from {sorted(METRIC_ALIASES)}") from None


@dataclass(frozen=True)
class Constraint:
    """An upper bound on one metric: ``metric <= bound``."""

    metric: str
    bound: float

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise GoalError(f"unknown constraint metric {self.metric!r}; "
                            f"choose from {METRICS}")
        if not isinstance(self.bound, (int, float)) \
                or not self.bound == self.bound:  # NaN check
            raise GoalError(f"{self.metric}: bound must be a number, "
                            f"got {self.bound!r}")
        if self.bound <= 0:
            raise GoalError(f"{self.metric}: bound must be positive, "
                            f"got {self.bound!r}")

    def satisfied_by(self, point: DesignPoint) -> bool:
        """Whether the point meets this bound (with float tolerance)."""
        return getattr(point, self.metric) <= self.bound + TOLERANCE

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``delay_ps <= 26000``."""
        return f"{self.metric} <= {self.bound:g}"


@dataclass(frozen=True)
class Objective:
    """The metric to minimize once every constraint is met."""

    metric: str = "area"

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise GoalError(f"unknown objective metric {self.metric!r}; "
                            f"choose from {METRICS}")

    def score(self, point: DesignPoint) -> float:
        """The objective value of a design point."""
        return float(getattr(point, self.metric))

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``minimize area``."""
        return f"minimize {self.metric}"


@dataclass(frozen=True)
class Goal:
    """One declarative tuning request: constraints + objective.

    Example::

        goal = Goal.build(objective="area", delay_ps=26000.0)
        assert goal.describe() == "minimize area s.t. delay_ps <= 26000"
    """

    objective: Objective = Objective("area")
    constraints: Tuple[Constraint, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for constraint in self.constraints:
            if constraint.metric in seen:
                raise GoalError(
                    f"duplicate constraint on {constraint.metric!r}")
            seen.add(constraint.metric)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, objective: str = "area",
              delay_ps: Optional[float] = None,
              max_area: Optional[float] = None,
              max_power_mw: Optional[float] = None) -> "Goal":
        """The common goal shapes, from plain keyword arguments."""
        constraints: List[Constraint] = []
        if delay_ps is not None:
            constraints.append(Constraint("delay_ps", float(delay_ps)))
        if max_area is not None:
            constraints.append(Constraint("area", float(max_area)))
        if max_power_mw is not None:
            constraints.append(Constraint("power_mw", float(max_power_mw)))
        return cls(Objective(canonical_metric(objective)),
                   tuple(constraints))

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def bound(self, metric: str) -> Optional[float]:
        """The constraint bound on ``metric``, or None if unconstrained."""
        for constraint in self.constraints:
            if constraint.metric == metric:
                return constraint.bound
        return None

    def satisfied(self, point: DesignPoint) -> bool:
        """Whether a point meets every constraint."""
        return all(c.satisfied_by(point) for c in self.constraints)

    def score(self, point: DesignPoint) -> float:
        """The objective value of a point."""
        return self.objective.score(point)

    def key(self, point: DesignPoint) -> Tuple[float, ...]:
        """Total comparison order: objective first, then the remaining
        metrics as deterministic tie-breakers (see module docstring)."""
        rest = [float(getattr(point, m)) for m in METRICS
                if m != self.objective.metric]
        return (self.score(point), *rest)

    def better(self, a: DesignPoint, b: DesignPoint) -> bool:
        """Whether ``a`` strictly precedes ``b`` under :meth:`key`."""
        return self.key(a) < self.key(b)

    def best(self, points: Iterable[DesignPoint]) -> Optional[DesignPoint]:
        """The satisfying point with the smallest key, or None."""
        candidates = [p for p in points if self.satisfied(p)]
        if not candidates:
            return None
        return min(candidates, key=self.key)

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line rendering of the whole goal."""
        head = self.objective.describe()
        if not self.constraints:
            return head
        return head + " s.t. " + \
            ", ".join(c.describe() for c in self.constraints)

    def to_json(self) -> Dict[str, object]:
        """JSON-friendly record of the goal."""
        return {
            "objective": self.objective.metric,
            "constraints": {c.metric: c.bound for c in self.constraints},
        }
