"""Tuning traces and reports: what was evaluated, what won, and why.

Every unique configuration a strategy evaluates becomes one
:class:`Evaluation` trace entry (repeat queries hit the in-process memo
and add nothing).  :class:`TuningReport` bundles the trace with the
winner, the Pareto front of everything evaluated, and the evaluation
accounting (fresh syntheses vs. persistent-store hits) that the
warm-start guarantees are asserted against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dse.goals import Goal
from repro.explore.microarch import InfeasiblePoint
from repro.explore.pareto import DesignPoint, pareto_front

#: trace-entry provenance values.
SOURCES = ("synth", "store")


@dataclass(frozen=True)
class Evaluation:
    """One evaluated configuration in strategy order."""

    microarch: str
    clock_ps: float
    #: "synth" = fresh synthesis, "store" = persistent-store hit.
    source: str
    point: Optional[DesignPoint] = None
    infeasible: Optional[InfeasiblePoint] = None

    @property
    def feasible(self) -> bool:
        """Whether the scheduler realized the configuration."""
        return self.point is not None

    def to_json(self) -> Dict[str, object]:
        """JSON-friendly trace entry."""
        out: Dict[str, object] = {
            "microarch": self.microarch,
            "clock_ps": self.clock_ps,
            "source": self.source,
        }
        if self.point is not None:
            out["point"] = self.point.to_json()
        if self.infeasible is not None:
            out["infeasible"] = self.infeasible.to_json()
        return out

    def describe(self) -> str:
        """One trace line for text reports."""
        head = f"{self.microarch} @ {self.clock_ps:.0f} ps [{self.source}]"
        if self.point is None:
            reason = self.infeasible.reason if self.infeasible else "?"
            return f"{head}  infeasible -- {reason}"
        p = self.point
        return (f"{head}  delay {p.delay_ps:.0f} ps, area {p.area:.1f}, "
                f"power {p.power_mw:.3f} mW")


@dataclass
class TuningReport:
    """Everything one :func:`repro.dse.tune` run produced."""

    goal: Goal
    strategy: str
    grid_size: int
    winner: Optional[DesignPoint]
    trace: List[Evaluation] = field(default_factory=list)
    fresh_evaluations: int = 0
    store_hits: int = 0
    elapsed_s: float = 0.0

    @property
    def evaluated(self) -> int:
        """Unique configurations evaluated (fresh + store hits)."""
        return len(self.trace)

    @property
    def satisfied(self) -> bool:
        """Whether a constraint-meeting winner was found."""
        return self.winner is not None

    @property
    def front(self) -> List[DesignPoint]:
        """Pareto front (delay, area) of every feasible evaluation."""
        feasible = [e.point for e in self.trace if e.point is not None]
        return pareto_front(feasible, x="delay_ps", y="area")

    def summary(self) -> Dict[str, object]:
        """JSON-friendly record of the whole tuning run."""
        return {
            "goal": self.goal.to_json(),
            "strategy": self.strategy,
            "grid_size": self.grid_size,
            "evaluated": self.evaluated,
            "fresh_evaluations": self.fresh_evaluations,
            "store_hits": self.store_hits,
            "elapsed_s": round(self.elapsed_s, 4),
            "satisfied": self.satisfied,
            "winner": self.winner.to_json() if self.winner else None,
            "front": [p.to_json() for p in self.front],
            "trace": [e.to_json() for e in self.trace],
        }

    def table(self) -> str:
        """Text report: goal, trace, accounting, winner."""
        lines = [f"goal      {self.goal.describe()}",
                 f"strategy  {self.strategy}  "
                 f"({self.evaluated}/{self.grid_size} grid points "
                 f"evaluated; {self.fresh_evaluations} fresh, "
                 f"{self.store_hits} from store)"]
        for entry in self.trace:
            lines.append(f"  {entry.describe()}")
        if self.winner is None:
            lines.append("winner    none -- no feasible point meets "
                         "the constraints")
        else:
            w = self.winner
            lines.append(f"winner    {w.label}: delay {w.delay_ps:.0f} ps,"
                         f" area {w.area:.1f}, power {w.power_mw:.3f} mW")
        return "\n".join(lines)
