"""Goal-directed search strategies over a design space.

Four strategies, all exact under the paper's cost model but with very
different evaluation budgets:

``exhaustive``
    Evaluate every grid point (the baseline every other strategy is
    measured against); batches through the parallel sweep executor.
``bisect``
    Per microarchitecture, binary-search the clock axis.  The delay
    bound is analytic (``II_effective * Tclk``), so the admissible
    clock range costs nothing; the feasibility/area frontier along the
    remaining range is monotone, so it binary-searches.  For
    area/power objectives the optimum of each microarch is the single
    most-relaxed admissible clock -- one evaluation decides the curve.
``greedy``
    Axis descent with monotonicity pruning: walk each
    microarchitecture's clock axis from the most promising end,
    pruning every candidate whose *predicted* delay cannot beat the
    incumbent and abandoning a curve on the first provably-worse step.
``halving``
    Successive halving across microarchitectures: evaluate the active
    cohort in waves (doubling per-curve budgets), advancing only the
    better half each rung, and culling a curve permanently once its
    optimistic bound -- the predicted delay of its next untried clock
    -- cannot beat the incumbent.  Culling is bound-based, never
    score-based, so the final winner is still exact.

The pruning rules the strategies rely on (documented and tested):

* delay determinism -- a feasible point's delay is its designer
  ``II_effective`` times the clock; the scheduler never beats it;
* area/power monotonicity -- slower clocks never increase area or
  power within a microarchitecture;
* feasibility monotonicity -- if a clock schedules, every slower
  clock schedules.

Every strategy ends with a plateau refinement so its winner is never
dominated by the exhaustive sweep's Pareto front: among equal-objective
ties it walks toward faster clocks while the lexicographic goal key
(:meth:`repro.dse.goals.Goal.key`) keeps improving.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dse.goals import Goal
from repro.dse.report import Evaluation, TuningReport
from repro.dse.space import (
    Candidate,
    DesignSpace,
    admissible_clocks,
    paper_space,
)
from repro.dse.store import ResultStore, StoredResult, candidate_key
from repro.explore.microarch import InfeasiblePoint, Microarch
from repro.explore.pareto import DesignPoint
from repro.tech.library import Library

#: score slack under which two points count as tied (then the plateau
#: refinement and the lexicographic key settle the order).
TIE_EPS = 1e-6


def _ok(goal: Goal, result: StoredResult) -> bool:
    """Feasible and constraint-satisfying."""
    return isinstance(result, DesignPoint) and goal.satisfied(result)


# ----------------------------------------------------------------------
# evaluators
# ----------------------------------------------------------------------
class Evaluator:
    """Memoizing evaluation layer between strategies and synthesis.

    Lookup order per candidate: in-process memo (free, not traced),
    persistent :class:`~repro.dse.store.ResultStore` (cross-process
    warm start), fresh synthesis.  Every *unique* candidate becomes one
    trace entry; ``fresh_evaluations`` counts only real synthesis runs,
    which is what the warm-start guarantee ("a second tune run performs
    zero fresh evaluations") is asserted against.

    Subclasses provide :meth:`_key` and :meth:`_synthesize`.
    """

    def __init__(self, store: Optional[ResultStore] = None) -> None:
        self.store = store
        self._memo: Dict[str, StoredResult] = {}
        self.trace: List[Evaluation] = []
        self.fresh_evaluations = 0
        self.store_hits = 0

    # -- subclass surface ----------------------------------------------
    def _key(self, cand: Candidate) -> str:
        raise NotImplementedError

    def _synthesize(self, cand: Candidate) -> StoredResult:
        raise NotImplementedError

    # -- evaluation ----------------------------------------------------
    def _lookup(self, cand: Candidate,
                key: str) -> Optional[StoredResult]:
        """The memo/store hit path (store hits counted and traced)."""
        if key in self._memo:
            return self._memo[key]
        if self.store is not None:
            hit = self.store.get(key)
            if hit is not None:
                self.store_hits += 1
                self._record(cand, key, hit, "store")
                return hit
        return None

    def evaluate(self, cand: Candidate) -> StoredResult:
        """One candidate through memo -> store -> synthesis."""
        key = self._key(cand)
        hit = self._lookup(cand, key)
        if hit is not None:
            return hit
        result = self._synthesize(cand)
        self.fresh_evaluations += 1
        if self.store is not None:
            self.store.put(key, result)
        self._record(cand, key, result, "synth")
        return result

    def evaluate_many(self,
                      cands: Sequence[Candidate]) -> List[StoredResult]:
        """Batch evaluation; subclasses may parallelize the misses."""
        return [self.evaluate(c) for c in cands]

    def _record(self, cand: Candidate, key: str, result: StoredResult,
                source: str) -> None:
        self._memo[key] = result
        self.trace.append(Evaluation(
            microarch=cand.microarch.name, clock_ps=cand.clock_ps,
            source=source,
            point=result if isinstance(result, DesignPoint) else None,
            infeasible=result
            if isinstance(result, InfeasiblePoint) else None))

    @property
    def evaluated(self) -> int:
        """Unique candidates evaluated so far."""
        return len(self.trace)

    def points(self) -> List[DesignPoint]:
        """Every feasible point evaluated so far."""
        return [e.point for e in self.trace if e.point is not None]


class FlowEvaluator(Evaluator):
    """Evaluate microarch/clock candidates through the ``sweep`` flow.

    Single evaluations go through
    :func:`repro.flow.executor.synthesize_design_point`; batches group
    by microarchitecture and fan out through
    :func:`repro.flow.executor.run_sweep` (``jobs`` workers), sharing
    one :class:`~repro.flow.cache.FlowCache` either way.
    """

    def __init__(self, region_factory: Callable, library: Library,
                 options=None, cache=None,
                 store: Optional[ResultStore] = None,
                 jobs: int = 1, tracer=None) -> None:
        from repro.flow.cache import FlowCache, region_fingerprint

        super().__init__(store)
        self.region_factory = region_factory
        self.library = library
        self.options = options
        self.cache = cache if cache is not None else FlowCache()
        self.jobs = jobs
        #: optional :class:`repro.obs.trace.Tracer`; each batched
        #: dispatch becomes one ``dse.wave`` span with the per-point
        #: spans (worker processes included) nested under it.
        self.tracer = tracer
        self._fingerprint = region_fingerprint(region_factory())

    def _key(self, cand: Candidate) -> str:
        return candidate_key(self._fingerprint, self.library.name,
                             cand.microarch, cand.clock_ps, self.options)

    def _synthesize(self, cand: Candidate) -> StoredResult:
        from repro.flow.executor import synthesize_design_point

        return synthesize_design_point(
            self.region_factory, self.library, cand.microarch,
            cand.clock_ps, self.options, self.cache, self.tracer)

    def evaluate_many(self,
                      cands: Sequence[Candidate]) -> List[StoredResult]:
        """One :func:`~repro.flow.executor.run_points` dispatch for all
        memo/store misses -- whatever mixture of curves the strategy
        queued, the sweep engine's pool sees it as a single batch."""
        from repro.flow.executor import run_points
        from repro.obs.trace import maybe_span

        misses: List[Candidate] = []
        queued = set()
        for cand in cands:
            key = self._key(cand)
            if key in queued or self._lookup(cand, key) is not None:
                continue
            queued.add(key)
            misses.append(cand)
        if misses:
            with maybe_span(self.tracer, "dse.wave",
                            requested=len(cands),
                            misses=len(misses)) as span:
                results = run_points(
                    self.region_factory, self.library,
                    [(c.microarch, c.clock_ps) for c in misses],
                    options=self.options, jobs=self.jobs,
                    cache=self.cache, tracer=self.tracer)
                if span is not None:
                    span.set("feasible", sum(
                        1 for r in results
                        if not isinstance(r, InfeasiblePoint)))
            for cand, result in zip(misses, results):
                self.fresh_evaluations += 1
                key = self._key(cand)
                if self.store is not None:
                    self.store.put(key, result)
                self._record(cand, key, result, "synth")
        return [self._memo[self._key(c)] for c in cands]


class PipelineEvaluator(Evaluator):
    """Evaluate streaming candidates through dataflow composition.

    A candidate's microarchitecture carries the FIFO depth overrides
    (:meth:`repro.explore.Microarch.with_channel_depth`); evaluation
    rebuilds the pipeline, applies them, and runs
    :func:`repro.dataflow.compile_pipeline` with a shared flow cache so
    every distinct stage schedules once across the whole search.  The
    reported delay is ``steady-state II x Tclk`` -- the same axis the
    Figure 10 sweeps use.
    """

    def __init__(self, pipeline_factory: Callable, library: Library,
                 options=None, cache=None,
                 store: Optional[ResultStore] = None) -> None:
        from repro.flow.cache import FlowCache

        super().__init__(store)
        self.pipeline_factory = pipeline_factory
        self.library = library
        self.options = options
        self.cache = cache if cache is not None else FlowCache()
        self._fingerprint = pipeline_fingerprint(pipeline_factory())

    def _key(self, cand: Candidate) -> str:
        return candidate_key(self._fingerprint, self.library.name,
                             cand.microarch, cand.clock_ps, self.options)

    def _synthesize(self, cand: Candidate) -> StoredResult:
        from repro.core.schedule import ScheduleError
        from repro.dataflow import compile_pipeline

        pipeline = self.pipeline_factory()
        cand.microarch.apply_channel_depths(pipeline)
        try:
            composed = compile_pipeline(
                pipeline, self.library, cand.clock_ps,
                options=self.options, cache=self.cache)
        except ScheduleError as exc:
            return InfeasiblePoint(cand.microarch.name, cand.clock_ps,
                                   str(exc))
        return DesignPoint(
            label=cand.label, microarch=cand.microarch.name,
            clock_ps=cand.clock_ps, ii=composed.steady_state_ii,
            latency=composed.latency,
            delay_ps=composed.steady_state_ii * cand.clock_ps,
            area=composed.area, power_mw=composed.power().total_mw)


def pipeline_fingerprint(pipeline) -> str:
    """Content hash of a streaming composition's structure.

    Combines every stage's region fingerprint (in topological order)
    with the stage IIs and the declared channel geometry, so the
    persistent store keys compositions the same way the flow cache keys
    regions.
    """
    import hashlib
    import json

    from repro.flow.cache import region_fingerprint

    pipeline.validate()
    payload = {
        "name": pipeline.name,
        "stages": [[s.name, s.ii, region_fingerprint(s.region)]
                   for s in pipeline.topo_order()],
        "channels": [[c.name, c.width, c.depth]
                     for _, c in sorted(pipeline.channels.items())],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
class Strategy:
    """One search policy; subclasses implement :meth:`run`."""

    name = "?"

    def run(self, space: DesignSpace, goal: Goal,
            evaluator: Evaluator) -> Optional[DesignPoint]:
        raise NotImplementedError


def _walk_plateau(evaluator: Evaluator, goal: Goal, microarch: Microarch,
                  clocks: Sequence[float], idx: int,
                  best: DesignPoint) -> DesignPoint:
    """Refine toward faster clocks while the goal key improves.

    Area can plateau across neighboring clocks; a faster clock at equal
    area strictly improves delay, so stopping at the first
    non-improving step both keeps the winner on the Pareto front and
    bounds the extra evaluations by the plateau length.
    """
    while idx > 0:
        result = evaluator.evaluate(Candidate(microarch, clocks[idx - 1]))
        if _ok(goal, result) and goal.key(result) < goal.key(best):
            best, idx = result, idx - 1
        else:
            break
    return best


def _finish(per_curve: List[Tuple[Microarch, Sequence[float], int,
                                  DesignPoint]],
            goal: Goal, evaluator: Evaluator) -> Optional[DesignPoint]:
    """Plateau-refine every curve, then pick the key-minimal point.

    Walking *every* curve (not just the score-tied ones) costs at most
    one extra evaluation per non-improving curve but keeps the search
    robust where the real flow bends the paper model: binding can make
    area rise at a *slower* clock (sharing changes with the clock), in
    which case a curve's most-relaxed sample is not its optimum and
    the walk recovers it.
    """
    if not per_curve:
        return None
    refined: List[DesignPoint] = []
    for microarch, clocks, idx, point in per_curve:
        if goal.objective.metric != "delay_ps":
            point = _walk_plateau(evaluator, goal, microarch, clocks,
                                  idx, point)
        refined.append(point)
    return min(refined, key=goal.key)


class ExhaustiveStrategy(Strategy):
    """Evaluate the whole grid (through the parallel executor)."""

    name = "exhaustive"

    def run(self, space, goal, evaluator):
        results = evaluator.evaluate_many(list(space.candidates()))
        return goal.best(r for r in results
                         if isinstance(r, DesignPoint))


class BisectStrategy(Strategy):
    """Per-microarch clock bisection (see module docstring)."""

    name = "bisect"

    def run(self, space, goal, evaluator):
        delay_bound = goal.bound("delay_ps")
        curves = [(m, admissible_clocks(space, m, delay_bound))
                  for m in space.microarchs]
        curves = [(m, clocks) for m, clocks in curves if clocks]
        if not curves:
            return None
        # the most relaxed admissible clock is each curve's easiest
        # point: infeasible or violating there => the curve is out.
        # Every curve probes it unconditionally, so it is one batch.
        first = evaluator.evaluate_many(
            [Candidate(m, clocks[-1]) for m, clocks in curves])
        per_curve = []
        active: List[List] = []  # [m, clocks, lo, hi, best]
        for (m, clocks), result in zip(curves, first):
            if not _ok(goal, result):
                continue
            if goal.objective.metric != "delay_ps":
                # area/power are minimal at the most relaxed clock.
                per_curve.append((m, clocks, len(clocks) - 1, result))
            else:
                active.append([m, clocks, 0, len(clocks) - 1, result])
        # minimize delay: leftmost (fastest) satisfying clock; the
        # predicate is monotone along the axis, so bisect -- curves are
        # independent, so every round's midpoints form one batch (the
        # probe set is exactly the sequential one).
        while any(lo < hi for _, _, lo, hi, _ in active):
            evaluator.evaluate_many(
                [Candidate(m, clocks[(lo + hi) // 2])
                 for m, clocks, lo, hi, _ in active if lo < hi])
            for entry in active:
                m, clocks, lo, hi, best = entry
                if lo >= hi:
                    continue
                mid = (lo + hi) // 2
                probe = evaluator.evaluate(Candidate(m, clocks[mid]))
                if _ok(goal, probe):
                    entry[3], entry[4] = mid, probe
                else:
                    entry[2] = mid + 1
        per_curve.extend(
            (m, clocks, hi, best) for m, clocks, _, hi, best in active)
        return _finish(per_curve, goal, evaluator)


class GreedyStrategy(Strategy):
    """Axis descent with monotonicity pruning (see module docstring)."""

    name = "greedy"

    def run(self, space, goal, evaluator):
        delay_bound = goal.bound("delay_ps")
        if goal.objective.metric == "delay_ps":
            return self._descend_delay(space, goal, evaluator,
                                       delay_bound)
        best: Optional[DesignPoint] = None
        curves = [(m, admissible_clocks(space, m, delay_bound))
                  for m in space.microarchs]
        curves = [(m, clocks) for m, clocks in curves if clocks]
        # every curve's most-relaxed clock is probed unconditionally:
        # one batch keeps the pool saturated before the (sequential,
        # data-dependent) plateau walks
        first = evaluator.evaluate_many(
            [Candidate(m, clocks[-1]) for m, clocks in curves])
        for (m, clocks), result in zip(curves, first):
            if not _ok(goal, result):
                continue  # curve's best point fails => whole curve out
            point = _walk_plateau(evaluator, goal, m, clocks,
                                  len(clocks) - 1, result)
            if best is None or goal.key(point) < goal.key(best):
                best = point
        return best

    @staticmethod
    def _descend_delay(space, goal, evaluator, delay_bound):
        incumbent: Optional[DesignPoint] = None
        # most promising curves first: smallest II reaches the smallest
        # predicted delays, tightening the incumbent for later pruning.
        order = sorted(space.microarchs, key=lambda m: m.ii_effective)
        for m in order:
            for clock in admissible_clocks(space, m, delay_bound):
                predicted = m.ii_effective * clock
                if incumbent is not None \
                        and predicted > incumbent.delay_ps + TIE_EPS:
                    break  # slower clocks are provably worse: prune
                result = evaluator.evaluate(Candidate(m, clock))
                if _ok(goal, result):
                    if incumbent is None \
                            or goal.key(result) < goal.key(incumbent):
                        incumbent = result
                    break  # slower clocks of this curve: larger delay
        return incumbent


class HalvingStrategy(Strategy):
    """Successive halving across microarchs (see module docstring)."""

    name = "halving"

    def run(self, space, goal, evaluator):
        delay_bound = goal.bound("delay_ps")
        if goal.objective.metric != "delay_ps":
            # rung 0 is already exact per curve (area/power are minimal
            # at the most relaxed clock): one batched wave decides.
            wave, curves = [], []
            for m in space.microarchs:
                clocks = admissible_clocks(space, m, delay_bound)
                if clocks:
                    wave.append(Candidate(m, clocks[-1]))
                    curves.append((m, clocks))
            results = evaluator.evaluate_many(wave)
            per_curve = [(m, clocks, len(clocks) - 1, r)
                         for (m, clocks), r in zip(curves, results)
                         if _ok(goal, r)]
            return _finish(per_curve, goal, evaluator)
        return self._halve_delay(space, goal, evaluator, delay_bound)

    @staticmethod
    def _halve_delay(space, goal, evaluator, delay_bound):
        # pending: curve name -> (microarch, clocks, next index); the
        # optimistic bound of a curve is the predicted delay of its
        # next untried clock (fast -> slow order).
        pending: Dict[str, Tuple[Microarch, Tuple[float, ...], int]] = {}
        for m in space.microarchs:
            clocks = admissible_clocks(space, m, delay_bound)
            if clocks:
                pending[m.name] = (m, clocks, 0)
        incumbent: Optional[DesignPoint] = None
        budget = 1
        while pending:
            # cull curves whose optimistic bound cannot beat (or tie)
            # the incumbent -- safe: bounds only worsen, the incumbent
            # only improves.
            alive = []
            for name, (m, clocks, idx) in list(pending.items()):
                bound = m.ii_effective * clocks[idx]
                if incumbent is not None \
                        and bound > incumbent.delay_ps + TIE_EPS:
                    del pending[name]
                    continue
                alive.append((bound, name))
            if not alive:
                break
            alive.sort()
            keep = [name for _, name in
                    alive[:max(1, math.ceil(len(alive) / 2))]]
            # one batched wave per rung: each kept curve contributes its
            # next <= budget untried clocks (pre-truncated against the
            # rung-entry incumbent).  Batching can evaluate points a
            # strictly sequential walk would have skipped after a
            # mid-rung incumbent improvement; that only adds work, never
            # error -- culling stays bound-based and the walk below
            # still stops at each curve's fastest satisfying clock.
            spans: List[Tuple[str, List[int]]] = []
            wave: List[Candidate] = []
            for name in keep:
                m, clocks, idx = pending[name]
                span = []
                for j in range(idx, min(idx + budget, len(clocks))):
                    if incumbent is not None \
                            and m.ii_effective * clocks[j] \
                            > incumbent.delay_ps + TIE_EPS:
                        break
                    span.append(j)
                spans.append((name, span))
                wave.extend(Candidate(m, clocks[j]) for j in span)
            evaluator.evaluate_many(wave)
            for name, span in spans:
                m, clocks, idx = pending[name]
                resolved = False
                for j in range(idx, min(idx + budget, len(clocks))):
                    if incumbent is not None \
                            and m.ii_effective * clocks[j] \
                            > incumbent.delay_ps + TIE_EPS:
                        resolved = True
                        break
                    result = evaluator.evaluate(Candidate(m, clocks[j]))
                    idx = j + 1
                    if _ok(goal, result):
                        # fastest satisfying clock: this curve's exact
                        # optimum (feasibility is monotone).
                        if incumbent is None or \
                                goal.key(result) < goal.key(incumbent):
                            incumbent = result
                        resolved = True
                        break
                if resolved or idx >= len(clocks):
                    del pending[name]
                else:
                    pending[name] = (m, clocks, idx)
            budget *= 2
        return incumbent


#: every registered strategy, by name.
STRATEGIES: Dict[str, Strategy] = {
    s.name: s for s in (ExhaustiveStrategy(), BisectStrategy(),
                        GreedyStrategy(), HalvingStrategy())
}


def get_strategy(name: str) -> Strategy:
    """Look up a strategy; raises ``KeyError`` with choices."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise KeyError(f"unknown strategy {name!r}; "
                       f"choose from {sorted(STRATEGIES)}") from None


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def _run(strategy: str, space: DesignSpace, goal: Goal,
         evaluator: Evaluator) -> TuningReport:
    """Run one strategy and assemble its report (shared driver core)."""
    strat = get_strategy(strategy)
    start = time.perf_counter()
    winner = strat.run(space, goal, evaluator)
    return TuningReport(
        goal=goal, strategy=strat.name, grid_size=space.size,
        winner=winner, trace=list(evaluator.trace),
        fresh_evaluations=evaluator.fresh_evaluations,
        store_hits=evaluator.store_hits,
        elapsed_s=time.perf_counter() - start)


def tune(region_factory: Callable, library: Library, goal: Goal,
         space: Optional[DesignSpace] = None, strategy: str = "greedy",
         options=None, cache=None, store: Optional[ResultStore] = None,
         jobs: int = 1, tracer=None) -> TuningReport:
    """Search a design space for the best goal-satisfying point.

    The main entry of the autotuner: builds a
    :class:`FlowEvaluator` (cache- and store-aware, ``jobs``-parallel
    batches), runs the named strategy, and returns a
    :class:`~repro.dse.report.TuningReport` with the winner, the
    evaluation trace and the accounting.  An optional ``tracer``
    records one ``dse.wave`` span per batched dispatch with the
    per-point spans nested underneath.
    """
    space = space if space is not None else paper_space()
    evaluator = FlowEvaluator(region_factory, library, options=options,
                              cache=cache, store=store, jobs=jobs,
                              tracer=tracer)
    return _run(strategy, space, goal, evaluator)


def tune_pipeline(pipeline_factory: Callable, library: Library,
                  goal: Goal, space: DesignSpace,
                  strategy: str = "greedy", options=None, cache=None,
                  store: Optional[ResultStore] = None) -> TuningReport:
    """Goal-directed search over a streaming composition's space.

    ``space`` typically crosses a base microarchitecture with a
    channel-depth axis
    (:meth:`~repro.dse.space.DesignSpace.with_channel_depth_axis`);
    stages are scheduled once across the whole search through the
    shared flow cache.
    """
    evaluator = PipelineEvaluator(pipeline_factory, library,
                                  options=options, cache=cache,
                                  store=store)
    return _run(strategy, space, goal, evaluator)
