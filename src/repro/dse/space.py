"""Composable parameter spaces over the existing exploration axes.

A :class:`DesignSpace` is the cross product of a microarchitecture list
(latency/II points, optionally carrying banking or channel-depth
overrides) and a clock-period axis.  The axis builders are composable:
start from :func:`paper_space` (the Figure 10/11 grid) or an explicit
list, then cross in memory banking (:meth:`DesignSpace.with_banking_axis`)
or streaming channel depths (:meth:`DesignSpace.with_channel_depth_axis`).

The channel-depth axis applies the paper model's monotonicity rule at
*space construction* time: deepening a non-bottleneck channel never
improves the steady-state II but always adds FIFO area, so an
assignment that is pointwise >= another is dominated before anything is
synthesized (:func:`prune_dominated_depths`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.explore.microarch import (
    Microarch,
    PAPER_CLOCKS_PS,
    PAPER_MICROARCHS,
    banked_microarchs,
)


class SpaceError(ValueError):
    """A malformed parameter space (empty axis, duplicate names...)."""


@dataclass(frozen=True)
class Candidate:
    """One point of a design space: a microarchitecture at a clock."""

    microarch: Microarch
    clock_ps: float

    @property
    def predicted_delay_ps(self) -> float:
        """The paper model's deterministic delay: ``II_effective * Tclk``.

        Strategies prune on this *before* synthesis -- a candidate whose
        predicted delay already violates the delay bound never needs to
        be evaluated (the scheduler cannot beat the designer II).
        """
        return self.microarch.ii_effective * self.clock_ps

    @property
    def label(self) -> str:
        """Stable display name, matching the sweep executor's labels."""
        return f"{self.microarch.name}@{self.clock_ps:.0f}"


@dataclass(frozen=True)
class DesignSpace:
    """Microarchitecture x clock grid with composable extra axes."""

    microarchs: Tuple[Microarch, ...]
    clocks_ps: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.microarchs:
            raise SpaceError("design space needs at least one microarch")
        if not self.clocks_ps:
            raise SpaceError("design space needs at least one clock")
        if any(c <= 0 for c in self.clocks_ps):
            raise SpaceError(f"clock periods must be positive: "
                             f"{self.clocks_ps}")
        names = [m.name for m in self.microarchs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SpaceError(f"duplicate microarch names: {dupes}")
        # ascending = fastest clock first; strategies index on this.
        object.__setattr__(self, "clocks_ps",
                           tuple(sorted(float(c) for c in self.clocks_ps)))
        object.__setattr__(self, "microarchs", tuple(self.microarchs))

    @property
    def size(self) -> int:
        """Grid size (the exhaustive evaluation count)."""
        return len(self.microarchs) * len(self.clocks_ps)

    def candidates(self) -> Iterator[Candidate]:
        """Every grid point, microarchitecture-major then clock."""
        for m in self.microarchs:
            for c in self.clocks_ps:
                yield Candidate(m, c)

    # ------------------------------------------------------------------
    # composable axes
    # ------------------------------------------------------------------
    def with_clocks(self, clocks_ps: Sequence[float]) -> "DesignSpace":
        """A copy with a replaced clock axis."""
        return replace(self, clocks_ps=tuple(clocks_ps))

    def with_microarchs(self,
                        microarchs: Sequence[Microarch]) -> "DesignSpace":
        """A copy with a replaced microarchitecture axis."""
        return replace(self, microarchs=tuple(microarchs))

    def with_banking_axis(self, memories: Sequence[str],
                          factors: Sequence[int]) -> "DesignSpace":
        """Cross every microarch with the memory-banking factors.

        Mirrors :func:`repro.explore.banked_microarchs`: every listed
        memory gets the same cyclic factor per point.
        """
        if not factors:
            raise SpaceError("banking axis needs at least one factor")
        expanded: List[Microarch] = []
        for m in self.microarchs:
            expanded.extend(banked_microarchs(m, memories, factors))
        return self.with_microarchs(expanded)

    def with_unroll_axis(self, factors: Sequence[int]) -> "DesignSpace":
        """Cross every microarch with loop-unroll factors.

        Factor 1 keeps the microarch as-is (no label suffix); other
        factors replicate the loop body before scheduling, trading
        area for work per iteration.
        """
        if not factors:
            raise SpaceError("unroll axis needs at least one factor")
        expanded: List[Microarch] = []
        for m in self.microarchs:
            for factor in factors:
                expanded.append(m if factor == 1 else m.with_unroll(factor))
        return self.with_microarchs(expanded)

    def with_channel_depth_axis(
            self,
            assignments: Sequence[Dict[str, int]]) -> "DesignSpace":
        """Cross every microarch with FIFO depth assignments.

        Pointwise-dominated assignments are pruned first (deepening a
        non-bottleneck channel never improves II, always adds area).
        """
        kept = prune_dominated_depths(assignments)
        if not kept:
            raise SpaceError("channel-depth axis needs at least one "
                             "assignment")
        expanded: List[Microarch] = []
        for m in self.microarchs:
            for depths in kept:
                expanded.append(m.with_channel_depth(depths)
                                if depths else m)
        return self.with_microarchs(expanded)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly record of the space shape."""
        return {
            "microarchs": [m.name for m in self.microarchs],
            "clocks_ps": list(self.clocks_ps),
            "size": self.size,
        }


def paper_space() -> DesignSpace:
    """The paper's Figure 10/11 grid: 5 microarchs x 5 clocks."""
    return DesignSpace(tuple(PAPER_MICROARCHS), tuple(PAPER_CLOCKS_PS))


def prune_dominated_depths(
        assignments: Sequence[Dict[str, int]]) -> List[Dict[str, int]]:
    """Drop channel-depth assignments that are pointwise >= another.

    Two assignments are comparable only when they name the same
    channels; ``a`` dominates ``b`` when every depth of ``a`` is <= the
    matching depth of ``b`` and one is strictly smaller (the deeper
    assignment costs more FIFO area and can never improve II).  Exact
    duplicates collapse to one entry.
    """
    unique: List[Dict[str, int]] = []
    seen = set()
    for depths in assignments:
        key = tuple(sorted(depths.items()))
        if key not in seen:
            seen.add(key)
            unique.append(dict(depths))
    kept: List[Dict[str, int]] = []
    for a in unique:
        dominated = False
        for b in unique:
            if a is b or set(a) != set(b):
                continue
            if all(b[k] <= a[k] for k in a) \
                    and any(b[k] < a[k] for k in a):
                dominated = True
                break
        if not dominated:
            kept.append(a)
    return kept


def channel_depth_assignments(
        channels: Sequence[str],
        depths: Sequence[int]) -> List[Dict[str, int]]:
    """The per-stage streaming space: every combination of per-channel
    FIFO depths (then typically pruned through a depth axis).

    This is the cartesian per-channel expansion -- each channel of a
    :class:`~repro.dataflow.Pipeline` picks its depth independently::

        channel_depth_assignments(["s", "t"], [1, 2])
        # [{'s': 1, 't': 1}, {'s': 1, 't': 2},
        #  {'s': 2, 't': 1}, {'s': 2, 't': 2}]
    """
    if not channels or not depths:
        return []
    return [dict(zip(channels, combo))
            for combo in itertools.product(sorted(depths),
                                           repeat=len(channels))]


def admissible_clocks(space: DesignSpace, microarch: Microarch,
                      delay_bound: Optional[float] = None
                      ) -> Tuple[float, ...]:
    """The clocks (ascending) whose predicted delay meets the bound.

    With no delay bound every clock is admissible.  The filter needs no
    synthesis: delay is ``II_effective * Tclk`` in the paper model.
    """
    if delay_bound is None:
        return space.clocks_ps
    ii = microarch.ii_effective
    return tuple(c for c in space.clocks_ps
                 if ii * c <= delay_bound + 1e-9)
