"""Goal-directed design-space exploration (the autotuner).

Turn a declarative goal -- "delay <= X ps, minimize area", "area <= A,
minimize delay", optionally with a power budget -- into an orchestrated
search over the repo's exploration axes (microarchitecture latency/II,
clock period, memory banking, streaming channel depths) instead of a
blind grid:

* :mod:`~repro.dse.goals` -- the Goal/Constraint/Objective spec;
* :mod:`~repro.dse.space` -- composable parameter spaces;
* :mod:`~repro.dse.search` -- strategies (exhaustive, bisect, greedy,
  halving) and the :func:`tune`/:func:`tune_pipeline` drivers;
* :mod:`~repro.dse.store` -- the persistent JSONL result store that
  warm-starts tuning across processes;
* :mod:`~repro.dse.report` -- tuning traces and Pareto summaries.

Quickstart::

    from repro.dse import Goal, tune
    from repro.tech import artisan90
    from repro.workloads import build_idct8

    report = tune(build_idct8, artisan90(),
                  Goal.build(objective="area", delay_ps=26000.0),
                  strategy="greedy")
    print(report.table())

The CLI front end is ``python -m repro tune`` (see docs/DSE.md).
"""

from repro.dse.goals import (
    METRICS,
    Constraint,
    Goal,
    GoalError,
    Objective,
    canonical_metric,
)
from repro.dse.report import Evaluation, TuningReport
from repro.dse.search import (
    STRATEGIES,
    Evaluator,
    FlowEvaluator,
    PipelineEvaluator,
    Strategy,
    get_strategy,
    pipeline_fingerprint,
    tune,
    tune_pipeline,
)
from repro.dse.space import (
    Candidate,
    DesignSpace,
    SpaceError,
    admissible_clocks,
    channel_depth_assignments,
    paper_space,
    prune_dominated_depths,
)
from repro.dse.store import ResultStore, StoredResult, candidate_key

__all__ = [
    "Candidate",
    "Constraint",
    "DesignSpace",
    "Evaluation",
    "Evaluator",
    "FlowEvaluator",
    "Goal",
    "GoalError",
    "METRICS",
    "Objective",
    "PipelineEvaluator",
    "ResultStore",
    "STRATEGIES",
    "SpaceError",
    "StoredResult",
    "Strategy",
    "TuningReport",
    "admissible_clocks",
    "candidate_key",
    "canonical_metric",
    "channel_depth_assignments",
    "get_strategy",
    "paper_space",
    "pipeline_fingerprint",
    "prune_dominated_depths",
    "tune",
    "tune_pipeline",
]
