"""Persistent on-disk result store: tuning warm-starts across processes.

The store is an append-only JSONL file.  Each line is one evaluated
configuration -- a :class:`~repro.explore.DesignPoint` or an
:class:`~repro.explore.InfeasiblePoint` -- keyed by a SHA-256 over the
*content* of the configuration: the region's structural fingerprint
(the same one :mod:`repro.flow.cache` uses), the technology library,
the timing-model version, the microarchitecture fields, the clock and
the scheduler options.  Two processes tuning the same kernel therefore
share results even though they never shared memory, and a result
computed under an older timing model is silently ignored rather than
served stale.

Robustness rules:

* unreadable or missing files load as an empty store;
* corrupt lines (truncated writes, merge scars) are skipped, not fatal;
* lines with a different :data:`STORE_VERSION` or timing-model version
  are skipped -- the file never needs migrating, stale entries simply
  stop matching and fresh ones append after them.

Concurrency: a single JSONL file appended by many processes risks
interleaved partial lines.  ``shard_per_process=True`` routes this
process's appends to a private ``<name>.<pid>.shard`` sibling instead;
loading always merges the base file with every sibling shard (results
are content-addressed, so merge order cannot matter), and
:meth:`ResultStore.compact` folds the shards back into the base file.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.scheduler import SchedulerOptions
from repro.explore.microarch import InfeasiblePoint, Microarch
from repro.explore.pareto import DesignPoint
from repro.timing import engine as timing_engine

#: bump when the line schema changes; old lines are skipped on load.
STORE_VERSION = 1

#: one stored outcome: a feasible point or an explicit infeasibility.
StoredResult = Union[DesignPoint, InfeasiblePoint]


def candidate_key(region_fingerprint: str, library_name: str,
                  microarch: Microarch, clock_ps: float,
                  options: Optional[SchedulerOptions] = None) -> str:
    """Content hash of one tuning configuration.

    Mirrors :func:`repro.flow.cache.compilation_key` but keys on the
    *microarchitecture* (latency, II, banking, channel depths) instead
    of a mutated region, so it can be computed without building the
    candidate region -- which is what makes store lookups free.
    """
    payload = {
        "store": STORE_VERSION,
        "timing_model": timing_engine.TIMING_MODEL_VERSION,
        "region": region_fingerprint,
        "library": library_name,
        "microarch": {
            "latency": microarch.latency,
            "ii": microarch.ii,
            "banking": microarch.banking,
            "channel_depths": microarch.channel_depths,
            "unroll": microarch.unroll,
        },
        "clock_ps": repr(float(clock_ps)),
        "options": asdict(options) if options is not None
        else asdict(SchedulerOptions()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _encode(result: StoredResult) -> Dict[str, object]:
    if isinstance(result, InfeasiblePoint):
        return {"infeasible": result.to_json()}
    return {"point": result.to_json()}


def _decode(entry: Dict[str, object]) -> Optional[StoredResult]:
    if "infeasible" in entry:
        return InfeasiblePoint.from_json(entry["infeasible"])
    if "point" in entry:
        return DesignPoint.from_json(entry["point"])
    return None


class ResultStore:
    """Append-only JSONL store of evaluated design points.

    Open it on a path (created lazily on the first :meth:`put`); all
    valid entries load eagerly so :meth:`get` is a dict lookup.  Writes
    append one line and flush, so concurrent readers see every complete
    line and a crash costs at most the line being written.
    """

    def __init__(self, path: Union[str, Path],
                 shard_per_process: bool = False) -> None:
        self.path = Path(path)
        #: where this instance appends: the base file, or a private
        #: per-process shard when several writers share the path.
        self.write_path = self.path if not shard_per_process else \
            self.path.parent / f"{self.path.name}.{os.getpid()}.shard"
        self._entries: Dict[str, StoredResult] = {}
        self.skipped_lines = 0
        self._load()

    def _shard_paths(self) -> list:
        """Every sibling shard of the base file, stably ordered."""
        try:
            return sorted(
                self.path.parent.glob(f"{self.path.name}.*.shard"))
        except OSError:
            return []

    def _load(self) -> None:
        self._load_file(self.path)
        # merge-on-load: shards left by per-process writers.  Results
        # are content-addressed, so any merge order yields equivalent
        # entries (first writer wins per key).
        for shard in self._shard_paths():
            self._load_file(shard)

    def _load_file(self, path: Path) -> None:
        try:
            # errors="replace": binary garbage in a corrupted shard
            # must degrade to skipped lines, not an unreadable store
            text = path.read_text(errors="replace")
        except OSError:
            return
        model = timing_engine.TIMING_MODEL_VERSION
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict) \
                        or entry.get("v") != STORE_VERSION \
                        or entry.get("timing_model") != model:
                    self.skipped_lines += 1
                    continue
                key = entry["key"]
                result = _decode(entry)
            except (ValueError, KeyError, TypeError):
                self.skipped_lines += 1
                continue
            if isinstance(key, str) and result is not None:
                self._entries.setdefault(key, result)
            else:
                self.skipped_lines += 1

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[StoredResult]:
        """The stored result for a key, or None."""
        return self._entries.get(key)

    def put(self, key: str, result: StoredResult) -> None:
        """Record one result; appends a line unless the key is known."""
        if key in self._entries:
            return
        self._entries[key] = result
        entry = {"v": STORE_VERSION,
                 "timing_model": timing_engine.TIMING_MODEL_VERSION,
                 "key": key}
        entry.update(_encode(result))
        line = json.dumps(entry, sort_keys=True,
                          separators=(",", ":")) + "\n"
        try:
            self.write_path.parent.mkdir(parents=True, exist_ok=True)
            with self.write_path.open("a") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:  # read-only checkouts keep the in-memory entry
            pass

    def refresh(self) -> int:
        """Re-read the base file and every shard from disk.

        Folds in entries *other* processes appended since this store
        last read the path (first writer wins per key, as everywhere).
        Long-running drivers (the job service) call this between jobs
        so one process's warm-start view tracks the whole fleet.
        Returns the number of newly learned entries.
        """
        before = len(self._entries)
        self._load()
        return len(self._entries) - before

    def _write_base(self) -> bool:
        """Atomically rewrite the base file from the in-memory entries."""
        model = timing_engine.TIMING_MODEL_VERSION
        lines = []
        for key, result in self._entries.items():
            entry = {"v": STORE_VERSION, "timing_model": model,
                     "key": key}
            entry.update(_encode(result))
            lines.append(json.dumps(entry, sort_keys=True,
                                    separators=(",", ":")))
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.parent / f"{self.path.name}.{os.getpid()}.tmp"
            tmp.write_text("".join(line + "\n" for line in lines))
            os.replace(tmp, self.path)
        except OSError:
            return False
        return True

    def compact(self) -> int:
        """Fold every shard into the base file; returns shards removed.

        Crash- and concurrency-consistent by re-reading at compact
        time: the base file and every shard are read *fresh* from disk
        (not served from the entries loaded at construction, which go
        stale the moment another writer appends), the merged set is
        written atomically next to the base file and renamed over it,
        and only then are the shards deleted.  Before each deletion the
        shard is size-checked and re-read once more, so a line another
        process appended between the first read and the rewrite is
        folded into a second rewrite instead of vanishing with the
        shard.  A writer SIGKILLed mid-append leaves a partial trailing
        line; the loader skips it (counted in ``skipped_lines``) and the
        rewrite drops the scar, so survivors always load cleanly.
        """
        # fresh view: everything any writer has made durable by now
        self._load_file(self.path)
        shards = self._shard_paths()
        sizes: Dict[Path, int] = {}
        for shard in shards:
            try:
                sizes[shard] = shard.stat().st_size
            except OSError:
                sizes[shard] = -1
            self._load_file(shard)
        if not self._write_base():
            return 0
        # appends that raced the rewrite: fold and rewrite once more
        grown = []
        for shard in shards:
            try:
                if shard.stat().st_size != sizes[shard]:
                    grown.append(shard)
            except OSError:
                pass
        if grown:
            for shard in grown:
                self._load_file(shard)
            if not self._write_base():
                return 0
        removed = 0
        for shard in shards:
            try:
                shard.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Entry/skip counters for reports."""
        return {"entries": len(self._entries),
                "skipped_lines": self.skipped_lines}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultStore({str(self.path)!r}, "
                f"entries={len(self._entries)})")
