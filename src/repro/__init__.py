"""repro: Realistic performance-constrained pipelining in high-level synthesis.

A full reproduction of Kondratyev, Lavagno, Meyer & Watanabe (DATE 2011):
timing-driven simultaneous scheduling and binding with loop pipelining
implemented as CDFG transformations around an unchanged scheduler.

Quickstart::

    from repro import (RegionBuilder, artisan90, schedule_region,
                       pipeline_loop, simulate_reference, simulate_schedule)

    b = RegionBuilder("mac", is_loop=True, max_latency=4)
    x = b.read("x", 32)
    acc = b.loop_var("acc", b.const(0, 32))
    acc.set_next(b.add(acc, b.mul(x, x)))
    b.write("y", acc.value)
    region = b.build()

    schedule = schedule_region(region, artisan90(), clock_ps=1600.0)
    print(schedule.table())
"""

from repro.cdfg import (
    CFG,
    DFG,
    DFGError,
    OpKind,
    Operation,
    PipelineSpec,
    Predicate,
    Region,
    RegionBuilder,
)
from repro.core import (
    Schedule,
    ScheduleError,
    SchedulerOptions,
    compute_mobility,
    schedule_region,
)
from repro.core.folding import FoldedPipeline, fold_schedule
from repro.dataflow import (
    Channel,
    ComposedPipeline,
    Pipeline,
    compile_pipeline,
    generate_pipeline_verilog,
    simulate_pipeline_machine,
    simulate_pipeline_reference,
)
from repro.core.pipeline import (
    PipelineResult,
    explore_microarchitectures,
    pipeline_loop,
)
from repro.flow import (
    CompilationContext,
    Flow,
    FlowCache,
    run_flow,
    run_sweep,
)
from repro.rtl import compensate_slack, generate_verilog, schedule_report
from repro.sim import simulate_reference, simulate_schedule
from repro.tech import Library, artisan90, generic45
from repro.tech.power import PowerReport, estimate_power

__version__ = "1.0.0"

__all__ = [
    "CFG",
    "Channel",
    "CompilationContext",
    "ComposedPipeline",
    "Pipeline",
    "compile_pipeline",
    "generate_pipeline_verilog",
    "simulate_pipeline_machine",
    "simulate_pipeline_reference",
    "DFG",
    "DFGError",
    "Flow",
    "FlowCache",
    "FoldedPipeline",
    "Library",
    "OpKind",
    "Operation",
    "PipelineResult",
    "PipelineSpec",
    "PowerReport",
    "Predicate",
    "Region",
    "RegionBuilder",
    "Schedule",
    "ScheduleError",
    "SchedulerOptions",
    "artisan90",
    "compensate_slack",
    "compute_mobility",
    "estimate_power",
    "explore_microarchitectures",
    "fold_schedule",
    "generate_verilog",
    "generic45",
    "pipeline_loop",
    "run_flow",
    "run_sweep",
    "schedule_region",
    "schedule_report",
    "simulate_reference",
    "simulate_schedule",
    "__version__",
]
