"""RTL emission for composed pipelines.

One Verilog module per stage (the ordinary
:func:`~repro.rtl.verilog.generate_verilog` output, extended with FIFO
handshake ports), one shift-register FIFO module per channel, and a top
module wiring stages to FIFOs with valid/ready handshakes.  The FIFO is
the textbook shift-register implementation: tokens shift in at index 0,
the oldest token is read at ``count - 1``, ``full``/``empty`` derive
from the occupancy counter, and simultaneous push+pop is legal (count
holds, data shifts through).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.dataflow.compose import ComposedPipeline
from repro.rtl.verilog import VerilogWriter, _ident


def _fifo_module(module: str, width: int, depth: int) -> str:
    """Render one shift-register FIFO module."""
    lines = [f"module {module} ("]
    lines += ["    input  wire clk,", "    input  wire rst,",
              "    input  wire wr_en,",
              f"    input  wire signed [{width - 1}:0] din,",
              "    output wire full,", "    input  wire rd_en,",
              f"    output wire signed [{width - 1}:0] dout,",
              "    output wire empty", ");"]
    if depth == 0:
        # an unbuffered channel: nothing can ever be transferred -- the
        # degenerate case the depth analysis guards against
        lines += ["    assign full = 1'b1;", "    assign empty = 1'b1;",
                  f"    assign dout = {width}'d0;", "endmodule"]
        return "\n".join(lines) + "\n"
    cbits = max(1, math.ceil(math.log2(depth + 1)))
    lines += [
        f"    reg signed [{width - 1}:0] slots [0:{depth - 1}];",
        f"    reg [{cbits - 1}:0] count;",
        "    integer i;",
        f"    assign full = (count == {cbits}'d{depth});",
        f"    assign empty = (count == {cbits}'d0);",
        "    assign dout = slots[count - 1'b1];",
        "    always @(posedge clk) begin",
        "        if (rst) begin",
        f"            count <= {cbits}'d0;",
        "        end else begin",
        "            if (wr_en) begin",
        f"                for (i = {depth - 1}; i > 0; i = i - 1)",
        "                    slots[i] <= slots[i - 1];",
        "                slots[0] <= din;",
        "            end",
        # 1-bit enables zero-extend against the counter width; no
        # concatenation (a zero-width {0'd0, ...} part is illegal)
        "            count <= (count + wr_en) - rd_en;",
        "        end",
        "    end",
        "endmodule",
    ]
    return "\n".join(lines) + "\n"


def generate_pipeline_verilog(composed: ComposedPipeline) -> str:
    """Emit the full RTL of a composed pipeline.

    Output layout: every stage module (named ``<pipeline>_<stage>``),
    every FIFO module (``<pipeline>_fifo_<channel>``), then the top
    module (``<pipeline>``) exposing external ports and ``done``.
    """
    pipe = composed.pipeline
    top = _ident(pipe.name)
    chunks: List[str] = []
    writers = {}
    for name, result in composed.stages.items():
        writer = VerilogWriter(result.schedule, result.folded,
                               module_name=f"{top}_{_ident(name)}")
        writers[name] = writer
        chunks.append(writer.emit())
    for name, chan in sorted(composed.channels.items()):
        chunks.append(_fifo_module(f"{top}_fifo_{_ident(name)}",
                                   chan.width, chan.depth or 0))

    # ---------------------------------------------------------------- top
    lines = [f"// Composed dataflow pipeline: {pipe.name}",
             f"// steady-state II {composed.steady_state_ii}, latency "
             f"{composed.latency}, {len(composed.stages)} stages, "
             f"{len(composed.channels)} channels",
             f"module {top} ("]
    ports = ["    input  wire clk,", "    input  wire rst,",
             "    input  wire start,"]
    # several stages may read the same external port: declare it once,
    # at the widest access (outputs are validated unique per pipeline)
    in_widths: Dict[str, int] = {}
    for result in composed.stages.values():
        region = result.stage.region
        for port in region.input_ports:
            width = max(op.width for op in region.reads
                        if op.payload == port)
            in_widths[port] = max(in_widths.get(port, 0), width)
    for port, width in in_widths.items():
        ports.append(f"    input  wire signed [{width - 1}:0] "
                     f"{_ident(port)},")
    for result in composed.stages.values():
        region = result.stage.region
        for port in region.output_ports:
            width = max(op.width for op in region.writes
                        if op.payload == port)
            ports.append(f"    output wire signed [{width - 1}:0] "
                         f"{_ident(port)},")
    ports.append("    output wire done")
    lines += ports + [");"]
    for name, chan in sorted(composed.channels.items()):
        cid = _ident(name)
        lines += [
            f"    wire signed [{chan.width - 1}:0] {cid}_din;",
            f"    wire signed [{chan.width - 1}:0] {cid}_dout;",
            f"    wire {cid}_wr_en, {cid}_rd_en;",
            f"    wire {cid}_full, {cid}_empty;",
            f"    {top}_fifo_{cid} u_fifo_{cid} (.clk(clk), .rst(rst), "
            f".wr_en({cid}_wr_en), .din({cid}_din), .full({cid}_full), "
            f".rd_en({cid}_rd_en), .dout({cid}_dout), "
            f".empty({cid}_empty));",
        ]
    done_terms: List[str] = []
    for name, result in composed.stages.items():
        region = result.stage.region
        sid = _ident(name)
        conns = [".clk(clk)", ".rst(rst)", ".start(start)"]
        for port in region.input_ports:
            conns.append(f".{_ident(port)}({_ident(port)})")
        for chan in region.input_channels:
            cid = _ident(chan)
            conns += [f".{cid}_dout({cid}_dout)",
                      f".{cid}_empty({cid}_empty)",
                      f".{cid}_rd_en({cid}_rd_en)"]
        for chan in region.output_channels:
            cid = _ident(chan)
            conns += [f".{cid}_din({cid}_din)",
                      f".{cid}_full({cid}_full)",
                      f".{cid}_wr_en({cid}_wr_en)"]
        for port in region.output_ports:
            conns.append(f".{_ident(port)}({_ident(port)})")
        lines.append(f"    wire {sid}_done;")
        conns.append(f".done({sid}_done)")
        lines.append(f"    {top}_{sid} u_{sid} ({', '.join(conns)});")
        done_terms.append(f"{sid}_done")
    lines.append(f"    assign done = {' && '.join(done_terms)};")
    lines.append("endmodule")
    chunks.append("\n".join(lines) + "\n")
    return "\n".join(chunks)
