"""Composition pass: schedule every stage, then reason about the whole.

:func:`compile_pipeline` drives each stage of a
:class:`~repro.dataflow.pipeline.Pipeline` through the existing
``pipeline`` flow (frontend-less: the regions are prebuilt) -- one
:class:`~repro.flow.context.CompilationContext` per stage, sharing one
:class:`~repro.flow.cache.FlowCache` so a stage reused across
compositions or depth sweeps schedules exactly once.  The composition
pass proper then computes the steady-state throughput (the maximum
stage II), stage issue offsets and end-to-end latency, sizes every
auto-depth channel at its analyzed minimum, and aggregates area and
power including the FIFO hardware itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math
from typing import Dict, Optional

from repro.core.folding import FoldedPipeline
from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulerOptions
from repro.dataflow.analysis import (
    frame_cycles,
    min_channel_depths,
    stage_offsets,
    steady_state_ii,
)
from repro.dataflow.channel import Channel, DataflowError
from repro.dataflow.pipeline import Pipeline, Stage
from repro.tech.library import Library
from repro.tech.power import CLOCK_TREE_FACTOR, PowerReport, estimate_power


def fifo_bits(width: int, depth: int) -> int:
    """Storage bits of one FIFO: the token shift register plus an
    occupancy counter (the valid/ready handshake state)."""
    if depth == 0:
        return 0
    return width * depth + math.ceil(math.log2(depth + 1)) + 1


def fifo_area(library: Library, width: int, depth: int) -> float:
    """Area of one shift-register FIFO in library units."""
    return library.register_area(fifo_bits(width, depth))


@dataclass
class StageResult:
    """One stage's compilation artifacts within a composition."""

    stage: Stage
    schedule: Schedule
    folded: Optional[FoldedPipeline]
    #: steady-state issue offset of the stage's iteration 0 (cycles).
    offset: int = 0


@dataclass
class ComposedPipeline:
    """The scheduled composition: per-stage results + system metrics."""

    pipeline: Pipeline
    library: Library
    clock_ps: float
    stages: Dict[str, StageResult]
    #: channels with resolved depths (auto depths filled in).
    channels: Dict[str, Channel]
    #: analyzed minimum stall-free depth per channel.
    min_depths: Dict[str, int] = field(default_factory=dict)

    # -- throughput ----------------------------------------------------
    @property
    def steady_state_ii(self) -> int:
        """Composed initiation interval: the slowest stage's II."""
        return steady_state_ii(self.schedules)

    @property
    def frame_cycles(self) -> int:
        """Steady-state cycles per frame (multi-rate normalization)."""
        return frame_cycles(self.pipeline, self.schedules)

    @property
    def latency(self) -> int:
        """End-to-end latency: last stage's offset plus its depth."""
        return max(r.offset + r.schedule.latency
                   for r in self.stages.values())

    @property
    def schedules(self) -> Dict[str, Schedule]:
        """Stage name -> schedule (convenience accessor)."""
        return {name: r.schedule for name, r in self.stages.items()}

    # -- cost ----------------------------------------------------------
    @property
    def fifo_area(self) -> float:
        """Area of all connecting FIFOs."""
        return sum(fifo_area(self.library, c.width, c.depth or 0)
                   for c in self.channels.values())

    @property
    def area(self) -> float:
        """Aggregate area: every stage plus the FIFO hardware."""
        return sum(r.schedule.area for r in self.stages.values()) \
            + self.fifo_area

    def power(self) -> PowerReport:
        """Aggregate average power: stages plus FIFO storage clocking."""
        dynamic = clock = leakage = 0.0
        for result in self.stages.values():
            report = estimate_power(result.schedule)
            dynamic += report.dynamic_mw
            clock += report.clock_mw
            leakage += report.leakage_mw
        lib = self.library
        bits = sum(fifo_bits(c.width, c.depth or 0)
                   for c in self.channels.values())
        clock += (bits * lib.ff.energy_per_bit_pj * CLOCK_TREE_FACTOR
                  / self.clock_ps * 1000.0)
        leakage += lib.ff.leakage_per_bit_uw * bits / 1000.0
        return PowerReport(dynamic_mw=dynamic, clock_mw=clock,
                           leakage_mw=leakage)

    # -- reports -------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Key figures of the composition, JSON-friendly."""
        return {
            "pipeline": self.pipeline.name,
            "clock_ps": self.clock_ps,
            "steady_state_ii": self.steady_state_ii,
            "frame_cycles": self.frame_cycles,
            "latency": self.latency,
            "area": round(self.area, 1),
            "power_mw": round(self.power().total_mw, 3),
            "stages": {name: {
                "ii": r.schedule.ii_effective,
                "latency": r.schedule.latency,
                "offset": r.offset,
                "area": round(r.schedule.area, 1),
            } for name, r in self.stages.items()},
            "channels": {name: {
                "width": c.width,
                "depth": c.depth,
                "min_depth": self.min_depths.get(name),
            } for name, c in sorted(self.channels.items())},
        }

    def table(self) -> str:
        """Per-stage composition report (II, latency, offset, area)."""
        lines = [f"{'stage':<12} {'II':>4} {'latency':>8} {'offset':>7} "
                 f"{'area':>9}"]
        for name, r in self.stages.items():
            lines.append(f"{name:<12} {r.schedule.ii_effective:>4} "
                         f"{r.schedule.latency:>8} {r.offset:>7} "
                         f"{r.schedule.area:>9.0f}")
        lines.append(f"{'channel':<12} {'width':>5} {'depth':>6} "
                     f"{'min':>5}")
        for name, chan in sorted(self.channels.items()):
            lines.append(f"{name:<12} {chan.width:>5} {chan.depth:>6} "
                         f"{self.min_depths.get(name, '-'):>5}")
        lines.append(f"steady-state II {self.steady_state_ii}, "
                     f"latency {self.latency}, area {self.area:.0f}")
        return "\n".join(lines)


def compile_pipeline(
    pipeline: Pipeline,
    library: Library,
    clock_ps: float = 1600.0,
    options: Optional[SchedulerOptions] = None,
    cache: Optional["FlowCache"] = None,  # noqa: F821 - see flow.cache
    run_optimizer: bool = False,
) -> ComposedPipeline:
    """Schedule every stage independently, then compose.

    Each stage runs the registered ``pipeline`` flow on its own
    :class:`~repro.flow.context.CompilationContext`; a shared ``cache``
    makes repeated compositions (channel-depth sweeps, repeated
    benchmarks) schedule each distinct stage once.  Raises
    :class:`~repro.core.schedule.ScheduleError` (with the failing
    stage named) when any stage is overconstrained, and
    :class:`~repro.dataflow.channel.DataflowError` on malformed
    compositions.
    """
    from repro.flow.context import CompilationContext
    from repro.flow.flow import get_flow

    pipeline.validate()
    flow = get_flow("pipeline")
    results: Dict[str, StageResult] = {}
    for stage in pipeline.topo_order():
        ctx = CompilationContext(
            library=library, clock_ps=clock_ps, region=stage.region,
            pipeline=stage.pipeline, run_optimizer=run_optimizer,
            cache=cache)
        if options is not None:
            ctx.options = options
        flow.run(ctx)
        if ctx.failed:
            first = ctx.errors[0]
            from repro.core.schedule import ScheduleError
            raise ScheduleError(
                f"{pipeline.name}/{stage.name}: {first.message}",
                list(first.details))
        results[stage.name] = StageResult(
            stage=stage, schedule=ctx.schedule, folded=ctx.folded)

    schedules = {name: r.schedule for name, r in results.items()}
    offsets = stage_offsets(pipeline, schedules)
    for name, result in results.items():
        result.offset = offsets[name]
    min_depths = min_channel_depths(pipeline, schedules)
    channels: Dict[str, Channel] = {}
    for name, chan in pipeline.channels.items():
        depth = chan.depth if chan.depth is not None else min_depths[name]
        channels[name] = chan.with_depth(depth)
    return ComposedPipeline(
        pipeline=pipeline, library=library, clock_ps=clock_ps,
        stages=results, channels=channels, min_depths=min_depths)
