"""Steady-state rate and channel-depth analysis.

Given the per-stage schedules, the composition's performance questions
reduce to token arithmetic:

* **Steady-state throughput.**  Back-pressure rate-matches every stage
  to the slowest one, so the composed initiation interval is simply the
  maximum stage II (de Fine Licht et al.: "the throughput of a
  dataflow region is limited by its slowest stage").  Multi-rate
  stages (e.g. a decimator popping two tokens per iteration) are
  normalized by their trip counts: a stage that runs half as many
  iterations per frame may take twice as long per iteration without
  slowing the frame.

* **Minimum channel depth.**  A token pushed at cycle ``P`` occupies a
  FIFO slot until its pop at cycle ``Q``; the minimum stall-free depth
  of a channel is the peak number of in-flight tokens at any push
  instant.  Under-sizing below this bound provably stalls the producer
  (at depth 0 a blocking pair deadlocks outright); over-sizing never
  improves throughput -- the bottleneck stage does not get faster by
  buffering more of its backlog.

Times are computed with exact rational arithmetic (`fractions`) because
multi-rate steady intervals are generally non-integral.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import TYPE_CHECKING, Dict, List

from repro.cdfg.ops import OpKind
from repro.dataflow.channel import DataflowError
from repro.dataflow.pipeline import Pipeline, Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schedule import Schedule

#: analysis horizon: tokens examined per channel (the occupancy pattern
#: is periodic with the frame, so a bounded prefix finds the peak).
_MAX_TOKENS = 256


def steady_state_ii(schedules: Dict[str, "Schedule"]) -> int:
    """Composed initiation interval: the slowest stage sets the pace."""
    return max(s.ii_effective for s in schedules.values())


def frame_cycles(pipeline: Pipeline,
                 schedules: Dict[str, "Schedule"]) -> int:
    """Cycles per *frame* (one full run's worth of iterations) at the
    steady state, ignoring warm-up: ``max over stages of trip x II``."""
    worst = 0
    for name, stage in pipeline.stages.items():
        trip = _trip(stage)
        worst = max(worst, trip * schedules[name].ii_effective)
    return worst


def _trip(stage: Stage) -> int:
    trip = stage.region.trip_count
    if trip is None:
        raise DataflowError(
            f"stage {stage.name}: rate analysis needs a trip count "
            f"(set_trip_count) on every stage")
    return trip


def steady_intervals(pipeline: Pipeline,
                     schedules: Dict[str, "Schedule"]) -> Dict[str, Fraction]:
    """Steady-state cycles between iteration starts, per stage.

    The bottleneck normalizes everything: with ``frame = max(trip x
    II)``, stage ``s`` issues every ``frame / trip_s`` cycles -- its own
    II when it *is* the bottleneck, slower (stalled by back-pressure or
    starvation) otherwise.
    """
    frame = frame_cycles(pipeline, schedules)
    return {name: Fraction(frame, _trip(stage))
            for name, stage in pipeline.stages.items()}


def _access_states(stage: Stage, schedule: "Schedule", channel: str,
                   kind: OpKind) -> List[int]:
    """Bound states of a channel's accesses, in token order."""
    ops = sorted(stage.region.channel_accesses(channel, kind),
                 key=lambda op: op.io_offset)
    return [schedule.state_of(op.uid) for op in ops]


def stage_offsets(pipeline: Pipeline,
                  schedules: Dict[str, "Schedule"]) -> Dict[str, int]:
    """Earliest steady-state issue offset of each stage's iteration 0.

    A consumer cannot start an iteration before the tokens it pops are
    in the FIFO; a token pushed in cycle ``P`` commits at the clock
    edge and becomes visible in cycle ``P + 1``.  Offsets bound the
    end-to-end latency of the composition (first-frame fill time).
    """
    intervals = steady_intervals(pipeline, schedules)
    offsets: Dict[str, Fraction] = {}
    for stage in pipeline.topo_order():
        earliest = Fraction(0)
        for channel in stage.region.input_channels:
            prod = pipeline.producer_of(channel)
            push_states = _access_states(prod, schedules[prod.name],
                                         channel, OpKind.PUSH)
            pop_states = _access_states(stage, schedules[stage.name],
                                        channel, OpKind.POP)
            t_prod = intervals[prod.name]
            for i, pop_state in enumerate(pop_states):
                # token i of the channel: pushed by producer iteration
                # i // n_p, its (i % n_p)-th push of the channel
                pushed = (offsets[prod.name]
                          + (i // len(push_states)) * t_prod
                          + push_states[i % len(push_states)])
                earliest = max(earliest, pushed + 1 - pop_state)
        offsets[stage.name] = earliest
    # math.ceil is exact on Fraction (integer arithmetic, no float)
    return {name: math.ceil(off) for name, off in offsets.items()}


def min_channel_depths(pipeline: Pipeline,
                       schedules: Dict[str, "Schedule"]) -> Dict[str, int]:
    """Minimum stall-free FIFO depth per channel at the steady state.

    For every token the analysis derives its push instant ``P`` (it
    occupies a slot from ``P`` on: the machine model stages pushes
    within the cycle and commits them at the edge) and its pop instant
    ``Q`` (the slot frees after the pop's cycle).  The required depth
    is the peak occupancy observed at any push instant; a producer
    pushing into a FIFO shallower than this bound finds it full and
    stalls, degrading the composed II below ``max(stage II)``.
    """
    intervals = steady_intervals(pipeline, schedules)
    offsets = {name: Fraction(off) for name, off
               in stage_offsets(pipeline, schedules).items()}
    depths: Dict[str, int] = {}
    for name in sorted(pipeline.channels):
        prod = pipeline.producer_of(name)
        cons = pipeline.consumer_of(name)
        push_states = _access_states(prod, schedules[prod.name],
                                     name, OpKind.PUSH)
        pop_states = _access_states(cons, schedules[cons.name],
                                    name, OpKind.POP)
        n_p, n_c = len(push_states), len(pop_states)
        total = min(_trip(prod) * n_p, _MAX_TOKENS)
        push_at: List[Fraction] = []
        pop_at: List[Fraction] = []
        for t in range(total):
            push_at.append(offsets[prod.name]
                           + (t // n_p) * intervals[prod.name]
                           + push_states[t % n_p])
            pop_at.append(offsets[cons.name]
                          + (t // n_c) * intervals[cons.name]
                          + pop_states[t % n_c])
        peak = 1
        for t in range(total):
            # occupancy the instant token t is pushed: everything pushed
            # no later whose pop has not completed yet
            live = sum(1 for u in range(total)
                       if push_at[u] <= push_at[t] < pop_at[u] + 1)
            peak = max(peak, live)
        depths[name] = peak
    return depths
