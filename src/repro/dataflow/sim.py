"""Simulation of composed dataflow pipelines.

Two levels, mirroring the single-kernel simulators:

* :func:`simulate_pipeline_reference` -- *token-stream* semantics: each
  stage runs under the golden sequential interpreter in dataflow order,
  and the token streams it pushes become the input streams of its
  consumers (unbounded FIFOs, no timing).  This is the oracle.

* :func:`simulate_pipeline_machine` -- *cycle-accurate* execution: every
  stage is a :class:`~repro.sim.machine.ScheduledMachine` ticked in
  lock-step; channels are depth-bounded FIFOs with single-cycle commit
  latency, a pop on an empty FIFO or a push on a full one freezes the
  issuing stage for the cycle (back-pressure as stall states), and FIFO
  occupancy high-water marks are recorded.  A composition that makes no
  progress for a grace window while work remains is reported as
  deadlocked -- which is exactly what an under-sized reconvergent
  channel (or a depth-0 channel) produces in hardware.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cdfg.ops import OpKind, Operation
from repro.dataflow.compose import ComposedPipeline
from repro.dataflow.pipeline import Pipeline
from repro.sim.machine import ScheduledMachine, _IterationCtx
from repro.sim.reference import (
    InputSource,
    SimResult,
    SimulationError,
    simulate_reference,
)


@dataclass
class PipelineSimResult:
    """Outputs and occupancy statistics of a composed simulation."""

    #: committed writes per external output port, in commit order.
    outputs: Dict[str, List[int]] = field(default_factory=dict)
    #: total cycles until the composition drained.
    cycles: int = 0
    #: per-stage results (iterations, stalled cycles, memories...).
    stage_results: Dict[str, SimResult] = field(default_factory=dict)
    #: per-channel FIFO occupancy high-water mark.
    peak_occupancy: Dict[str, int] = field(default_factory=dict)

    def output(self, port: str) -> List[int]:
        """Committed writes to an external port, in commit order."""
        return self.outputs.get(port, [])

    @property
    def stalled_cycles(self) -> int:
        """Back-pressure/starvation stalls summed over all stages."""
        return sum(r.stalled_cycles for r in self.stage_results.values())


class _Fifo:
    """A depth-bounded FIFO with clock-edge commit semantics.

    Pushes are staged during the cycle and become visible at the edge
    (`commit`), so a same-cycle consumer never sees them -- matching
    the RTL's registered FIFO.  Staged tokens already occupy slots for
    the full/free accounting (the hardware reserves the write slot).
    """

    def __init__(self, name: str, depth: int) -> None:
        self.name = name
        self.depth = depth
        self.queue: deque = deque()
        self.staged: List[int] = []
        self.peak = 0

    @property
    def available(self) -> int:
        """Tokens a pop can take this cycle."""
        return len(self.queue)

    @property
    def free(self) -> int:
        """Slots a push can take this cycle."""
        return self.depth - len(self.queue) - len(self.staged)

    def pop(self) -> int:
        """Consume the oldest committed token."""
        return self.queue.popleft()

    def push(self, value: int) -> None:
        """Stage one token for the coming clock edge."""
        self.staged.append(value)

    def commit(self) -> None:
        """Clock edge: staged tokens become visible."""
        if self.staged:
            self.queue.extend(self.staged)
            self.staged.clear()
        self.peak = max(self.peak, len(self.queue))


class _StageMachine(ScheduledMachine):
    """A stage machine whose channel accesses hit real FIFOs."""

    def __init__(self, schedule, inputs: InputSource,
                 fifos: Dict[str, _Fifo]) -> None:
        super().__init__(schedule, inputs)
        self._fifos = fifos

    def _pop_token(self, ctx: _IterationCtx, op: Operation) -> int:
        fifo = self._fifos.get(op.payload)
        if fifo is None:
            return super()._pop_token(ctx, op)
        return fifo.pop()

    def _push_token(self, ctx: _IterationCtx, op: Operation, value: int,
                    result: SimResult) -> None:
        fifo = self._fifos.get(op.payload)
        if fifo is None:
            super()._push_token(ctx, op, value, result)
            return
        fifo.push(value)

    def _stream_blocked(self, pending: List[Operation]) -> bool:
        # predicated pushes are counted even when their predicate would
        # evaluate false this iteration (the condition may not be
        # computed yet at stall-check time): a conservative stall the
        # RTL's pred-gated stall_req would skip -- value-exact, at most
        # cycle-pessimistic
        need: Dict[tuple, int] = {}
        for op in pending:
            if op.payload in self._fifos:
                key = (op.payload, op.kind)
                need[key] = need.get(key, 0) + 1
        for (channel, kind), count in need.items():
            fifo = self._fifos[channel]
            if kind is OpKind.POP and fifo.available < count:
                return True
            if kind is OpKind.PUSH and fifo.free < count:
                return True
        return False


def simulate_pipeline_machine(
    composed: ComposedPipeline,
    inputs: Optional[InputSource] = None,
    max_cycles: Optional[int] = None,
) -> PipelineSimResult:
    """Cycle-accurate run of a composed pipeline until it drains.

    Raises :class:`~repro.sim.reference.SimulationError` when the
    composition deadlocks: no stage makes progress for a full grace
    window although iterations remain -- the blocking-FIFO failure mode
    of an under-sized channel.
    """
    inputs = inputs or {}
    fifos = {name: _Fifo(name, chan.depth or 0)
             for name, chan in composed.channels.items()}
    machines: Dict[str, _StageMachine] = {}
    order = [s.name for s in composed.pipeline.topo_order()]
    for name in order:
        machines[name] = _StageMachine(
            composed.stages[name].schedule, inputs, fifos)
        machines[name]._begin(None)
    grace = sum(m.latency for m in machines.values()) + 16
    if max_cycles is None:
        budget = sum(m._limit * max(m.ii, 1) + m.latency
                     for m in machines.values())
        max_cycles = 4 * budget + grace
    result = PipelineSimResult()
    cycle = 0
    idle_streak = 0
    done: Dict[str, bool] = {name: False for name in order}
    while cycle < max_cycles:
        progressed = False
        for name in order:
            status = machines[name].tick()
            if status == "done":
                done[name] = True
            if status in ("running",):
                progressed = True
        for fifo in fifos.values():
            fifo.commit()
        cycle += 1
        if all(done.values()):
            break
        idle_streak = 0 if progressed else idle_streak + 1
        if idle_streak > grace:
            stalled = [name for name in order if not done[name]]
            raise SimulationError(
                f"{composed.pipeline.name}: deadlock after {cycle} "
                f"cycles -- stages {stalled} blocked on full/empty "
                f"channels (occupancy "
                f"{ {f.name: len(f.queue) for f in fifos.values()} })")
    else:
        raise SimulationError(
            f"{composed.pipeline.name}: did not drain within "
            f"{max_cycles} cycles")
    for name in order:
        stage_result = machines[name]._finish()
        result.stage_results[name] = stage_result
        for port, values in stage_result.outputs.items():
            if port in composed.channels:
                continue  # FIFO traffic, not an external output
            result.outputs.setdefault(port, []).extend(values)
    result.cycles = cycle
    result.peak_occupancy = {name: fifo.peak
                             for name, fifo in fifos.items()}
    return result


def simulate_pipeline_reference(
    pipeline: Pipeline,
    inputs: Optional[InputSource] = None,
    max_iterations: Optional[int] = None,
) -> PipelineSimResult:
    """Token-stream oracle: stages run sequentially in dataflow order.

    Channels are unbounded token lists; stage ``v`` simply sees the
    stream stage ``u`` pushed.  Timing-free by construction, this is
    the semantics every cycle-accurate composition must match on
    committed external outputs.
    """
    inputs = inputs or {}
    tokens: Dict[str, List[int]] = {}
    result = PipelineSimResult()
    for stage in pipeline.topo_order():
        region = stage.region

        def stage_input(port: str, index: int,
                        _tokens=tokens) -> int:
            if port in _tokens:
                stream = _tokens[port]
                if not stream:
                    return 0
                return stream[min(index, len(stream) - 1)]
            if callable(inputs):
                return inputs(port, index)
            stream = inputs.get(port, [])
            if not stream:
                return 0
            return stream[min(index, len(stream) - 1)]

        res = simulate_reference(region, stage_input,
                                 max_iterations=max_iterations)
        result.stage_results[stage.name] = res
        for port, values in res.outputs.items():
            if port in pipeline.channels:
                tokens[port] = values
            else:
                result.outputs.setdefault(port, []).extend(values)
    return result
