"""Channel-depth exploration for composed pipelines.

The streaming counterpart of the microarchitecture/clock sweep: one
composition per (depth assignment, clock) grid point, each verified
cycle-accurately, each reporting steady-state II, observed cycles,
stall counts and area.  Stage schedules are shared through one
:class:`~repro.flow.cache.FlowCache`, so the whole grid schedules every
distinct stage exactly once -- the depth axis only re-runs the (cheap)
composition pass and the machine simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.scheduler import SchedulerOptions
from repro.dataflow.compose import ComposedPipeline, compile_pipeline
from repro.dataflow.pipeline import Pipeline
from repro.dataflow.sim import simulate_pipeline_machine
from repro.explore.microarch import Microarch
from repro.sim.reference import InputSource, SimulationError
from repro.tech.library import Library


@dataclass(frozen=True)
class DepthSweepPoint:
    """One grid point of a channel-depth sweep."""

    label: str
    clock_ps: float
    depths: Dict[str, int]
    steady_state_ii: int
    cycles: int
    stalled_cycles: int
    area: float
    deadlocked: bool = False

    def row(self) -> List[object]:
        """Table row for reports."""
        return [self.label, f"{self.clock_ps:.0f}",
                self.steady_state_ii,
                "deadlock" if self.deadlocked else self.cycles,
                self.stalled_cycles, f"{self.area:.0f}"]


def sweep_channel_depths(
    pipeline_factory: Callable[[], Pipeline],
    library: Library,
    depth_points: Sequence[Dict[str, int]],
    clocks_ps: Sequence[float] = (1600.0,),
    inputs: Optional[InputSource] = None,
    options: Optional[SchedulerOptions] = None,
    cache: Optional["FlowCache"] = None,  # noqa: F821 - see flow.cache
) -> List[DepthSweepPoint]:
    """Compose + simulate the pipeline across a channel-depth grid.

    ``depth_points`` maps channel names to explicit depths (channels
    not mentioned keep their declared/auto depth).  Each point is
    labeled through :meth:`repro.explore.Microarch.with_channel_depth`
    so streaming sweeps speak the same microarchitecture vocabulary as
    the Figure 10 grid.  A point whose cycle-accurate run deadlocks
    (depth below the analyzed minimum on a blocking channel) is
    reported with ``deadlocked=True`` instead of being dropped.
    """
    from repro.flow.cache import FlowCache

    cache = cache if cache is not None else FlowCache()
    points: List[DepthSweepPoint] = []
    for clock_ps in clocks_ps:
        for depths in depth_points:
            pipeline = pipeline_factory()
            base = Microarch("stream", latency=1)
            micro = base.with_channel_depth(depths) if depths else base
            micro.apply_channel_depths(pipeline)
            composed = compile_pipeline(pipeline, library, clock_ps,
                                        options=options, cache=cache)
            try:
                sim = simulate_pipeline_machine(composed, inputs)
                cycles, stalled, dead = sim.cycles, sim.stalled_cycles, \
                    False
            except SimulationError:
                cycles, stalled, dead = 0, 0, True
            points.append(DepthSweepPoint(
                label=micro.name, clock_ps=clock_ps, depths=dict(depths),
                steady_state_ii=composed.steady_state_ii,
                cycles=cycles, stalled_cycles=stalled,
                area=composed.area, deadlocked=dead))
    return points
