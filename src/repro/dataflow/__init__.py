"""Streaming dataflow composition: FIFO-connected multi-kernel pipelines.

Realistic designs are compositions of kernels -- producer/consumer loop
nests talking through bounded FIFO streams, where system throughput is
set by the slowest stage's initiation interval and channel sizing
interacts with the stages' I/O schedules.  This package layers that
composition on top of the single-kernel engine:

* :class:`Channel` / :class:`Pipeline` -- the composition vocabulary
  (stages are ordinary regions using ``RegionBuilder.push``/``pop``).
* :func:`compile_pipeline` -- schedule every stage independently through
  the existing flows, then compose: steady-state II (= max stage II),
  stage offsets, end-to-end latency, auto-sized channel depths,
  aggregate area/power.
* :func:`min_channel_depths` and friends -- the rate/occupancy analysis.
* :func:`simulate_pipeline_reference` / :func:`simulate_pipeline_machine`
  -- token-stream oracle and cycle-accurate FIFO execution.
* :func:`generate_pipeline_verilog` -- per-stage modules wired by
  shift-register FIFOs with valid/ready handshakes.
* :func:`sweep_channel_depths` -- the channel-depth exploration axis.

Quickstart (see also ``examples/streaming_pipeline.py``)::

    >>> from repro.cdfg.builder import RegionBuilder
    >>> from repro.dataflow import Pipeline, simulate_pipeline_reference
    >>> b = RegionBuilder("square", is_loop=True)
    >>> x = b.read("x", 32)
    >>> _ = b.push("c", b.mul(x, x))
    >>> b.set_trip_count(4)
    >>> squarer = b.build()
    >>> b = RegionBuilder("offset", is_loop=True)
    >>> _ = b.write("y", b.add(b.pop("c", 32), 100))
    >>> b.set_trip_count(4)
    >>> offsetter = b.build()
    >>> pipe = Pipeline("quick")
    >>> _ = pipe.add_stage("square", squarer, ii=1)
    >>> _ = pipe.add_stage("offset", offsetter, ii=1)
    >>> out = simulate_pipeline_reference(pipe, {"x": [1, 2, 3, 4]})
    >>> out.output("y")
    [101, 104, 109, 116]
"""

from repro.dataflow.analysis import (
    frame_cycles,
    min_channel_depths,
    stage_offsets,
    steady_intervals,
    steady_state_ii,
)
from repro.dataflow.channel import Channel, DataflowError
from repro.dataflow.compose import (
    ComposedPipeline,
    StageResult,
    compile_pipeline,
    fifo_area,
    fifo_bits,
)
from repro.dataflow.pipeline import Pipeline, Stage
from repro.dataflow.rtl import generate_pipeline_verilog
from repro.dataflow.sim import (
    PipelineSimResult,
    simulate_pipeline_machine,
    simulate_pipeline_reference,
)
from repro.dataflow.sweep import DepthSweepPoint, sweep_channel_depths

__all__ = [
    "Channel",
    "ComposedPipeline",
    "DataflowError",
    "DepthSweepPoint",
    "Pipeline",
    "PipelineSimResult",
    "Stage",
    "StageResult",
    "compile_pipeline",
    "fifo_area",
    "fifo_bits",
    "frame_cycles",
    "generate_pipeline_verilog",
    "min_channel_depths",
    "simulate_pipeline_machine",
    "simulate_pipeline_reference",
    "stage_offsets",
    "steady_intervals",
    "steady_state_ii",
    "sweep_channel_depths",
]
