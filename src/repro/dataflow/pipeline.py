"""Multi-kernel dataflow pipelines.

A :class:`Pipeline` composes named kernel *stages* -- each an ordinary
:class:`~repro.cdfg.region.Region` -- into a DAG connected by typed FIFO
:class:`~repro.dataflow.channel.Channel`\\ s.  Connectivity is by name:
a region that pushes channel ``"c"`` is the producer of ``c``, the
region that pops ``"c"`` is its consumer, and validation checks the
result is a single-producer/single-consumer acyclic graph with
consistent widths and token rates.

Each stage is scheduled and pipelined *independently* through the
existing compilation flows (:func:`repro.dataflow.compose.compile_pipeline`);
the composition only has to reason about rates and FIFO depths, which
is the whole point of the dataflow discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cdfg.ops import OpKind
from repro.cdfg.region import PipelineSpec, Region
from repro.dataflow.channel import Channel, DataflowError


@dataclass
class Stage:
    """One kernel stage: a region plus its pipelining directive.

    ``ii=None`` leaves the stage sequential (II = latency); an integer
    pipelines it at that designer II, exactly like a standalone
    compilation would.
    """

    name: str
    region: Region
    ii: Optional[int] = None

    @property
    def pipeline(self) -> Optional[PipelineSpec]:
        """The stage's pipelining directive (None = sequential)."""
        return PipelineSpec(ii=self.ii) if self.ii is not None else None

    def pushes_per_iter(self, channel: str) -> int:
        """Tokens this stage pushes into ``channel`` per iteration."""
        return len(self.region.channel_accesses(channel, OpKind.PUSH))

    def pops_per_iter(self, channel: str) -> int:
        """Tokens this stage pops from ``channel`` per iteration."""
        return len(self.region.channel_accesses(channel, OpKind.POP))


class Pipeline:
    """A DAG of FIFO-connected kernel stages.

    Example -- a two-stage producer/consumer::

        >>> from repro.cdfg.builder import RegionBuilder
        >>> b = RegionBuilder("prod", is_loop=True)
        >>> _ = b.push("c", b.add(b.read("x", 32), 1))
        >>> b.set_trip_count(8)
        >>> producer = b.build()
        >>> b = RegionBuilder("cons", is_loop=True)
        >>> _ = b.write("y", b.mul(b.pop("c", 32), 3))
        >>> b.set_trip_count(8)
        >>> consumer = b.build()
        >>> pipe = Pipeline("pair")
        >>> _ = pipe.add_stage("prod", producer, ii=1)
        >>> _ = pipe.add_stage("cons", consumer, ii=1)
        >>> pipe.validate()
        >>> [s.name for s in pipe.topo_order()]
        ['prod', 'cons']
        >>> sorted(pipe.channels)
        ['c']
    """

    def __init__(self, name: str) -> None:
        self.name = name
        #: stages by name, in insertion order.
        self.stages: Dict[str, Stage] = {}
        #: explicitly declared channels by name (auto-completed by
        #: :meth:`channels` for connections only implied by the regions).
        self._declared: Dict[str, Channel] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_stage(self, name: str, region: Region,
                  ii: Optional[int] = None) -> Stage:
        """Add a kernel stage; connectivity is implied by channel names."""
        if name in self.stages:
            raise DataflowError(f"{self.name}: duplicate stage {name!r}")
        stage = Stage(name=name, region=region, ii=ii)
        self.stages[name] = stage
        return stage

    def channel(self, name: str, width: int = 32,
                depth: Optional[int] = None) -> Channel:
        """Explicitly declare a channel (to set its width or depth).

        Channels not declared here are auto-created by :meth:`channels`
        with the width of their accesses and ``depth=None`` (auto-sized
        at composition).
        """
        if name in self._declared:
            raise DataflowError(f"{self.name}: duplicate channel {name!r}")
        chan = Channel(name=name, width=width, depth=depth)
        self._declared[name] = chan
        return chan

    def set_depth(self, name: str, depth: int) -> None:
        """Override one channel's FIFO depth (the sweep/experiment knob)."""
        chan = self.channels.get(name)
        if chan is None:
            raise DataflowError(f"{self.name}: no channel {name!r}")
        self._declared[name] = chan.with_depth(depth)

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    @property
    def channels(self) -> Dict[str, Channel]:
        """All channels: declared ones plus those implied by the regions."""
        out: Dict[str, Channel] = dict(self._declared)
        for stage in self.stages.values():
            for op in stage.region.pushes + stage.region.pops:
                if op.payload not in out:
                    out[op.payload] = Channel(name=op.payload,
                                              width=op.width)
        return out

    def producer_of(self, channel: str) -> Optional[Stage]:
        """The unique stage pushing into ``channel`` (None if external)."""
        for stage in self.stages.values():
            if channel in stage.region.output_channels:
                return stage
        return None

    def consumer_of(self, channel: str) -> Optional[Stage]:
        """The unique stage popping from ``channel`` (None if external)."""
        for stage in self.stages.values():
            if channel in stage.region.input_channels:
                return stage
        return None

    def topo_order(self) -> List[Stage]:
        """Stages in dataflow order (producers before consumers)."""
        indeg: Dict[str, int] = {name: 0 for name in self.stages}
        succs: Dict[str, List[str]] = {name: [] for name in self.stages}
        for name in self.channels:
            prod, cons = self.producer_of(name), self.consumer_of(name)
            if prod is not None and cons is not None:
                succs[prod.name].append(cons.name)
                indeg[cons.name] += 1
        ready = [name for name in self.stages if indeg[name] == 0]
        order: List[Stage] = []
        while ready:
            name = ready.pop(0)
            order.append(self.stages[name])
            for succ in succs[name]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.stages):
            cyclic = sorted(set(self.stages) - {s.name for s in order})
            raise DataflowError(
                f"{self.name}: channel cycle through stages {cyclic} "
                f"(dataflow pipelines must be acyclic)")
        return order

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the composition invariants; raises :class:`DataflowError`.

        Covers: at least one stage; every channel has exactly one
        producer and one consumer stage; widths agree between the
        declaration, the pushes and the pops; the stage graph is
        acyclic; output port names are unique across stages; and token
        rates balance (``trip x pushes/iter == trip x pops/iter``
        whenever both trip counts are known).
        """
        if not self.stages:
            raise DataflowError(f"{self.name}: pipeline has no stages")
        for stage in self.stages.values():
            stage.region.validate()
        for name, chan in sorted(self.channels.items()):
            producers = [s for s in self.stages.values()
                         if name in s.region.output_channels]
            consumers = [s for s in self.stages.values()
                         if name in s.region.input_channels]
            if len(producers) != 1 or len(consumers) != 1:
                raise DataflowError(
                    f"{self.name}: channel {name!r} needs exactly one "
                    f"producer and one consumer stage, found "
                    f"{[s.name for s in producers]} -> "
                    f"{[s.name for s in consumers]}")
            prod, cons = producers[0], consumers[0]
            for op in (prod.region.channel_accesses(name, OpKind.PUSH)
                       + cons.region.channel_accesses(name, OpKind.POP)):
                if op.width != chan.width:
                    raise DataflowError(
                        f"{self.name}: channel {name!r} is {chan.width} "
                        f"bits but {op.name} accesses it at {op.width}")
            if (prod.region.trip_count is not None
                    and cons.region.trip_count is not None):
                produced = prod.region.trip_count \
                    * prod.pushes_per_iter(name)
                consumed = cons.region.trip_count \
                    * cons.pops_per_iter(name)
                if produced != consumed:
                    raise DataflowError(
                        f"{self.name}: channel {name!r} rate mismatch: "
                        f"{prod.name} produces {produced} tokens, "
                        f"{cons.name} consumes {consumed}")
        ports: Dict[str, str] = {}
        for stage in self.stages.values():
            for port in stage.region.output_ports:
                if port in ports:
                    raise DataflowError(
                        f"{self.name}: output port {port!r} written by "
                        f"both {ports[port]} and {stage.name}")
                ports[port] = stage.name
        self.topo_order()  # raises on cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Pipeline({self.name}, stages={list(self.stages)}, "
                f"channels={sorted(self.channels)})")
