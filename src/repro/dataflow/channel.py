"""Typed FIFO channels between dataflow stages.

A :class:`Channel` is the only way two kernel stages of a
:class:`~repro.dataflow.pipeline.Pipeline` communicate: the producer
stage pushes tokens with :meth:`~repro.cdfg.builder.RegionBuilder.push`,
the consumer pops them with
:meth:`~repro.cdfg.builder.RegionBuilder.pop`, and the hardware between
them is a depth-bounded FIFO with valid/ready handshakes.  Blocking
semantics close the loop: a pop on an empty FIFO (or a push on a full
one) freezes the whole issuing stage for that cycle, which is how
back-pressure propagates and why system throughput settles at the
slowest stage's initiation interval.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


class DataflowError(ValueError):
    """Raised on malformed pipelines (dangling channels, rate bugs...)."""


@dataclass(frozen=True)
class Channel:
    """One FIFO connecting a producer stage to a consumer stage.

    Attributes
    ----------
    name:
        The channel's name; ``push``/``pop`` operations address it by
        this string (their payload).
    width:
        Token width in bits.  Must match every push and pop touching
        the channel.
    depth:
        FIFO capacity in tokens.  ``None`` means *auto*: composition
        sizes the channel to the minimum depth that avoids stalls at
        the analyzed steady state (see
        :func:`repro.dataflow.analysis.min_channel_depths`).  An
        explicit depth is honored even when it is smaller -- that is
        the knob the under-sizing experiments turn.

    Example::

        >>> Channel("c", width=16).with_depth(4)
        Channel(name='c', width=16, depth=4)
    """

    name: str
    width: int = 32
    depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise DataflowError(f"channel {self.name}: width must be > 0")
        if self.depth is not None and self.depth < 0:
            raise DataflowError(
                f"channel {self.name}: depth must be >= 0 (0 models an "
                f"unbuffered wire, which always deadlocks a blocking "
                f"producer/consumer pair)")

    def with_depth(self, depth: int) -> "Channel":
        """A copy of this channel at another FIFO capacity."""
        return replace(self, depth=depth)
