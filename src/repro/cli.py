"""Command-line driver: ``python -m repro <command> ...``.

Commands
--------
profile    schedule a named workload under cProfile + scheduler counters
schedule   compile a mini-language source file and schedule its loops
serve      boot the synthesis-as-a-service HTTP job server
stream     compose, verify and report a named streaming pipeline
submit     submit a job to a running service (and optionally wait)
sweep      run a microarchitecture/clock exploration on a named workload
table      print a paper table (1, 2 or 3) from the calibrated library
trace      schedule a workload with tracing on; write + summarize spans
tune       goal-directed autotuning (delay/area/power constraints)
verilog    compile + schedule + emit RTL to stdout or a file
workloads  list the named kernels and streaming pipelines

The CLI is a thin veneer over the unified compilation pipeline
(:mod:`repro.flow`) so shell users (and CI scripts) can exercise the
flows without writing Python.

Conventions every subcommand follows: ``--json`` switches the output to
a machine-readable record on stdout (including on *every* failure
path: errors print a ``{"error": {...}}`` record), and the exit status
is one of the taxonomy below -- distinct per failure mode so shell
pipelines can branch without parsing messages:

====  =================================================================
code  meaning
====  =================================================================
0     success
1     the work ran but failed on its own terms (infeasible schedule,
      all-infeasible sweep, unsatisfied goal, unverified pipeline,
      failed/cancelled service job)
2     argparse usage errors (unknown flags, missing arguments)
3     bad input (unknown workload/library/pipeline/strategy, malformed
      microarch or clock spec, invalid goal, unreadable file, wrong
      kernel count) -- rejected before any work ran
4     frontend errors (the source file failed to compile)
5     service unreachable / HTTP transport failure (``submit``)
6     deadline expired waiting for a service job (``submit --wait``)
====  =================================================================
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from repro import profiling
from repro.cdfg.region import PipelineSpec, Region
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer
from repro.core.pipeline import pipeline_loop
from repro.core.schedule import ScheduleError
from repro.core.scheduler import schedule_region
from repro.explore import Microarch
from repro.flow import get_flow, run_sweep
from repro.flow.context import CompilationContext
from repro.frontend import FrontendError, compile_source
from repro.rtl import schedule_report
from repro.rtl.reports import format_table, pareto_header
from repro.tech import Library, artisan90, generic45
from repro.workloads import (
    PIPELINE_INPUTS,
    PIPELINE_REGISTRY,
    WORKLOAD_REGISTRY,
    build_example1,
)

#: workloads addressable from the command line (the shared registry).
WORKLOADS: Dict[str, Callable[[], Region]] = WORKLOAD_REGISTRY

LIBRARIES: Dict[str, Callable[[], Library]] = {
    "artisan90": artisan90,
    "generic45": generic45,
}

# the exit-code taxonomy (see the module docstring).
EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_BAD_INPUT = 3
EXIT_FRONTEND = 4
EXIT_SERVICE = 5
EXIT_TIMEOUT = 6


class CLIError(Exception):
    """A rejected invocation: carries the exit code + a JSON record.

    Raised by any subcommand for problems detected before (or outside)
    the actual synthesis work; :func:`main` turns it into a message on
    stderr, an ``{"error": ...}`` record on stdout under ``--json``,
    and the taxonomy exit code.
    """

    def __init__(self, message: str, code: int = EXIT_BAD_INPUT,
                 reason: str = "bad-input", **extra) -> None:
        super().__init__(message)
        self.code = code
        self.reason = reason
        self.extra = extra

    def record(self) -> dict:
        return {"error": dict(self.extra, code=self.code,
                              reason=self.reason, message=str(self))}


def _library(name: str) -> Library:
    try:
        return LIBRARIES[name]()
    except KeyError:
        raise CLIError(f"unknown library {name!r}; "
                       f"choose from {sorted(LIBRARIES)}",
                       reason="unknown-library")


def _print_failure(ctx: CompilationContext) -> None:
    for diag in ctx.errors:
        print(f"{ctx.region.name if ctx.region else '<frontend>'}: "
              f"FAILED -- {diag.message}", file=sys.stderr)
        for line in diag.details:
            print(f"  {line}", file=sys.stderr)


def _compile_file(path: str):
    """Compile a source file of either kind (legacy or ``.py``).

    Raises :class:`FrontendError` (with the caret diagnostic attached)
    on bad source, :class:`CLIError` on unreadable files.
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise CLIError(f"cannot read {path}: {exc}",
                       reason="unreadable-source")
    return compile_source(text, filename=path)


def _source_contexts(args: argparse.Namespace, library: Library,
                     run_optimizer: bool) -> List[CompilationContext]:
    """One unrun context per loop of the source file / named workload."""
    contexts: List[CompilationContext] = []
    if args.source in WORKLOADS:
        contexts.append(CompilationContext(
            library=library, clock_ps=args.clock,
            region=WORKLOADS[args.source](),
            pipeline=PipelineSpec(ii=args.ii) if args.ii is not None
            else None,
            run_optimizer=run_optimizer))
        return contexts
    for loop in _compile_file(args.source):
        pipeline = PipelineSpec(ii=args.ii) if args.ii is not None \
            else loop.pipeline
        contexts.append(CompilationContext(
            library=library, clock_ps=args.clock, region=loop.region,
            pipeline=pipeline, run_optimizer=run_optimizer))
    return contexts


def _resolve_workload(spec: str) -> Callable[[], Region]:
    """A region factory from a workload name or a source file path.

    Source files must contain exactly one kernel (sweeps and tuning
    operate on a single region).  The factory recompiles per call so
    every invocation gets a fresh, unmutated region; fingerprints stay
    identical across calls, so caching still works.
    """
    factory = WORKLOADS.get(spec)
    if factory is not None:
        return factory
    if not (spec.endswith(".py") or os.path.exists(spec)):
        raise CLIError(f"unknown workload {spec!r}; choose from "
                       f"{sorted(WORKLOADS)} or pass a source file",
                       reason="unknown-workload")
    units = _compile_file(spec)  # FrontendError propagates to main()
    if len(units) != 1:
        raise CLIError(
            f"{spec}: sweeps need exactly one kernel, found "
            f"{[u.region.name for u in units]}",
            reason="kernel-count")
    return lambda: _compile_file(spec)[0].region


def _write_trace(tracer: Optional[Tracer],
                 path: Optional[str]) -> None:
    """Write + announce a ``--trace FILE`` capture (stderr, so JSON
    stdout stays machine-readable)."""
    if tracer is None or path is None:
        return
    tracer.write(path)
    print(f"wrote trace {path} ({len(tracer)} spans)", file=sys.stderr)


def cmd_schedule(args: argparse.Namespace) -> int:
    """Compile and schedule a source file (or a named workload)."""
    library = _library(args.library)
    flow = get_flow("pipeline")
    if args.profile:
        profiling.reset()
    tracer = Tracer() if args.trace else None
    contexts = _source_contexts(args, library,
                                run_optimizer=not args.no_optimize)
    for ctx in contexts:
        ctx.tracer = tracer
        flow.run(ctx)
        if ctx.failed:
            if args.json:
                print(json.dumps({"error": {
                    "code": EXIT_FAILED, "reason": "infeasible",
                    "message": "scheduling failed",
                    "diagnostics": [str(d) for d in ctx.errors],
                }}, indent=2))
            _print_failure(ctx)
            if args.profile:
                print(profiling.report(), file=sys.stderr)
            _write_trace(tracer, args.trace)  # a failing run's trace
            return EXIT_FAILED                # is the interesting one
        if args.json:
            print(json.dumps(ctx.schedule.summary(), indent=2))
        else:
            print(schedule_report(ctx.schedule))
            print()
    if args.profile:
        # stderr, so --json stdout stays machine-readable
        print(profiling.report(), file=sys.stderr)
    _write_trace(tracer, args.trace)
    return 0


def _profile_sweep(args: argparse.Namespace, library) -> int:
    """``repro profile --sweep``: one grid through the sweep engine,
    reporting the sweep-layer counters (variant builds, warm-start
    accepts/fallbacks, pickled bytes, worker cache traffic)."""
    import time

    factory = _resolve_workload(args.workload)
    clocks = _parse_clocks(args.clocks)
    micros = _parse_microarchs(args.latencies)
    profiling.reset()
    start = time.perf_counter()
    result = run_sweep(factory, library, micros, clocks, jobs=args.jobs,
                       backend=args.backend)
    wall = time.perf_counter() - start
    table = profiling.snapshot()
    if args.json:
        print(json.dumps({
            "workload": args.workload,
            "wall_s": round(wall, 4),
            "sweep": result.summary(),
            "counters": dict(sorted(table.items())),
            "gauges": REGISTRY.gauges(),
            "histograms": REGISTRY.histogram_summaries(),
        }, indent=2))
    else:
        print(profiling.report(table))
        print(f"\n{args.workload}: {len(result.points)} of "
              f"{result.total} points feasible, backend "
              f"{result.backend}, jobs {result.jobs}, {wall:.3f}s")
        for key, value in sorted(result.profile.items()):
            if key != "workers":
                print(f"  {key}: {value}")
    return 0 if result.points else 1


def cmd_profile(args: argparse.Namespace) -> int:
    """Schedule a named workload under cProfile and report both the
    Python-level hot spots and the scheduler's own phase counters."""
    import cProfile
    import io
    import pstats
    import time

    library = _library(args.library)
    if args.sweep:
        return _profile_sweep(args, library)
    region = _resolve_workload(args.workload)()
    pipeline = PipelineSpec(ii=args.ii) if args.ii is not None else None
    profiling.reset()
    prof = cProfile.Profile()
    error: Optional[ScheduleError] = None
    schedule = None
    start = time.perf_counter()
    prof.enable()
    try:
        schedule = schedule_region(region, library, args.clock,
                                   pipeline=pipeline)
    except ScheduleError as exc:
        error = exc
    finally:
        prof.disable()
    wall = time.perf_counter() - start
    table = profiling.snapshot()
    if args.json:
        record = {
            "workload": args.workload,
            "clock_ps": args.clock,
            "wall_s": round(wall, 4),
            "feasible": schedule is not None,
            "counters": dict(sorted(table.items())),
            "gauges": REGISTRY.gauges(),
            "histograms": REGISTRY.histogram_summaries(),
        }
        if schedule is not None:
            record["passes"] = schedule.passes
            record["latency"] = schedule.latency
        else:
            record["error"] = str(error)
        print(json.dumps(record, indent=2))
    else:
        stream = io.StringIO()
        pstats.Stats(prof, stream=stream) \
            .sort_stats("cumulative").print_stats(args.top)
        print(stream.getvalue().rstrip())
        print()
        print(profiling.report(table))
        if schedule is not None:
            print(f"\n{args.workload}: {schedule.passes} passes, "
                  f"latency {schedule.latency}, {wall:.3f}s")
        else:
            print(f"\n{args.workload}: FAILED after {wall:.3f}s -- {error}",
                  file=sys.stderr)
    return 0 if schedule is not None else 1


def cmd_verilog(args: argparse.Namespace) -> int:
    """Compile, schedule and emit Verilog RTL."""
    library = _library(args.library)
    (ctx,) = _source_contexts(args, library, run_optimizer=False)
    get_flow("verilog").run(ctx)
    if ctx.failed:
        if args.json:
            print(json.dumps({"error": {
                "code": EXIT_FAILED, "reason": "infeasible",
                "message": "scheduling failed",
                "context": ctx.summary(),
            }}, indent=2))
        else:
            _print_failure(ctx)
        return EXIT_FAILED
    text = ctx.rtl
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    if args.json:
        print(json.dumps({
            "module": ctx.region.name,
            "lines": len(text.splitlines()),
            "output": args.output,
            "rtl": None if args.output else text,
        }, indent=2))
    elif args.output:
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


def _parse_microarchs(spec_text: Optional[str]) -> List[Microarch]:
    """Microarch axis from a ``lat[,lat:ii,...]`` spec (shared with the
    service's job-body validation, so both reject identically)."""
    from repro.service.execution import parse_microarchs
    from repro.service.jobs import JobError

    try:
        return parse_microarchs(spec_text)
    except JobError as exc:
        raise CLIError(str(exc), reason="bad-microarch")


def _parse_clocks(spec_text: str) -> List[float]:
    try:
        clocks = [float(c) for c in spec_text.split(",") if c.strip()]
    except ValueError:
        raise CLIError(f"bad clock list {spec_text!r} "
                       f"(want comma-separated picoseconds)",
                       reason="bad-clock")
    if not clocks:
        raise CLIError("empty clock list", reason="bad-clock")
    return clocks


def _load_cache(path: Optional[str]):
    """A FlowCache warmed from ``path`` (fresh when absent/None)."""
    from repro.flow import FlowCache

    if path is None:
        return None
    return FlowCache.load(path)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Microarchitecture x clock exploration on a named workload."""
    library = _library(args.library)
    factory = _resolve_workload(args.workload)
    clocks = _parse_clocks(args.clocks)
    micros = _parse_microarchs(args.latencies)
    cache = _load_cache(args.cache)
    tracer = Tracer() if args.trace else None
    result = run_sweep(factory, library, micros, clocks, jobs=args.jobs,
                       cache=cache, backend=args.backend, tracer=tracer)
    if cache is not None:
        cache.save(args.cache)
    _write_trace(tracer, args.trace)
    status = 0 if result.points else 1  # an all-infeasible grid failed
    if args.json:
        print(json.dumps(result.summary(), indent=2))
        return status
    print(format_table(pareto_header(), [p.row() for p in result.points]))
    print(f"\n{len(result.points)} of {result.total} configurations "
          f"feasible ({len(result.infeasible)} infeasible)")
    for q in result.infeasible:
        print(f"  {q.describe()}")
    return status


def cmd_tune(args: argparse.Namespace) -> int:
    """Goal-directed autotuning over the microarch x clock space."""
    from repro.dse import DesignSpace, Goal, GoalError, ResultStore, tune

    library = _library(args.library)
    factory = _resolve_workload(args.workload)
    objective = args.objective
    if objective is None:
        # a delay budget usually means "smallest design meeting it";
        # otherwise chase speed under the remaining budgets.
        objective = "area" if args.delay_ps is not None else "delay"
    try:
        goal = Goal.build(objective=objective, delay_ps=args.delay_ps,
                          max_area=args.max_area,
                          max_power_mw=args.max_power_mw)
    except GoalError as exc:
        raise CLIError(f"invalid goal: {exc}", reason="invalid-goal")
    space = DesignSpace(
        tuple(_parse_microarchs(args.latencies)),
        tuple(_parse_clocks(args.clocks)))
    store = ResultStore(args.store) if args.store else None
    cache = _load_cache(args.cache)
    tracer = Tracer() if args.trace else None
    report = tune(factory, library, goal, space=space,
                  strategy=args.strategy, cache=cache, store=store,
                  jobs=args.jobs, tracer=tracer)
    if cache is not None:
        cache.save(args.cache)
    _write_trace(tracer, args.trace)
    if args.json:
        print(json.dumps(report.summary(), indent=2))
    else:
        print(report.table())
    return 0 if report.satisfied else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Schedule a workload with tracing on; write + summarize spans."""
    library = _library(args.library)
    flow = get_flow("pipeline")
    tracer = Tracer()
    contexts = _source_contexts(args, library,
                                run_optimizer=not args.no_optimize)
    failed = False
    for ctx in contexts:
        ctx.tracer = tracer
        flow.run(ctx)
        if ctx.failed:
            failed = True
            _print_failure(ctx)
    base = os.path.basename(args.source).rsplit(".", 1)[0]
    out = args.output or f"{base}.trace.json"
    tracer.write(out)
    by_name: Dict[str, Dict[str, float]] = {}
    for span in tracer.export():
        rec = by_name.setdefault(span["name"],
                                 {"count": 0, "total_s": 0.0})
        rec["count"] += 1
        rec["total_s"] += span["dur"]
    if args.json:
        print(json.dumps({
            "source": args.source,
            "spans": len(tracer),
            "output": out,
            "failed": failed,
            "by_name": {name: {"count": int(rec["count"]),
                               "total_s": round(rec["total_s"], 6)}
                        for name, rec in sorted(by_name.items())},
        }, indent=2))
    else:
        rows = [[name, int(rec["count"]), f"{rec['total_s']:.4f}"]
                for name, rec in sorted(by_name.items())]
        print(format_table(["span", "count", "total_s"], rows))
        print(f"\nwrote {out} ({len(tracer)} spans)")
    return EXIT_FAILED if failed else EXIT_OK


def cmd_table(args: argparse.Namespace) -> int:
    """Print a calibration table from the paper."""
    library = _library(args.library)
    if args.number == 1:
        row = library.table1()
        if args.json:
            print(json.dumps({"table": 1, "row": row}, indent=2))
        else:
            print(format_table(list(row), [list(row.values())]))
        return 0
    if args.number == 2:
        schedule = schedule_region(build_example1(), library, 1600.0)
        if args.json:
            print(json.dumps({"table": 2,
                              "schedule": schedule.summary()}, indent=2))
        else:
            print(schedule.table())
        return 0
    if args.number == 3:
        seq = schedule_region(build_example1(), library, 1600.0)
        p2 = pipeline_loop(build_example1(), library, 1600.0, ii=2).schedule
        p1 = pipeline_loop(build_example1(), library, 1600.0, ii=1).schedule
        if args.json:
            print(json.dumps({"table": 3, "columns": {
                "S": {"cycles_per_iter": seq.ii_effective,
                      "area": round(seq.area)},
                "P2": {"cycles_per_iter": p2.ii_effective,
                       "area": round(p2.area)},
                "P1": {"cycles_per_iter": p1.ii_effective,
                       "area": round(p1.area)},
            }}, indent=2))
        else:
            print(format_table(
                ["", "S", "P2", "P1"],
                [["cycles/iter", seq.ii_effective, p2.ii_effective,
                  p1.ii_effective],
                 ["area", round(seq.area), round(p2.area),
                  round(p1.area)]]))
        return 0
    raise CLIError("table number must be 1, 2 or 3",
                   reason="bad-table")


def cmd_workloads(args: argparse.Namespace) -> int:
    """List the workload registry with basic region statistics."""
    rows = []
    for name in sorted(WORKLOADS):
        region = WORKLOADS[name]()
        stats = region.dfg.stats()
        rows.append([name, region.name, stats["total"], stats["edges"],
                     f"{region.min_latency}..{region.max_latency}",
                     "loop" if region.is_loop else "block"])
    pipe_rows = []
    for name in sorted(PIPELINE_REGISTRY):
        pipe = PIPELINE_REGISTRY[name]()
        pipe_rows.append([name, len(pipe.stages), len(pipe.channels),
                          " -> ".join(pipe.stages)])
    if args.json:
        print(json.dumps({
            "workloads": {r[0]: {
                "region": r[1], "ops": r[2], "edges": r[3],
                "latency": r[4], "kind": r[5]} for r in rows},
            "pipelines": {r[0]: {
                "stages": r[1], "channels": r[2], "topology": r[3]}
                for r in pipe_rows},
        }, indent=2))
        return 0
    print(format_table(
        ["workload", "region", "ops", "edges", "latency", "kind"], rows))
    print()
    print(format_table(["pipeline", "stages", "channels", "topology"],
                       pipe_rows))
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Compose a named streaming pipeline, verify it, print the report."""
    from repro.dataflow import (
        compile_pipeline,
        generate_pipeline_verilog,
        simulate_pipeline_machine,
        simulate_pipeline_reference,
    )

    library = _library(args.library)
    factory = PIPELINE_REGISTRY.get(args.pipeline)
    if factory is None:
        raise CLIError(f"unknown pipeline {args.pipeline!r}; "
                       f"choose from {sorted(PIPELINE_REGISTRY)}",
                       reason="unknown-pipeline")
    pipeline = factory()
    composed = compile_pipeline(pipeline, library, clock_ps=args.clock)
    inputs = PIPELINE_INPUTS.get(args.pipeline, dict)()
    oracle = simulate_pipeline_reference(factory(), inputs)
    machine = simulate_pipeline_machine(composed, inputs)
    verified = machine.outputs == oracle.outputs
    if args.json:
        summary = composed.summary()
        summary["cycles"] = machine.cycles
        summary["stalled_cycles"] = machine.stalled_cycles
        summary["verified"] = verified
        summary["output"] = args.output
        print(json.dumps(summary, indent=2))
    else:
        print(composed.table())
        print(f"machine simulation: {machine.cycles} cycles, "
              f"{machine.stalled_cycles} stalled; outputs "
              f"{'MATCH' if verified else 'DIFFER from'} the token oracle")
    if args.output:
        text = generate_pipeline_verilog(composed)
        with open(args.output, "w") as handle:
            handle.write(text)
        if not args.json:
            print(f"wrote {args.output} "
                  f"({len(text.splitlines())} lines)")
    return 0 if verified else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the synthesis-as-a-service HTTP job server (blocking)."""
    from repro.service import ReproService

    service = ReproService(
        host=args.host, port=args.port, workers=args.workers,
        mode=args.mode, job_timeout_s=args.timeout,
        max_retries=args.retries, store_path=args.store,
        cache_path=args.cache)
    service.start()
    print(f"serving on {service.url} -- {args.workers} workers, "
          f"mode {service.engine.mode} (ctrl-c to stop)",
          file=sys.stderr)
    if args.json:
        print(json.dumps({"url": service.url, "port": service.port,
                          "workers": args.workers,
                          "mode": service.engine.mode}), flush=True)
    import signal
    import threading
    stop = threading.Event()
    # SIGTERM (docker stop, systemd) must shut down as cleanly as
    # ctrl-c: stop the engine and compact the result store shards
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return EXIT_OK


def _submit_params(args: argparse.Namespace) -> dict:
    """A job body from ``repro submit`` flags (kind-appropriate)."""
    params: dict = {"library": args.library}
    if args.kind == "stream":
        params["pipeline"] = args.target
        params["clock_ps"] = args.clock
        return params
    if args.target.endswith(".py") or os.path.exists(args.target):
        # ship the text, not the path: the server has no file access
        try:
            with open(args.target) as handle:
                params["source"] = handle.read()
        except OSError as exc:
            raise CLIError(f"cannot read {args.target}: {exc}",
                           reason="unreadable-source")
    else:
        params["workload"] = args.target
    if args.kind == "schedule":
        params["clock_ps"] = args.clock
        params["ii"] = args.ii
    else:  # sweep / tune share the grid axes
        params["clocks_ps"] = args.clocks
        params["latencies"] = args.latencies
    if args.kind == "tune":
        params.update(strategy=args.strategy, delay_ps=args.delay_ps,
                      max_area=args.max_area,
                      max_power_mw=args.max_power_mw,
                      objective=args.objective)
    return params


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running service; optionally wait + fetch."""
    from urllib.error import URLError

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    params = _submit_params(args)
    try:
        job = client.submit(args.kind, priority=args.priority, **params)
        if args.no_wait:
            print(json.dumps(job, indent=2) if args.json
                  else f"{job['id']} {job['state']}"
                       + (" (deduplicated)" if job.get("deduplicated")
                          else ""))
            return EXIT_OK
        final = client.wait(job["id"], timeout=args.timeout)
        state = final["state"]
        if state == "done":
            payload = client.result(job["id"])
            payload["deduplicated"] = job.get("deduplicated", False)
            print(json.dumps(payload, indent=2) if args.json
                  else f"{job['id']} done")
            return EXIT_OK
        # failed / cancelled: the status record carries the error
        if args.json:
            print(json.dumps(final, indent=2))
        else:
            error = final.get("error") or {}
            print(f"{job['id']} {state}: "
                  f"{error.get('reason', state)}", file=sys.stderr)
        return EXIT_FAILED
    except ServiceError as err:
        if err.status == 400:
            raise CLIError(str(err), reason="rejected",
                           detail=err.payload)
        raise CLIError(f"service error HTTP {err.status}: {err}",
                       code=EXIT_SERVICE, reason="service-error",
                       detail=err.payload)
    except TimeoutError as err:
        raise CLIError(str(err), code=EXIT_TIMEOUT,
                       reason="deadline")
    except (URLError, ConnectionError, OSError) as err:
        raise CLIError(f"cannot reach service at {args.url}: {err}",
                       code=EXIT_SERVICE, reason="unreachable")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Realistic performance-constrained pipelining in HLS "
                    "(DATE 2011 reproduction)")
    parser.add_argument("--library", default="artisan90",
                        help="technology library (artisan90 | generic45)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="compile and schedule")
    p.add_argument("source", help="source file (mini-language or .py "
                                  "Python subset) or workload name")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--json", action="store_true")
    p.add_argument("--no-optimize", action="store_true")
    p.add_argument("--profile", action="store_true",
                   help="print the scheduler's phase counters (stderr)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a span trace here (.jsonl for the line "
                        "format, anything else for Chrome trace_event)")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser(
        "trace", help="schedule with tracing on; write + summarize "
                      "the span tree")
    p.add_argument("source", help="source file (mini-language or .py "
                                  "Python subset) or workload name")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--no-optimize", action="store_true")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="trace file (default <workload>.trace.json; "
                        ".jsonl selects the line format)")
    p.add_argument("--json", action="store_true",
                   help="emit the span summary as JSON")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "profile", help="profile scheduling a named workload")
    p.add_argument("workload", help="workload name (see `workloads`)")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--sweep", action="store_true",
                   help="profile a sweep grid instead of one schedule "
                        "(surfaces the sweep-layer counters)")
    p.add_argument("--clocks", default="1000,1250,1600,2100,2800",
                   help="clock axis for --sweep")
    p.add_argument("--latencies", default=None,
                   help="microarch axis for --sweep (e.g. 8,16,32:16)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for --sweep")
    p.add_argument("--backend", default=None,
                   choices=("context", "process", "thread"),
                   help="sweep backend override for --sweep")
    p.add_argument("--top", type=int, default=15,
                   help="cProfile rows to print (default 15)")
    p.add_argument("--json", action="store_true",
                   help="emit wall time + counters as JSON (no cProfile)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("verilog", help="emit RTL")
    p.add_argument("source", help="source file (mini-language or .py "
                                  "Python subset) or workload name")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--output", default=None)
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable record instead of RTL")
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser("sweep", help="microarchitecture/clock exploration")
    p.add_argument("workload", help="workload name or .py source file")
    p.add_argument("--clocks", default="1000,1250,1600,2100,2800")
    p.add_argument("--latencies", default=None,
                   help="e.g. 8,16,32:16 (lat or lat:ii, comma separated)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel scheduling workers (default 1 = serial)")
    p.add_argument("--backend", default=None,
                   choices=("context", "process", "thread"),
                   help="sweep backend (default: context, or process "
                        "when --jobs > 1 on multicore hosts)")
    p.add_argument("--cache", default=None,
                   help="persist the flow cache here across runs")
    p.add_argument("--json", action="store_true",
                   help="emit the full sweep record as JSON")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a span trace here (.jsonl for the line "
                        "format, anything else for Chrome trace_event)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "tune", help="goal-directed autotuning over microarch x clock")
    p.add_argument("workload", help="workload name or .py source file")
    p.add_argument("--delay-ps", type=float, default=None,
                   help="constraint: delay <= this many picoseconds")
    p.add_argument("--max-area", type=float, default=None,
                   help="constraint: area <= this many library units")
    p.add_argument("--max-power-mw", type=float, default=None,
                   help="constraint: average power <= this many mW")
    p.add_argument("--objective", default=None,
                   choices=("area", "delay", "power"),
                   help="metric to minimize (default: area when a delay"
                        " budget is given, delay otherwise)")
    p.add_argument("--strategy", default="greedy",
                   choices=("exhaustive", "bisect", "greedy", "halving"),
                   help="search strategy (default greedy)")
    p.add_argument("--clocks", default="1000,1250,1600,2100,2800")
    p.add_argument("--latencies", default=None,
                   help="e.g. 8,16,32:16 (lat or lat:ii, comma separated)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel scheduling workers for batched waves")
    p.add_argument("--store", default=None,
                   help="persistent JSONL result store (warm-starts "
                        "tuning across processes)")
    p.add_argument("--cache", default=None,
                   help="persist the flow cache here across runs")
    p.add_argument("--json", action="store_true",
                   help="emit the full tuning report as JSON")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a span trace here (.jsonl for the line "
                        "format, anything else for Chrome trace_event)")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("stream",
                       help="compose + verify a streaming pipeline")
    p.add_argument("pipeline", help="pipeline name (see `workloads`)")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--json", action="store_true")
    p.add_argument("--output", default=None,
                   help="also write the composed Verilog here")
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser(
        "serve", help="boot the synthesis-as-a-service job server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8473,
                   help="bind port (0 = ephemeral; default 8473)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent jobs (supervisor threads)")
    p.add_argument("--mode", default="process",
                   choices=("process", "inline"),
                   help="worker isolation (default: process)")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-attempt wall budget in seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts after a worker crash/timeout")
    p.add_argument("--store", default=None,
                   help="shared JSONL result store path")
    p.add_argument("--cache", default=None,
                   help="shared flow-cache pickle path")
    p.add_argument("--json", action="store_true",
                   help="print a bound-address record once serving")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a job to a running service")
    p.add_argument("kind", choices=("schedule", "sweep", "tune",
                                    "stream"))
    p.add_argument("target", help="workload name, .py source file, or "
                                  "pipeline name (kind=stream)")
    p.add_argument("--url", default="http://127.0.0.1:8473",
                   help="service base URL")
    p.add_argument("--priority", type=int, default=0,
                   help="larger runs earlier (default 0)")
    p.add_argument("--no-wait", action="store_true",
                   help="return after submission instead of waiting")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="deadline for --wait polling (seconds)")
    p.add_argument("--clock", type=float, default=1600.0,
                   help="clock for schedule/stream jobs")
    p.add_argument("--ii", type=int, default=None,
                   help="initiation interval for schedule jobs")
    p.add_argument("--clocks", default=None,
                   help="clock axis for sweep/tune jobs")
    p.add_argument("--latencies", default=None,
                   help="microarch axis for sweep/tune jobs")
    p.add_argument("--strategy", default="greedy",
                   choices=("exhaustive", "bisect", "greedy",
                            "halving"))
    p.add_argument("--delay-ps", type=float, default=None)
    p.add_argument("--max-area", type=float, default=None)
    p.add_argument("--max-power-mw", type=float, default=None)
    p.add_argument("--objective", default=None,
                   choices=("area", "delay", "power"))
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("table", help="print a paper table")
    p.add_argument("number", type=int, choices=(1, 2, 3))
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("workloads", help="list the workload registry")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: run the subcommand, map errors to the taxonomy.

    Every failure mode exits through here with a distinct code, and
    under ``--json`` also prints a machine-readable ``{"error": ...}``
    record on stdout (argparse usage errors excepted -- those stay on
    argparse's native exit 2).
    """
    args = build_parser().parse_args(argv)
    wants_json = bool(getattr(args, "json", False))
    try:
        return args.func(args)
    except CLIError as err:
        if wants_json:
            print(json.dumps(err.record(), indent=2))
        print(f"error: {err}", file=sys.stderr)
        return err.code
    except FrontendError as exc:
        if wants_json:
            print(json.dumps({"error": {
                "code": EXIT_FRONTEND, "reason": "frontend",
                "message": str(exc)}}, indent=2))
        print(exc.render(), file=sys.stderr)
        return EXIT_FRONTEND


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
