"""Command-line driver: ``python -m repro <command> ...``.

Commands
--------
schedule   compile a mini-language source file and schedule its loops
sweep      run a microarchitecture/clock exploration on a named workload
table      print a paper table (1, 2 or 3) from the calibrated library
verilog    compile + schedule + emit RTL to stdout or a file

The CLI is a thin veneer over the public API so shell users (and CI
scripts) can exercise the flow without writing Python.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.cdfg.region import PipelineSpec, Region
from repro.cdfg.transforms import optimize
from repro.core.pipeline import pipeline_loop
from repro.core.schedule import Schedule, ScheduleError
from repro.core.scheduler import SchedulerOptions, schedule_region
from repro.explore import PAPER_MICROARCHS, Microarch, sweep_microarchitectures
from repro.frontend import compile_source
from repro.rtl import generate_verilog, schedule_report
from repro.rtl.reports import format_table, pareto_header
from repro.tech import Library, artisan90, generic45
from repro.workloads import build_example1
from repro.workloads.conv2d import build_conv3x3
from repro.workloads.fft import build_fft8, build_fft_stage
from repro.workloads.fir import build_fir
from repro.workloads.idct import build_idct8, build_idct2d

#: workloads addressable from the command line.
WORKLOADS: Dict[str, Callable[[], Region]] = {
    "example1": build_example1,
    "idct8": build_idct8,
    "idct2d": build_idct2d,
    "fir": build_fir,
    "fft_stage": build_fft_stage,
    "fft8": build_fft8,
    "conv3x3": build_conv3x3,
}

LIBRARIES: Dict[str, Callable[[], Library]] = {
    "artisan90": artisan90,
    "generic45": generic45,
}


def _library(name: str) -> Library:
    try:
        return LIBRARIES[name]()
    except KeyError:
        raise SystemExit(f"unknown library {name!r}; "
                         f"choose from {sorted(LIBRARIES)}")


def _schedule_one(region: Region, library: Library, clock: float,
                  ii: Optional[int], run_optimizer: bool) -> Schedule:
    if run_optimizer:
        optimize(region)
    if ii is not None:
        return pipeline_loop(region, library, clock, ii=ii).schedule
    return schedule_region(region, library, clock)


def cmd_schedule(args: argparse.Namespace) -> int:
    """Compile and schedule a source file (or a named workload)."""
    library = _library(args.library)
    regions: List[Region] = []
    iis: List[Optional[int]] = []
    if args.source in WORKLOADS:
        regions.append(WORKLOADS[args.source]())
        iis.append(args.ii)
    else:
        with open(args.source) as handle:
            text = handle.read()
        for loop in compile_source(text):
            regions.append(loop.region)
            iis.append(args.ii if args.ii is not None
                       else (loop.pipeline.ii if loop.pipeline else None))
    for region, ii in zip(regions, iis):
        try:
            schedule = _schedule_one(region, library, args.clock, ii,
                                     not args.no_optimize)
        except ScheduleError as exc:
            print(f"{region.name}: FAILED -- {exc}", file=sys.stderr)
            for line in exc.diagnostics:
                print(f"  {line}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(schedule.summary(), indent=2))
        else:
            print(schedule_report(schedule))
            print()
    return 0


def cmd_verilog(args: argparse.Namespace) -> int:
    """Compile, schedule and emit Verilog RTL."""
    library = _library(args.library)
    if args.source in WORKLOADS:
        region = WORKLOADS[args.source]()
        ii = args.ii
    else:
        with open(args.source) as handle:
            (loop,) = compile_source(handle.read())
        region = loop.region
        ii = args.ii if args.ii is not None \
            else (loop.pipeline.ii if loop.pipeline else None)
    if ii is not None:
        result = pipeline_loop(region, library, args.clock, ii=ii)
        text = generate_verilog(result.schedule, result.folded)
    else:
        schedule = schedule_region(region, library, args.clock)
        text = generate_verilog(schedule)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Microarchitecture x clock exploration on a named workload."""
    library = _library(args.library)
    factory = WORKLOADS.get(args.workload)
    if factory is None:
        raise SystemExit(f"unknown workload {args.workload!r}; "
                         f"choose from {sorted(WORKLOADS)}")
    clocks = [float(c) for c in args.clocks.split(",")]
    micros = PAPER_MICROARCHS
    if args.latencies:
        micros = []
        for spec in args.latencies.split(","):
            if ":" in spec:
                lat, ii = spec.split(":")
                micros.append(Microarch(f"P{lat}/{ii}", int(lat),
                                        ii=int(ii)))
            else:
                micros.append(Microarch(f"NP{spec}", int(spec)))
    points = sweep_microarchitectures(factory, library, micros, clocks)
    print(format_table(pareto_header(), [p.row() for p in points]))
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    """Print a calibration table from the paper."""
    library = _library(args.library)
    if args.number == 1:
        row = library.table1()
        print(format_table(list(row), [list(row.values())]))
        return 0
    if args.number == 2:
        schedule = schedule_region(build_example1(), library, 1600.0)
        print(schedule.table())
        return 0
    if args.number == 3:
        seq = schedule_region(build_example1(), library, 1600.0)
        p2 = pipeline_loop(build_example1(), library, 1600.0, ii=2).schedule
        p1 = pipeline_loop(build_example1(), library, 1600.0, ii=1).schedule
        print(format_table(
            ["", "S", "P2", "P1"],
            [["cycles/iter", seq.ii_effective, p2.ii_effective,
              p1.ii_effective],
             ["area", round(seq.area), round(p2.area), round(p1.area)]]))
        return 0
    raise SystemExit("table number must be 1, 2 or 3")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Realistic performance-constrained pipelining in HLS "
                    "(DATE 2011 reproduction)")
    parser.add_argument("--library", default="artisan90",
                        help="technology library (artisan90 | generic45)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="compile and schedule")
    p.add_argument("source", help="source file or workload name")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--json", action="store_true")
    p.add_argument("--no-optimize", action="store_true")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("verilog", help="emit RTL")
    p.add_argument("source", help="source file or workload name")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--output", default=None)
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser("sweep", help="microarchitecture/clock exploration")
    p.add_argument("workload")
    p.add_argument("--clocks", default="1000,1250,1600,2100,2800")
    p.add_argument("--latencies", default=None,
                   help="e.g. 8,16,32:16 (lat or lat:ii, comma separated)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("table", help="print a paper table")
    p.add_argument("number", type=int, choices=(1, 2, 3))
    p.set_defaults(func=cmd_table)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
