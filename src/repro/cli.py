"""Command-line driver: ``python -m repro <command> ...``.

Commands
--------
profile    schedule a named workload under cProfile + scheduler counters
schedule   compile a mini-language source file and schedule its loops
sweep      run a microarchitecture/clock exploration on a named workload
stream     compose, verify and report a named streaming pipeline
table      print a paper table (1, 2 or 3) from the calibrated library
tune       goal-directed autotuning (delay/area/power constraints)
verilog    compile + schedule + emit RTL to stdout or a file
workloads  list the named kernels and streaming pipelines

The CLI is a thin veneer over the unified compilation pipeline
(:mod:`repro.flow`) so shell users (and CI scripts) can exercise the
flows without writing Python.

Conventions every subcommand follows: ``--json`` switches the output to
a machine-readable record on stdout, and the exit status is nonzero
when the requested work failed or produced no feasible result (0 =
success, 1 = infeasible/failed, 2 = argparse usage errors).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from repro import profiling
from repro.cdfg.region import PipelineSpec, Region
from repro.core.pipeline import pipeline_loop
from repro.core.schedule import ScheduleError
from repro.core.scheduler import schedule_region
from repro.explore import PAPER_MICROARCHS, Microarch
from repro.flow import get_flow, run_sweep
from repro.flow.context import CompilationContext
from repro.frontend import FrontendError, compile_source
from repro.rtl import schedule_report
from repro.rtl.reports import format_table, pareto_header
from repro.tech import Library, artisan90, generic45
from repro.workloads import (
    PIPELINE_INPUTS,
    PIPELINE_REGISTRY,
    WORKLOAD_REGISTRY,
    build_example1,
)

#: workloads addressable from the command line (the shared registry).
WORKLOADS: Dict[str, Callable[[], Region]] = WORKLOAD_REGISTRY

LIBRARIES: Dict[str, Callable[[], Library]] = {
    "artisan90": artisan90,
    "generic45": generic45,
}


def _library(name: str) -> Library:
    try:
        return LIBRARIES[name]()
    except KeyError:
        raise SystemExit(f"unknown library {name!r}; "
                         f"choose from {sorted(LIBRARIES)}")


def _print_failure(ctx: CompilationContext) -> None:
    for diag in ctx.errors:
        print(f"{ctx.region.name if ctx.region else '<frontend>'}: "
              f"FAILED -- {diag.message}", file=sys.stderr)
        for line in diag.details:
            print(f"  {line}", file=sys.stderr)


def _compile_file(path: str):
    """Compile a source file of either kind (legacy or ``.py``).

    Raises :class:`FrontendError` (with the caret diagnostic attached)
    on bad source, ``SystemExit`` on unreadable files.
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    return compile_source(text, filename=path)


def _source_contexts(args: argparse.Namespace, library: Library,
                     run_optimizer: bool) -> List[CompilationContext]:
    """One unrun context per loop of the source file / named workload."""
    contexts: List[CompilationContext] = []
    if args.source in WORKLOADS:
        contexts.append(CompilationContext(
            library=library, clock_ps=args.clock,
            region=WORKLOADS[args.source](),
            pipeline=PipelineSpec(ii=args.ii) if args.ii is not None
            else None,
            run_optimizer=run_optimizer))
        return contexts
    for loop in _compile_file(args.source):
        pipeline = PipelineSpec(ii=args.ii) if args.ii is not None \
            else loop.pipeline
        contexts.append(CompilationContext(
            library=library, clock_ps=args.clock, region=loop.region,
            pipeline=pipeline, run_optimizer=run_optimizer))
    return contexts


def _resolve_workload(spec: str) -> Callable[[], Region]:
    """A region factory from a workload name or a source file path.

    Source files must contain exactly one kernel (sweeps and tuning
    operate on a single region).  The factory recompiles per call so
    every invocation gets a fresh, unmutated region; fingerprints stay
    identical across calls, so caching still works.
    """
    factory = WORKLOADS.get(spec)
    if factory is not None:
        return factory
    if not (spec.endswith(".py") or os.path.exists(spec)):
        raise SystemExit(f"unknown workload {spec!r}; choose from "
                         f"{sorted(WORKLOADS)} or pass a source file")
    try:
        units = _compile_file(spec)
    except FrontendError as exc:
        print(exc.render(), file=sys.stderr)
        raise SystemExit(1)
    if len(units) != 1:
        raise SystemExit(
            f"{spec}: sweeps need exactly one kernel, found "
            f"{[u.region.name for u in units]}")
    return lambda: _compile_file(spec)[0].region


def cmd_schedule(args: argparse.Namespace) -> int:
    """Compile and schedule a source file (or a named workload)."""
    library = _library(args.library)
    flow = get_flow("pipeline")
    if args.profile:
        profiling.reset()
    try:
        contexts = _source_contexts(args, library,
                                    run_optimizer=not args.no_optimize)
    except FrontendError as exc:
        print(exc.render(), file=sys.stderr)
        return 1
    for ctx in contexts:
        flow.run(ctx)
        if ctx.failed:
            _print_failure(ctx)
            if args.profile:
                print(profiling.report(), file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(ctx.schedule.summary(), indent=2))
        else:
            print(schedule_report(ctx.schedule))
            print()
    if args.profile:
        # stderr, so --json stdout stays machine-readable
        print(profiling.report(), file=sys.stderr)
    return 0


def _profile_sweep(args: argparse.Namespace, library) -> int:
    """``repro profile --sweep``: one grid through the sweep engine,
    reporting the sweep-layer counters (variant builds, warm-start
    accepts/fallbacks, pickled bytes, worker cache traffic)."""
    import time

    factory = _resolve_workload(args.workload)
    clocks = [float(c) for c in args.clocks.split(",")]
    micros = _parse_microarchs(args.latencies)
    profiling.reset()
    start = time.perf_counter()
    result = run_sweep(factory, library, micros, clocks, jobs=args.jobs,
                       backend=args.backend)
    wall = time.perf_counter() - start
    table = profiling.snapshot()
    if args.json:
        print(json.dumps({
            "workload": args.workload,
            "wall_s": round(wall, 4),
            "sweep": result.summary(),
            "counters": dict(sorted(table.items())),
        }, indent=2))
    else:
        print(profiling.report(table))
        print(f"\n{args.workload}: {len(result.points)} of "
              f"{result.total} points feasible, backend "
              f"{result.backend}, jobs {result.jobs}, {wall:.3f}s")
        for key, value in sorted(result.profile.items()):
            if key != "workers":
                print(f"  {key}: {value}")
    return 0 if result.points else 1


def cmd_profile(args: argparse.Namespace) -> int:
    """Schedule a named workload under cProfile and report both the
    Python-level hot spots and the scheduler's own phase counters."""
    import cProfile
    import io
    import pstats
    import time

    library = _library(args.library)
    if args.sweep:
        return _profile_sweep(args, library)
    region = _resolve_workload(args.workload)()
    pipeline = PipelineSpec(ii=args.ii) if args.ii is not None else None
    profiling.reset()
    prof = cProfile.Profile()
    error: Optional[ScheduleError] = None
    schedule = None
    start = time.perf_counter()
    prof.enable()
    try:
        schedule = schedule_region(region, library, args.clock,
                                   pipeline=pipeline)
    except ScheduleError as exc:
        error = exc
    finally:
        prof.disable()
    wall = time.perf_counter() - start
    table = profiling.snapshot()
    if args.json:
        record = {
            "workload": args.workload,
            "clock_ps": args.clock,
            "wall_s": round(wall, 4),
            "feasible": schedule is not None,
            "counters": dict(sorted(table.items())),
        }
        if schedule is not None:
            record["passes"] = schedule.passes
            record["latency"] = schedule.latency
        else:
            record["error"] = str(error)
        print(json.dumps(record, indent=2))
    else:
        stream = io.StringIO()
        pstats.Stats(prof, stream=stream) \
            .sort_stats("cumulative").print_stats(args.top)
        print(stream.getvalue().rstrip())
        print()
        print(profiling.report(table))
        if schedule is not None:
            print(f"\n{args.workload}: {schedule.passes} passes, "
                  f"latency {schedule.latency}, {wall:.3f}s")
        else:
            print(f"\n{args.workload}: FAILED after {wall:.3f}s -- {error}",
                  file=sys.stderr)
    return 0 if schedule is not None else 1


def cmd_verilog(args: argparse.Namespace) -> int:
    """Compile, schedule and emit Verilog RTL."""
    library = _library(args.library)
    try:
        (ctx,) = _source_contexts(args, library, run_optimizer=False)
    except FrontendError as exc:
        print(exc.render(), file=sys.stderr)
        return 1
    get_flow("verilog").run(ctx)
    if ctx.failed:
        if args.json:
            print(json.dumps(ctx.summary(), indent=2))
        else:
            _print_failure(ctx)
        return 1
    text = ctx.rtl
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    if args.json:
        print(json.dumps({
            "module": ctx.region.name,
            "lines": len(text.splitlines()),
            "output": args.output,
            "rtl": None if args.output else text,
        }, indent=2))
    elif args.output:
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


def _parse_microarchs(spec_text: Optional[str]) -> List[Microarch]:
    if not spec_text:
        return list(PAPER_MICROARCHS)
    micros: List[Microarch] = []
    for spec in spec_text.split(","):
        if ":" in spec:
            lat, ii = spec.split(":")
            micros.append(Microarch(f"P{lat}/{ii}", int(lat), ii=int(ii)))
        else:
            micros.append(Microarch(f"NP{spec}", int(spec)))
    return micros


def _load_cache(path: Optional[str]):
    """A FlowCache warmed from ``path`` (fresh when absent/None)."""
    from repro.flow import FlowCache

    if path is None:
        return None
    return FlowCache.load(path)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Microarchitecture x clock exploration on a named workload."""
    library = _library(args.library)
    factory = _resolve_workload(args.workload)
    clocks = [float(c) for c in args.clocks.split(",")]
    micros = _parse_microarchs(args.latencies)
    cache = _load_cache(args.cache)
    result = run_sweep(factory, library, micros, clocks, jobs=args.jobs,
                       cache=cache, backend=args.backend)
    if cache is not None:
        cache.save(args.cache)
    status = 0 if result.points else 1  # an all-infeasible grid failed
    if args.json:
        print(json.dumps(result.summary(), indent=2))
        return status
    print(format_table(pareto_header(), [p.row() for p in result.points]))
    print(f"\n{len(result.points)} of {result.total} configurations "
          f"feasible ({len(result.infeasible)} infeasible)")
    for q in result.infeasible:
        print(f"  {q.describe()}")
    return status


def cmd_tune(args: argparse.Namespace) -> int:
    """Goal-directed autotuning over the microarch x clock space."""
    from repro.dse import DesignSpace, Goal, GoalError, ResultStore, tune

    library = _library(args.library)
    factory = _resolve_workload(args.workload)
    objective = args.objective
    if objective is None:
        # a delay budget usually means "smallest design meeting it";
        # otherwise chase speed under the remaining budgets.
        objective = "area" if args.delay_ps is not None else "delay"
    try:
        goal = Goal.build(objective=objective, delay_ps=args.delay_ps,
                          max_area=args.max_area,
                          max_power_mw=args.max_power_mw)
    except GoalError as exc:
        raise SystemExit(f"invalid goal: {exc}")
    space = DesignSpace(
        tuple(_parse_microarchs(args.latencies)),
        tuple(float(c) for c in args.clocks.split(",")))
    store = ResultStore(args.store) if args.store else None
    cache = _load_cache(args.cache)
    report = tune(factory, library, goal, space=space,
                  strategy=args.strategy, cache=cache, store=store,
                  jobs=args.jobs)
    if cache is not None:
        cache.save(args.cache)
    if args.json:
        print(json.dumps(report.summary(), indent=2))
    else:
        print(report.table())
    return 0 if report.satisfied else 1


def cmd_table(args: argparse.Namespace) -> int:
    """Print a calibration table from the paper."""
    library = _library(args.library)
    if args.number == 1:
        row = library.table1()
        if args.json:
            print(json.dumps({"table": 1, "row": row}, indent=2))
        else:
            print(format_table(list(row), [list(row.values())]))
        return 0
    if args.number == 2:
        schedule = schedule_region(build_example1(), library, 1600.0)
        if args.json:
            print(json.dumps({"table": 2,
                              "schedule": schedule.summary()}, indent=2))
        else:
            print(schedule.table())
        return 0
    if args.number == 3:
        seq = schedule_region(build_example1(), library, 1600.0)
        p2 = pipeline_loop(build_example1(), library, 1600.0, ii=2).schedule
        p1 = pipeline_loop(build_example1(), library, 1600.0, ii=1).schedule
        if args.json:
            print(json.dumps({"table": 3, "columns": {
                "S": {"cycles_per_iter": seq.ii_effective,
                      "area": round(seq.area)},
                "P2": {"cycles_per_iter": p2.ii_effective,
                       "area": round(p2.area)},
                "P1": {"cycles_per_iter": p1.ii_effective,
                       "area": round(p1.area)},
            }}, indent=2))
        else:
            print(format_table(
                ["", "S", "P2", "P1"],
                [["cycles/iter", seq.ii_effective, p2.ii_effective,
                  p1.ii_effective],
                 ["area", round(seq.area), round(p2.area),
                  round(p1.area)]]))
        return 0
    raise SystemExit("table number must be 1, 2 or 3")


def cmd_workloads(args: argparse.Namespace) -> int:
    """List the workload registry with basic region statistics."""
    rows = []
    for name in sorted(WORKLOADS):
        region = WORKLOADS[name]()
        stats = region.dfg.stats()
        rows.append([name, region.name, stats["total"], stats["edges"],
                     f"{region.min_latency}..{region.max_latency}",
                     "loop" if region.is_loop else "block"])
    pipe_rows = []
    for name in sorted(PIPELINE_REGISTRY):
        pipe = PIPELINE_REGISTRY[name]()
        pipe_rows.append([name, len(pipe.stages), len(pipe.channels),
                          " -> ".join(pipe.stages)])
    if args.json:
        print(json.dumps({
            "workloads": {r[0]: {
                "region": r[1], "ops": r[2], "edges": r[3],
                "latency": r[4], "kind": r[5]} for r in rows},
            "pipelines": {r[0]: {
                "stages": r[1], "channels": r[2], "topology": r[3]}
                for r in pipe_rows},
        }, indent=2))
        return 0
    print(format_table(
        ["workload", "region", "ops", "edges", "latency", "kind"], rows))
    print()
    print(format_table(["pipeline", "stages", "channels", "topology"],
                       pipe_rows))
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Compose a named streaming pipeline, verify it, print the report."""
    from repro.dataflow import (
        compile_pipeline,
        generate_pipeline_verilog,
        simulate_pipeline_machine,
        simulate_pipeline_reference,
    )

    library = _library(args.library)
    factory = PIPELINE_REGISTRY.get(args.pipeline)
    if factory is None:
        raise SystemExit(f"unknown pipeline {args.pipeline!r}; "
                         f"choose from {sorted(PIPELINE_REGISTRY)}")
    pipeline = factory()
    composed = compile_pipeline(pipeline, library, clock_ps=args.clock)
    inputs = PIPELINE_INPUTS.get(args.pipeline, dict)()
    oracle = simulate_pipeline_reference(factory(), inputs)
    machine = simulate_pipeline_machine(composed, inputs)
    verified = machine.outputs == oracle.outputs
    if args.json:
        summary = composed.summary()
        summary["cycles"] = machine.cycles
        summary["stalled_cycles"] = machine.stalled_cycles
        summary["verified"] = verified
        print(json.dumps(summary, indent=2))
    else:
        print(composed.table())
        print(f"machine simulation: {machine.cycles} cycles, "
              f"{machine.stalled_cycles} stalled; outputs "
              f"{'MATCH' if verified else 'DIFFER from'} the token oracle")
    if args.output:
        text = generate_pipeline_verilog(composed)
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0 if verified else 1


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Realistic performance-constrained pipelining in HLS "
                    "(DATE 2011 reproduction)")
    parser.add_argument("--library", default="artisan90",
                        help="technology library (artisan90 | generic45)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="compile and schedule")
    p.add_argument("source", help="source file (mini-language or .py "
                                  "Python subset) or workload name")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--json", action="store_true")
    p.add_argument("--no-optimize", action="store_true")
    p.add_argument("--profile", action="store_true",
                   help="print the scheduler's phase counters (stderr)")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser(
        "profile", help="profile scheduling a named workload")
    p.add_argument("workload", help="workload name (see `workloads`)")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--sweep", action="store_true",
                   help="profile a sweep grid instead of one schedule "
                        "(surfaces the sweep-layer counters)")
    p.add_argument("--clocks", default="1000,1250,1600,2100,2800",
                   help="clock axis for --sweep")
    p.add_argument("--latencies", default=None,
                   help="microarch axis for --sweep (e.g. 8,16,32:16)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for --sweep")
    p.add_argument("--backend", default=None,
                   choices=("context", "process", "thread"),
                   help="sweep backend override for --sweep")
    p.add_argument("--top", type=int, default=15,
                   help="cProfile rows to print (default 15)")
    p.add_argument("--json", action="store_true",
                   help="emit wall time + counters as JSON (no cProfile)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("verilog", help="emit RTL")
    p.add_argument("source", help="source file (mini-language or .py "
                                  "Python subset) or workload name")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--ii", type=int, default=None)
    p.add_argument("--output", default=None)
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable record instead of RTL")
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser("sweep", help="microarchitecture/clock exploration")
    p.add_argument("workload", help="workload name or .py source file")
    p.add_argument("--clocks", default="1000,1250,1600,2100,2800")
    p.add_argument("--latencies", default=None,
                   help="e.g. 8,16,32:16 (lat or lat:ii, comma separated)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel scheduling workers (default 1 = serial)")
    p.add_argument("--backend", default=None,
                   choices=("context", "process", "thread"),
                   help="sweep backend (default: context, or process "
                        "when --jobs > 1 on multicore hosts)")
    p.add_argument("--cache", default=None,
                   help="persist the flow cache here across runs")
    p.add_argument("--json", action="store_true",
                   help="emit the full sweep record as JSON")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "tune", help="goal-directed autotuning over microarch x clock")
    p.add_argument("workload", help="workload name or .py source file")
    p.add_argument("--delay-ps", type=float, default=None,
                   help="constraint: delay <= this many picoseconds")
    p.add_argument("--max-area", type=float, default=None,
                   help="constraint: area <= this many library units")
    p.add_argument("--max-power-mw", type=float, default=None,
                   help="constraint: average power <= this many mW")
    p.add_argument("--objective", default=None,
                   choices=("area", "delay", "power"),
                   help="metric to minimize (default: area when a delay"
                        " budget is given, delay otherwise)")
    p.add_argument("--strategy", default="greedy",
                   choices=("exhaustive", "bisect", "greedy", "halving"),
                   help="search strategy (default greedy)")
    p.add_argument("--clocks", default="1000,1250,1600,2100,2800")
    p.add_argument("--latencies", default=None,
                   help="e.g. 8,16,32:16 (lat or lat:ii, comma separated)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel scheduling workers for batched waves")
    p.add_argument("--store", default=None,
                   help="persistent JSONL result store (warm-starts "
                        "tuning across processes)")
    p.add_argument("--cache", default=None,
                   help="persist the flow cache here across runs")
    p.add_argument("--json", action="store_true",
                   help="emit the full tuning report as JSON")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("stream",
                       help="compose + verify a streaming pipeline")
    p.add_argument("pipeline", help="pipeline name (see `workloads`)")
    p.add_argument("--clock", type=float, default=1600.0)
    p.add_argument("--json", action="store_true")
    p.add_argument("--output", default=None,
                   help="also write the composed Verilog here")
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser("table", help="print a paper table")
    p.add_argument("number", type=int, choices=(1, 2, 3))
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("workloads", help="list the workload registry")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
