"""Golden sequential interpreter of a region.

Executes the region's DFG iteration by iteration with source-level
semantics: loop muxes select the init value on the first iteration and
the carried value afterwards; predicated writes only commit when their
predicate holds; a do/while loop exits after the iteration whose exit
test evaluates false.  This is the oracle every schedule (sequential or
pipelined) must match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.cdfg.ops import OpKind
from repro.cdfg.region import Region
from repro.sim.evalops import (
    evaluate_op,
    memory_address,
    predicate_holds,
    store_data_edge,
    wrap,
)

InputSource = Union[Dict[str, List[int]], Callable[[str, int], int]]


@dataclass
class SimResult:
    """Outputs of a simulation run."""

    outputs: Dict[str, List[int]] = field(default_factory=dict)
    iterations: int = 0
    cycles: int = 0  # filled by the cycle-accurate simulator
    squashed_iterations: int = 0
    stalled_cycles: int = 0
    #: final contents of every declared memory after the run.
    memories: Dict[str, List[int]] = field(default_factory=dict)

    def output(self, port: str) -> List[int]:
        """Committed writes to a port, in commit order."""
        return self.outputs.get(port, [])


class SimulationError(RuntimeError):
    """Raised on semantic violations (e.g. write-before-squash hazards)."""


def _input_value(inputs: InputSource, port: str, iteration: int) -> int:
    if callable(inputs):
        return inputs(port, iteration)
    stream = inputs.get(port, [])
    if not stream:
        return 0
    return stream[min(iteration, len(stream) - 1)]


def initial_memories(region: Region,
                     memory_init: Optional[Dict[str, List[int]]] = None,
                     ) -> Dict[str, List[int]]:
    """Starting contents per declared memory.

    ``memory_init`` overrides the declared init of named memories
    (padded with zeros to depth), so one compiled region can be
    simulated against many array inputs -- the property tests reuse a
    single schedule across Hypothesis examples this way.
    """
    memories = {name: list(decl.contents())
                for name, decl in region.memories.items()}
    for name, contents in (memory_init or {}).items():
        decl = region.memories.get(name)
        if decl is None:
            raise SimulationError(f"memory_init: unknown memory {name!r}")
        if len(contents) > decl.depth:
            raise SimulationError(
                f"memory_init: {name!r} takes {decl.depth} words, "
                f"got {len(contents)}")
        words = [wrap(v, decl.width) for v in contents]
        memories[name] = words + [0] * (decl.depth - len(words))
    return memories


def simulate_reference(
    region: Region,
    inputs: InputSource,
    max_iterations: Optional[int] = None,
    memory_init: Optional[Dict[str, List[int]]] = None,
) -> SimResult:
    """Run the region's source semantics; the verification oracle."""
    dfg = region.dfg
    order = dfg.topological_order()
    #: architectural memory state, shared across iterations; ordering
    #: edges put same-iteration accesses in program order within the
    #: topological traversal
    memories = initial_memories(region, memory_init)
    #: per loop-mux: the carried-source value of every past iteration,
    #: so distances > 1 read the right generation
    carried_history: Dict[int, List[int]] = {}
    result = SimResult()
    limit = max_iterations
    if limit is None:
        limit = region.trip_count if region.trip_count is not None else 1024
    if not region.is_loop:
        limit = 1

    for iteration in range(limit):
        values: Dict[int, int] = {}
        #: pushes of this iteration, committed in token order at the end
        #: (topological order may interleave channels arbitrarily).
        pushed: List[tuple] = []
        for op in order:
            if op.kind is OpKind.CONST:
                values[op.uid] = wrap(op.payload, op.width)
            elif op.kind in (OpKind.READ, OpKind.POP):
                # a standalone region treats a channel like an input
                # port stream: the i-th pop of iteration k consumes
                # token k * stride + i
                index = iteration * op.io_stride + op.io_offset
                values[op.uid] = wrap(
                    _input_value(inputs, op.payload, index), op.width)
            elif op.kind is OpKind.PUSH:
                src = dfg.in_edge(op.uid, 0)
                if predicate_holds(op, values):
                    pushed.append((op.payload, op.io_offset,
                                   wrap(values[src.src], op.width)))
            elif op.kind is OpKind.LOOPMUX:
                distance = dfg.in_edge(op.uid, 1).distance
                donor = iteration - distance
                history = carried_history.get(op.uid, [])
                if donor < 0:
                    init = dfg.in_edge(op.uid, 0)
                    values[op.uid] = values[init.src]
                else:
                    values[op.uid] = history[donor]
            elif op.kind is OpKind.WRITE:
                src = dfg.in_edge(op.uid, 0)
                if predicate_holds(op, values):
                    result.outputs.setdefault(op.payload, []).append(
                        wrap(values[src.src], op.width))
            elif op.kind is OpKind.LOAD:
                mem = memories[op.payload]
                addr = memory_address(dfg, op, values.__getitem__,
                                      iteration)
                values[op.uid] = wrap(mem[addr % len(mem)], op.width)
            elif op.kind is OpKind.STORE:
                if predicate_holds(op, values):
                    mem = memories[op.payload]
                    addr = memory_address(dfg, op, values.__getitem__,
                                          iteration)
                    data = values[store_data_edge(dfg, op).src]
                    mem[addr % len(mem)] = wrap(data, op.width)
            elif op.kind is OpKind.STALL:
                continue  # stalling affects timing, not values
            else:
                operands = [values[e.src] for e in dfg.in_edges(op.uid)
                            if e.distance == 0]
                values[op.uid] = evaluate_op(op, operands)
        for channel, _index, value in sorted(pushed):
            result.outputs.setdefault(channel, []).append(value)
        # latch loop-carried values for future iterations
        for op in order:
            if op.kind is OpKind.LOOPMUX:
                edge = dfg.in_edge(op.uid, 1)
                carried_history.setdefault(op.uid, []).append(
                    values[edge.src])
        result.iterations = iteration + 1
        if region.exit_op_uid is not None:
            if not values.get(region.exit_op_uid, 0):
                break
    result.memories = memories
    return result
