"""Cycle-accurate simulation of a scheduled design.

Executes a :class:`~repro.core.schedule.Schedule` the way the generated
RTL would: states advance every clock, pipelined schedules overlap
iterations every II cycles, stage-valid semantics squash speculatively
issued iterations once the exit test of an earlier iteration resolves
false, and stalling loops freeze the whole pipeline.  Matching the
reference interpreter on committed port writes is the system-level
correctness criterion used throughout the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cdfg.ops import Operation, OpKind
from repro.core.schedule import Schedule
from repro.sim.evalops import (
    evaluate_op,
    memory_address,
    predicate_holds,
    store_data_edge,
    wrap,
)
from repro.sim.reference import (
    InputSource,
    SimResult,
    SimulationError,
    _input_value,
    initial_memories,
)


@dataclass
class _IterationCtx:
    """Architectural state of one in-flight iteration."""

    index: int
    start_cycle: int  # in logical (non-stalled) cycles
    values: Dict[int, int] = field(default_factory=dict)
    squashed: bool = False
    wrote: bool = False


class ScheduledMachine:
    """Interprets a schedule cycle by cycle.

    ``stall_ticks`` models stalling loops (paper section V step I.1):
    ``{stall_op_uid: [extra_cycles_per_iteration, ...]}`` -- when the
    marked operation's state executes for iteration ``k``, the whole
    pipeline freezes for that many cycles, as the folded stage control
    would ("no stage must be active while the stalling condition is
    true").
    """

    def __init__(self, schedule: Schedule, inputs: InputSource,
                 stall_ticks: Optional[Dict[int, List[int]]] = None,
                 memory_init: Optional[Dict[str, List[int]]] = None) -> None:
        self.schedule = schedule
        self.dfg = schedule.region.dfg
        self.inputs = inputs
        self.latency = schedule.latency
        self.ii = schedule.ii_effective
        self.stall_ticks = stall_ticks or {}
        #: optional per-memory override of the declared init contents.
        self.memory_init = memory_init
        #: whether the region contains channel pops/pushes (fast-path
        #: guard: regions without streams never consult the FIFO hooks).
        self._has_streams = any(op.is_stream for op in self.dfg.ops)
        #: architectural memory state, shared by all in-flight iterations.
        self.memories: Dict[str, List[int]] = initial_memories(
            schedule.region, memory_init)
        #: stores buffered within the current cycle; the RAM commits
        #: writes at the clock edge, so loads of the same cycle read the
        #: old word (read-first semantics -- the scheduler's RAW gap of
        #: one state guarantees no same-cycle read-after-write).
        self._pending_stores: List[tuple] = []
        order = {op.uid: i
                 for i, op in enumerate(self.dfg.topological_order())}
        self._by_state: Dict[int, List[Operation]] = {}
        for _uid, bound in schedule.bindings.items():
            self._by_state.setdefault(bound.state, []).append(bound.op)
        for ops in self._by_state.values():
            ops.sort(key=lambda o: order[o.uid])

    # ------------------------------------------------------------------
    def _value_of(self, ctx: _IterationCtx, uid: int) -> int:
        """Value of ``uid`` in ``ctx``, evaluating free wiring on demand."""
        if uid in ctx.values:
            return ctx.values[uid]
        op = self.dfg.op(uid)
        if op.kind is OpKind.CONST:
            value = wrap(op.payload, op.width)
        elif op.is_free:
            operands = [self._value_of(ctx, e.src)
                        for e in self.dfg.in_edges(uid)]
            value = evaluate_op(op, operands)
        else:
            raise SimulationError(
                f"iteration {ctx.index}: {op.name} read before execution")
        ctx.values[uid] = value
        return value

    def _execute_state(self, ctx: _IterationCtx, state: int,
                       contexts: Dict[int, _IterationCtx],
                       result: SimResult) -> Optional[bool]:
        """Run one state of one iteration; returns the exit value if seen."""
        exit_value: Optional[bool] = None
        for op in self._by_state.get(state, ()):
            if op.kind is OpKind.READ:
                index = ctx.index * op.io_stride + op.io_offset
                ctx.values[op.uid] = wrap(
                    _input_value(self.inputs, op.payload, index),
                    op.width)
                continue
            if op.kind is OpKind.WRITE:
                src = self.dfg.in_edge(op.uid, 0)
                value = self._value_of(ctx, src.src)
                if predicate_holds(op, ctx.values):
                    result.outputs.setdefault(op.payload, []).append(
                        wrap(value, op.width))
                    ctx.wrote = True
                continue
            if op.kind is OpKind.LOAD:
                mem = self.memories[op.payload]
                addr = memory_address(
                    self.dfg, op, lambda uid: self._value_of(ctx, uid),
                    ctx.index)
                ctx.values[op.uid] = wrap(mem[addr % len(mem)], op.width)
                continue
            if op.kind is OpKind.STORE:
                if predicate_holds(op, ctx.values):
                    addr = memory_address(
                        self.dfg, op,
                        lambda uid: self._value_of(ctx, uid), ctx.index)
                    data = self._value_of(
                        ctx, store_data_edge(self.dfg, op).src)
                    self._pending_stores.append(
                        (ctx.index, op.uid, op.payload, addr,
                         wrap(data, op.width)))
                    ctx.wrote = True  # squash hazard: stores are writes
                continue
            if op.kind is OpKind.POP:
                ctx.values[op.uid] = wrap(self._pop_token(ctx, op),
                                          op.width)
                continue
            if op.kind is OpKind.PUSH:
                src = self.dfg.in_edge(op.uid, 0)
                value = self._value_of(ctx, src.src)
                if predicate_holds(op, ctx.values):
                    self._push_token(ctx, op, wrap(value, op.width),
                                     result)
                    ctx.wrote = True
                continue
            if op.kind is OpKind.STALL:
                continue  # stall duration is injected at the cycle level
            if op.kind is OpKind.LOOPMUX:
                carried = self.dfg.in_edge(op.uid, 1)
                donor = contexts.get(ctx.index - carried.distance)
                if donor is None:
                    init = self.dfg.in_edge(op.uid, 0)
                    ctx.values[op.uid] = self._value_of(ctx, init.src)
                else:
                    ctx.values[op.uid] = self._value_of(donor, carried.src)
                continue
            operands = []
            for edge in self.dfg.in_edges(op.uid):
                if edge.distance >= 1:
                    raise SimulationError(
                        f"{op.name}: carried edge outside a loop mux")
                operands.append(self._value_of(ctx, edge.src))
            ctx.values[op.uid] = evaluate_op(op, operands)
            if op.is_exit_test:
                exit_value = bool(ctx.values[op.uid])
        return exit_value

    # ------------------------------------------------------------------
    # stream hooks (overridden by the dataflow composition simulator)
    # ------------------------------------------------------------------
    def _pop_token(self, ctx: _IterationCtx, op: Operation) -> int:
        """Source of one popped token.

        Standalone stages treat a channel like an input port stream:
        iteration ``k``'s i-th pop of a channel consumes token
        ``k * stride + i``.  The composed simulator overrides this to
        read from the connecting FIFO.
        """
        index = ctx.index * op.io_stride + op.io_offset
        return _input_value(self.inputs, op.payload, index)

    def _push_token(self, ctx: _IterationCtx, op: Operation, value: int,
                    result: SimResult) -> None:
        """Sink of one pushed token (standalone: an output stream)."""
        result.outputs.setdefault(op.payload, []).append(value)

    def _stream_blocked(self, pending: List[Operation]) -> bool:
        """Would any of this cycle's pops/pushes block on its FIFO?

        Standalone stages never block (channels act as plain ports);
        the composed simulator consults real FIFO occupancy here, which
        is what turns back-pressure into whole-stage stall cycles.
        """
        return False

    def _pending_stream_ops(self, issue: bool) -> List[Operation]:
        """Stream operations that would execute in the current cycle."""
        out: List[Operation] = []
        states = []
        for ctx in self._contexts.values():
            if not ctx.squashed:
                states.append(self._cycle - ctx.start_cycle)
        if issue:
            states.append(0)
        for state in states:
            if not 0 <= state < self.latency:
                continue
            out.extend(op for op in self._by_state.get(state, ())
                       if op.is_stream)
        return out

    # ------------------------------------------------------------------
    def _begin(self, max_iterations: Optional[int]) -> SimResult:
        """Reset the machine state ahead of a run (or external ticking)."""
        region = self.schedule.region
        # architectural memory restarts from the declared contents (or
        # the construction-time override) so a second run() on the same
        # machine stays independent
        self.memories = initial_memories(region, self.memory_init)
        self._pending_stores = []
        limit = max_iterations
        if limit is None:
            limit = (region.trip_count if region.trip_count is not None
                     else 1024)
        if not region.is_loop:
            limit = 1
        self._limit = limit
        self._result = SimResult()
        self._contexts: Dict[int, _IterationCtx] = {}
        self._exit_iter: Optional[int] = None
        self._issued = 0
        self._stall_budget = 0
        self._cycle = 0  # logical cycle: stalled cycles counted separately
        return self._result

    def tick(self) -> str:
        """Advance one clock; ``'stalled' | 'running' | 'idle' | 'done'``.

        ``'done'`` means the loop has drained: issuing is finished and no
        iteration is in flight.  ``'idle'`` covers warm-up/drain cycles
        with nothing to execute but issuing still pending (e.g. a stalled
        upstream producer in a composed pipeline).
        """
        result = self._result
        if self._stall_budget > 0:
            self._stall_budget -= 1
            result.stalled_cycles += 1
            return "stalled"
        cycle = self._cycle
        issue = (cycle % self.ii == 0 and self._issued < self._limit
                 and (self._exit_iter is None
                      or self._issued <= self._exit_iter))
        if self._has_streams:
            pending = self._pending_stream_ops(issue)
            if pending and self._stream_blocked(pending):
                # back-pressure: freeze the whole stage this cycle (the
                # stalling-loop semantics of paper section V, step I.1)
                result.stalled_cycles += 1
                return "stalled"
        if issue:
            self._contexts[self._issued] = _IterationCtx(self._issued, cycle)
            self._issued += 1
        contexts = self._contexts
        active = False
        for k in sorted(contexts):
            ctx = contexts[k]
            if ctx.squashed:
                continue
            state = cycle - ctx.start_cycle
            if not 0 <= state < self.latency:
                continue
            active = True
            exit_value = self._execute_state(ctx, state, contexts, result)
            for uid, ticks in self.stall_ticks.items():
                bound = self.schedule.bindings.get(uid)
                if (bound is not None and bound.state == state
                        and k < len(ticks)):
                    self._stall_budget = max(self._stall_budget, ticks[k])
            if exit_value is False and self._exit_iter is None:
                self._exit_iter = k
                for kk, other in contexts.items():
                    if kk > k and not other.squashed:
                        if other.wrote:
                            raise SimulationError(
                                f"iteration {kk} wrote before iteration "
                                f"{k}'s exit resolved (squash hazard)")
                        other.squashed = True
                        result.squashed_iterations += 1
        # the RAM commits this cycle's writes at the clock edge,
        # after every in-flight iteration's reads (read-first);
        # stores of iterations squashed this very cycle are dropped
        if self._pending_stores:
            for k, _uid, mem, addr, value in sorted(
                    self._pending_stores):
                ctx = contexts.get(k)
                if ctx is not None and ctx.squashed:
                    continue
                words = self.memories[mem]
                words[addr % len(words)] = value
            self._pending_stores = []
        self._cycle += 1
        if not active and self._issued > 0:
            done_issuing = (self._issued >= self._limit
                            or (self._exit_iter is not None
                                and self._issued > self._exit_iter))
            if done_issuing:
                return "done"
        return "running" if active else "idle"

    def _finish(self) -> SimResult:
        """Fill in the result's summary figures after the last tick."""
        result = self._result
        result.iterations = (self._exit_iter + 1
                             if self._exit_iter is not None
                             else min(self._issued, self._limit))
        result.cycles = self._cycle + result.stalled_cycles
        result.memories = {name: list(words)
                          for name, words in self.memories.items()}
        return result

    def run(self, max_iterations: Optional[int] = None) -> SimResult:
        """Simulate until the loop drains; returns committed outputs."""
        self._begin(max_iterations)
        max_cycles = self._limit * max(self.ii, 1) + self.latency + 16
        while self._cycle < max_cycles:
            if self.tick() == "done":
                break
        return self._finish()


def simulate_schedule(
    schedule: Schedule,
    inputs: InputSource,
    max_iterations: Optional[int] = None,
    stall_ticks: Optional[Dict[int, List[int]]] = None,
    memory_init: Optional[Dict[str, List[int]]] = None,
) -> SimResult:
    """Cycle-accurate run of a scheduled (possibly pipelined) design."""
    machine = ScheduledMachine(schedule, inputs, stall_ticks, memory_init)
    return machine.run(max_iterations)
