"""Simulation substrate: the golden sequential interpreter and the
cycle-accurate machine executing scheduled (possibly pipelined) designs."""

from repro.sim.evalops import evaluate_op, predicate_holds, unsigned, wrap
from repro.sim.machine import ScheduledMachine, simulate_schedule
from repro.sim.reference import SimResult, SimulationError, simulate_reference

__all__ = [
    "ScheduledMachine",
    "SimResult",
    "SimulationError",
    "evaluate_op",
    "predicate_holds",
    "simulate_reference",
    "simulate_schedule",
    "unsigned",
    "wrap",
]
