"""Integer semantics shared by the simulators.

Values are Python ints interpreted as two's-complement words of the
operation's width; every result is wrapped back into range.  Division by
zero yields zero (the usual hardware-friendly convention; only reachable
under false predicates after if-conversion, and documented as such).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cdfg.ops import Operation, OpKind


def wrap(value: int, width: int) -> int:
    """Interpret ``value`` as a signed two's-complement ``width``-bit word."""
    mask = (1 << width) - 1
    value &= mask
    if value >= 1 << (width - 1) and width > 1:
        value -= 1 << width
    return value


def unsigned(value: int, width: int) -> int:
    """The raw bit pattern of a (possibly negative) value."""
    return value & ((1 << width) - 1)


def evaluate_op(op: Operation, operands: List[int]) -> int:
    """Apply one operation to already-wrapped operand values."""
    kind = op.kind
    width = op.width
    if kind is OpKind.ADD:
        return wrap(operands[0] + operands[1], width)
    if kind is OpKind.SUB:
        return wrap(operands[0] - operands[1], width)
    if kind is OpKind.MUL:
        return wrap(operands[0] * operands[1], width)
    if kind is OpKind.DIV:
        if operands[1] == 0:
            return 0
        return wrap(int(operands[0] / operands[1]), width)
    if kind is OpKind.MOD:
        if operands[1] == 0:
            return 0
        return wrap(operands[0] - int(operands[0] / operands[1]) * operands[1],
                    width)
    if kind is OpKind.NEG:
        return wrap(-operands[0], width)
    if kind is OpKind.SHL:
        return wrap(operands[0] << (operands[1] & 63), width)
    if kind is OpKind.SHR:
        src_w = op.operand_widths[0] if op.operand_widths else width
        return wrap(unsigned(operands[0], src_w) >> (operands[1] & 63), width)
    if kind is OpKind.AND:
        return wrap(operands[0] & operands[1], width)
    if kind is OpKind.OR:
        return wrap(operands[0] | operands[1], width)
    if kind is OpKind.XOR:
        return wrap(operands[0] ^ operands[1], width)
    if kind is OpKind.NOT:
        src_w = op.operand_widths[0] if op.operand_widths else width
        return wrap(~unsigned(operands[0], src_w), width)
    if kind is OpKind.LT:
        return int(operands[0] < operands[1])
    if kind is OpKind.GT:
        return int(operands[0] > operands[1])
    if kind is OpKind.LE:
        return int(operands[0] <= operands[1])
    if kind is OpKind.GE:
        return int(operands[0] >= operands[1])
    if kind is OpKind.EQ:
        return int(operands[0] == operands[1])
    if kind is OpKind.NEQ:
        return int(operands[0] != operands[1])
    if kind is OpKind.MUX:
        return operands[1] if operands[0] else operands[2]
    if kind is OpKind.SLICE:
        hi, lo = op.payload
        src_w = op.operand_widths[0] if op.operand_widths else 64
        bits = unsigned(operands[0], max(src_w, hi + 1))
        return wrap((bits >> lo) & ((1 << (hi - lo + 1)) - 1), width)
    if kind is OpKind.ZEXT:
        src_w = op.operand_widths[0] if op.operand_widths else width
        return wrap(unsigned(operands[0], src_w), width)
    if kind is OpKind.SEXT:
        return wrap(operands[0], width)
    if kind is OpKind.MOVE:
        return wrap(operands[0], width)
    if kind is OpKind.CONCAT:
        value = 0
        shift = 0
        for i in reversed(range(len(operands))):
            src_w = (op.operand_widths[i]
                     if i < len(op.operand_widths) else 32)
            value |= unsigned(operands[i], src_w) << shift
            shift += src_w
        return wrap(value, width)
    if kind is OpKind.CALL:
        # black-box IP model: a deterministic mix of the arguments
        acc = 0x9E37
        for v in operands:
            acc = (acc * 31 + unsigned(v, 64)) & 0xFFFFFFFF
        return wrap(acc, width)
    raise ValueError(f"evaluate_op: unsupported kind {kind.value}")


def memory_address(dfg, op: Operation, fetch, iteration: int) -> int:
    """Effective address of a LOAD/STORE for one iteration.

    Dynamic accesses read their address operand (port 0) through
    ``fetch(uid)`` -- a callable so the cycle-accurate machine can
    evaluate free wiring (consts, slices) lazily; affine accesses
    compute ``iteration * io_stride + io_offset``.
    """
    from repro.cdfg.memory import has_dynamic_address

    data_edges = dfg.data_in_edges(op.uid)
    if has_dynamic_address(op, len(data_edges)):
        return fetch(data_edges[0].src)
    return iteration * op.io_stride + op.io_offset


def store_data_edge(dfg, op: Operation):
    """The edge feeding a STORE's write data (port 1 dynamic, 0 affine)."""
    data_edges = dfg.data_in_edges(op.uid)
    return data_edges[1] if len(data_edges) >= 2 else data_edges[0]


def predicate_holds(op: Operation, values: Dict[int, int]) -> bool:
    """Evaluate an if-conversion predicate against condition values."""
    for cond_uid, polarity in op.predicate.literals:
        cond_value = values.get(cond_uid)
        if cond_value is None:
            return False
        if bool(cond_value) is not polarity:
            return False
    return True
