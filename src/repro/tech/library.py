"""Technology library model.

A library characterizes *resource types*: datapath components with delay,
area, per-operation energy and leakage, at several *speed grades*.  Grades
model what downstream logic synthesis does when it has to close timing:
swap a typical-strength implementation for a faster, larger, hungrier one.
The paper relies on this twice:

* Table 4 measures the area penalty of buying back negative slack after
  synthesis ("compensated by larger area during subsequent logic
  synthesis");
* Figures 10/11 explore clock periods where typical-strength resources no
  longer fit the cycle, so sizing (or multi-cycling) kicks in.

Resource types are characterized per width via family scaling laws, with
anchor values calibrated to the paper's Table 1 (90 nm typical, 32 bit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cdfg.ops import OpKind


@dataclass(frozen=True)
class SpeedGrade:
    """A sizing point: faster cells cost area and energy."""

    name: str
    delay_factor: float
    area_factor: float
    energy_factor: float

    def __post_init__(self) -> None:
        if not 0 < self.delay_factor <= 1.0:
            raise ValueError("delay_factor must be in (0, 1]")
        if self.area_factor < 1.0 or self.energy_factor < 1.0:
            raise ValueError("area/energy factors must be >= 1")


#: the default sizing ladder, typical first (index 0 = cheapest).
DEFAULT_GRADES: Tuple[SpeedGrade, ...] = (
    SpeedGrade("typical", 1.00, 1.00, 1.00),
    SpeedGrade("fast", 0.85, 1.30, 1.25),
    SpeedGrade("turbo", 0.72, 1.70, 1.60),
    SpeedGrade("ultra", 0.62, 2.30, 2.10),
)


@dataclass(frozen=True)
class ResourceType:
    """A bindable datapath component at a specific width and grade."""

    name: str
    op_kinds: frozenset
    width: int
    delay_ps: float
    area: float
    energy_pj: float
    leakage_uw: float
    grade: str = "typical"
    family: str = ""
    #: True for resources that may be bound over several consecutive
    #: states when their delay exceeds the clock period.
    multicycle_ok: bool = False

    def supports(self, kind: OpKind, width: int) -> bool:
        """Whether this type can implement ``kind`` at ``width`` bits."""
        return kind in self.op_kinds and width <= self.width

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FlipFlopSpec:
    """Sequential element characterization.

    ``clk_to_q``/``setup`` enter every FF-to-FF path; ``alt_delay`` is the
    second number of the paper's ``ff 40/70`` Table 1 cell (the
    hold-fixed/load-heavy variant, reported but not used in the paper's
    own worked delays).
    """

    clk_to_q_ps: float
    setup_ps: float
    alt_delay_ps: float
    area_per_bit: float
    energy_per_bit_pj: float
    leakage_per_bit_uw: float


@dataclass(frozen=True)
class MuxSpec:
    """Multiplexer characterization (paper Table 1: mux2 110, mux3 115)."""

    delay2_ps: float
    delay3_ps: float
    area2_per_bit: float
    area3_per_bit: float
    energy_per_bit_pj: float

    def delay(self, fanin: int) -> float:
        """Delay of an n-input select tree (cascaded beyond 3 inputs)."""
        if fanin <= 1:
            return 0.0
        if fanin == 2:
            return self.delay2_ps
        if fanin == 3:
            return self.delay3_ps
        # balanced tree of mux3/mux2 levels
        levels = math.ceil(math.log(fanin, 3))
        return levels * self.delay3_ps

    def area(self, fanin: int, width: int) -> float:
        """Area of an n-input, ``width``-bit select tree."""
        if fanin <= 1:
            return 0.0
        if fanin == 2:
            return self.area2_per_bit * width
        if fanin == 3:
            return self.area3_per_bit * width
        # an n-input tree needs roughly (n-1) 2-input muxes
        return (fanin - 1) * self.area2_per_bit * width * 0.9


@dataclass(frozen=True)
class MemorySpec:
    """RAM macro characterization of a library.

    ``access_delay_ps`` is the per-port address-to-data delay of a
    single-port macro at the 256-word anchor depth; deeper macros pay a
    logarithmic decode penalty, dual-port macros a fixed factor for the
    second decoder.  ``access_cycles`` is the number of control steps a
    port access occupies (1 = data within the access state, the
    asynchronous-read model the rest of the timing engine assumes).
    """

    access_delay_ps: float
    area_per_bit: float
    periphery_area: float          # fixed per-bank decode/sense overhead
    energy_per_access_pj: float
    leakage_per_bit_uw: float
    dual_port_delay_factor: float = 1.15
    dual_port_area_factor: float = 1.7
    access_cycles: int = 1

    #: depth the access delay is characterized at.
    ANCHOR_DEPTH: int = 256

    def delay_ps(self, depth: int, ports: int) -> float:
        """Address-to-data delay of one bank at ``depth`` words."""
        depth = max(depth, 2)
        scale = 0.6 + 0.05 * math.log2(depth)
        delay = self.access_delay_ps * scale
        if ports >= 2:
            delay *= self.dual_port_delay_factor
        return delay

    def area(self, width: int, depth: int, ports: int) -> float:
        """Area of one bank."""
        bits = width * depth
        area = bits * self.area_per_bit + self.periphery_area
        if ports >= 2:
            area *= self.dual_port_area_factor
        return area


@dataclass(frozen=True)
class MemoryResource:
    """A bindable RAM macro: one bank of a declared memory.

    Duck-types the :class:`ResourceType` surface the timing engine and
    binder touch (``delay_ps``, ``width``, ``area``, ``family``,
    ``grade``, ``multicycle_ok``, :meth:`supports`), plus the
    memory-specific ``depth``/``ports``/``access_cycles``.
    """

    name: str
    width: int
    depth: int
    ports: int
    delay_ps: float
    area: float
    energy_pj: float
    leakage_uw: float
    access_cycles: int = 1
    grade: str = "typical"
    multicycle_ok: bool = False

    @property
    def family(self) -> str:
        """``ram1p`` / ``ram2p`` -- single- vs dual-port macros."""
        return f"ram{self.ports}p"

    def supports(self, kind: OpKind, width: int) -> bool:
        """RAM ports implement loads and stores up to the word width."""
        return kind in (OpKind.LOAD, OpKind.STORE) and width <= self.width

    def __str__(self) -> str:
        return self.name


#: fallback RAM characterization for libraries built without one
#: (calibrated alongside the 90 nm library).
DEFAULT_MEMORY_SPEC = MemorySpec(
    access_delay_ps=560.0,
    area_per_bit=2.0,
    periphery_area=900.0,
    energy_per_access_pj=1.1,
    leakage_per_bit_uw=0.004,
)


@dataclass(frozen=True)
class _Family:
    """A scalable component family: anchors at 32 bits, scaling laws."""

    family: str
    op_kinds: frozenset
    delay32_ps: float
    area32: float
    energy32_pj: float
    delay_law: str  # "log" | "linear" | "flat"
    area_law: str   # "linear" | "super"
    multicycle_ok: bool = False


class Library:
    """A technology library: scalable families plus FF and mux specs."""

    #: width buckets resources are generated at; operations bind to the
    #: smallest bucket that fits (paper IV.A: types are combinations of
    #: operation type and widths, and "we do not merge resources of very
    #: different bit widths").
    WIDTH_BUCKETS: Tuple[int, ...] = (1, 4, 8, 16, 32, 64)

    def __init__(
        self,
        name: str,
        families: Sequence[_Family],
        ff: FlipFlopSpec,
        mux: MuxSpec,
        grades: Sequence[SpeedGrade] = DEFAULT_GRADES,
        leakage_per_area_uw: float = 0.002,
        mem: Optional[MemorySpec] = None,
    ) -> None:
        self.name = name
        self.ff = ff
        self.mux = mux
        self.mem = mem if mem is not None else DEFAULT_MEMORY_SPEC
        self.grades: Tuple[SpeedGrade, ...] = tuple(grades)
        self._leak = leakage_per_area_uw
        self._families: Dict[str, _Family] = {f.family: f for f in families}
        self._types: Dict[Tuple[str, int, str], ResourceType] = {}
        self._mem_types: Dict[Tuple[int, int, int], MemoryResource] = {}
        self._kind_index: Dict[OpKind, List[str]] = {}
        for fam in families:
            for kind in fam.op_kinds:
                self._kind_index.setdefault(kind, []).append(fam.family)

    # ------------------------------------------------------------------
    # characterization
    # ------------------------------------------------------------------
    def _scale_delay(self, fam: _Family, width: int) -> float:
        if fam.delay_law == "flat":
            return fam.delay32_ps
        if fam.delay_law == "log":
            return fam.delay32_ps * (math.log2(max(width, 2)) / 5.0)
        if fam.delay_law == "linear":
            return fam.delay32_ps * (width / 32.0)
        raise ValueError(f"unknown delay law {fam.delay_law!r}")

    def _scale_area(self, fam: _Family, width: int) -> float:
        if fam.area_law == "super":
            return fam.area32 * (width / 32.0) ** 1.8
        return fam.area32 * (width / 32.0)

    def resource_type(self, family: str, width: int,
                      grade: str = "typical") -> ResourceType:
        """The resource type of a family at a width bucket and grade."""
        bucket = self.bucket(width)
        key = (family, bucket, grade)
        cached = self._types.get(key)
        if cached is not None:
            return cached
        fam = self._families[family]
        gr = self.grade(grade)
        delay = self._scale_delay(fam, bucket) * gr.delay_factor
        area = self._scale_area(fam, bucket) * gr.area_factor
        energy = fam.energy32_pj * (bucket / 32.0) * gr.energy_factor
        rtype = ResourceType(
            name=f"{family}_{bucket}" + ("" if grade == "typical" else f"_{grade}"),
            op_kinds=fam.op_kinds,
            width=bucket,
            delay_ps=delay,
            area=area,
            energy_pj=energy,
            leakage_uw=area * self._leak,
            grade=grade,
            family=family,
            multicycle_ok=fam.multicycle_ok,
        )
        self._types[key] = rtype
        return rtype

    def memory_resource(self, width: int, depth: int,
                        ports: int = 1) -> MemoryResource:
        """The RAM macro for one bank: ``width`` x ``depth``, P ports.

        Memory macros come in exact sizes (no width bucketing -- a RAM
        compiler generates the requested geometry) and a single grade:
        unlike logic, their timing is dominated by the bitcell array,
        which logic synthesis cannot upsize.
        """
        key = (width, depth, ports)
        cached = self._mem_types.get(key)
        if cached is not None:
            return cached
        spec = self.mem
        rtype = MemoryResource(
            name=f"ram{ports}p_{width}x{depth}",
            width=width,
            depth=depth,
            ports=ports,
            delay_ps=spec.delay_ps(depth, ports),
            area=spec.area(width, depth, ports),
            energy_pj=spec.energy_per_access_pj * (width / 32.0),
            leakage_uw=spec.leakage_per_bit_uw * width * depth,
            access_cycles=spec.access_cycles,
        )
        self._mem_types[key] = rtype
        return rtype

    def bucket(self, width: int) -> int:
        """Smallest width bucket that accommodates ``width`` bits."""
        for b in self.WIDTH_BUCKETS:
            if width <= b:
                return b
        return self.WIDTH_BUCKETS[-1]

    def grade(self, name: str) -> SpeedGrade:
        """Grade by name."""
        for gr in self.grades:
            if gr.name == name:
                return gr
        raise KeyError(f"unknown speed grade {name!r}")

    # ------------------------------------------------------------------
    # candidate enumeration for the binder
    # ------------------------------------------------------------------
    def families_for(self, kind: OpKind) -> List[str]:
        """Families able to implement an operation kind."""
        return list(self._kind_index.get(kind, []))

    def candidates(self, kind: OpKind, width: int,
                   grades: Optional[Iterable[str]] = None) -> List[ResourceType]:
        """Resource types for ``kind``/``width``, cheapest grade first."""
        grade_names = [g.name for g in self.grades] if grades is None else list(grades)
        result: List[ResourceType] = []
        for family in self.families_for(kind):
            for grade in grade_names:
                result.append(self.resource_type(family, width, grade))
        result.sort(key=lambda r: (r.area, r.delay_ps))
        return result

    def fastest(self, kind: OpKind, width: int) -> ResourceType:
        """The fastest (highest-grade) type for ``kind``/``width``."""
        cands = self.candidates(kind, width)
        if not cands:
            raise KeyError(f"no resource implements {kind.value} at w{width}")
        return min(cands, key=lambda r: r.delay_ps)

    def typical(self, kind: OpKind, width: int) -> ResourceType:
        """The typical-grade type for ``kind``/``width``."""
        fams = self.families_for(kind)
        if not fams:
            raise KeyError(f"no resource implements {kind.value} at w{width}")
        return self.resource_type(fams[0], width, "typical")

    def regrade(self, rtype: ResourceType, grade: str) -> ResourceType:
        """The same family/width at a different speed grade."""
        return self.resource_type(rtype.family, rtype.width, grade)

    def upsizing_ladder(self, rtype: ResourceType) -> List[ResourceType]:
        """Grades of ``rtype`` at or above its current grade, cheap first."""
        names = [g.name for g in self.grades]
        start = names.index(rtype.grade)
        return [self.regrade(rtype, g) for g in names[start:]]

    # ------------------------------------------------------------------
    # sequential / steering elements
    # ------------------------------------------------------------------
    def register_area(self, bits: int) -> float:
        """Area of a ``bits``-wide register."""
        return self.ff.area_per_bit * bits

    def register_leakage(self, bits: int) -> float:
        """Leakage of a ``bits``-wide register."""
        return self.ff.leakage_per_bit_uw * bits

    def table1(self, width: int = 32) -> Dict[str, object]:
        """The paper's Table 1 row: fastest typical implementations."""
        row: Dict[str, object] = {}
        for family in ("mul", "add", "gt", "neq"):
            if family in self._families:
                row[family] = round(
                    self.resource_type(family, width).delay_ps)
        row["ff"] = f"{self.ff.clk_to_q_ps:.0f}/{self.ff.alt_delay_ps:.0f}"
        row["mux2"] = round(self.mux.delay2_ps)
        row["mux3"] = round(self.mux.delay3_ps)
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Library({self.name}, families={sorted(self._families)})"


def make_family(
    family: str,
    kinds: Iterable[OpKind],
    delay32_ps: float,
    area32: float,
    energy32_pj: float,
    delay_law: str = "log",
    area_law: str = "linear",
    multicycle_ok: bool = False,
) -> _Family:
    """Helper used by concrete library definitions."""
    return _Family(
        family=family,
        op_kinds=frozenset(kinds),
        delay32_ps=delay32_ps,
        area32=area32,
        energy32_pj=energy32_pj,
        delay_law=delay_law,
        area_law=area_law,
        multicycle_ok=multicycle_ok,
    )
