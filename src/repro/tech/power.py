"""Power estimation for bound schedules.

Average power of a running loop implementation, the quantity on the y-axis
of the paper's Figure 11:

* **dynamic**: per-iteration switching energy of every bound resource,
  steering mux and register write, spread over the iteration period
  (II_effective x Tclk).  Operations predicated by if-conversion toggle
  only when their branch executes (activity 0.5 by default, as the folded
  stage/predicate gating suppresses the other half).
* **clock**: the clock tree toggles every cycle into every storage bit.
* **leakage**: area-proportional static power of resources, muxes and
  registers.

Units: energies in pJ, time in ps, power reported in mW (1 pJ/ps = 1 W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cdfg.ops import OpKind
from repro.core.schedule import Schedule

#: fraction of iterations in which a predicated operation actually toggles.
PREDICATED_ACTIVITY = 0.5
#: clock-tree energy per storage bit per cycle, relative to a FF write.
CLOCK_TREE_FACTOR = 0.4


@dataclass
class PowerReport:
    """Average-power breakdown in milliwatts."""

    dynamic_mw: float
    clock_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        """Total average power."""
        return self.dynamic_mw + self.clock_mw + self.leakage_mw

    def rows(self):
        """(component, mW) rows for reports."""
        return [
            ("dynamic", self.dynamic_mw),
            ("clock tree", self.clock_mw),
            ("leakage", self.leakage_mw),
            ("total", self.total_mw),
        ]


def estimate_power(schedule: Schedule,
                   activity: float = 1.0) -> PowerReport:
    """Average power of a schedule at full-rate operation.

    ``activity`` scales all data switching (1.0 = a new iteration every
    II cycles, the paper's throughput-oriented operating point).
    """
    lib = schedule.library
    regs = schedule.register_file()
    period_ps = schedule.ii_effective * schedule.clock_ps

    energy_pj = 0.0
    for _uid, bound in schedule.bindings.items():
        op = bound.op
        toggle = activity
        if not op.predicate.is_true:
            toggle *= PREDICATED_ACTIVITY
        if bound.inst is not None:
            energy_pj += bound.inst.rtype.energy_pj * toggle
        elif op.is_mux:
            energy_pj += lib.mux.energy_per_bit_pj * op.width * toggle
    # register writes: every stored value is written once per iteration
    energy_pj += regs.data_bits * lib.ff.energy_per_bit_pj * activity
    dynamic_mw = energy_pj / period_ps * 1000.0

    clock_pj_per_cycle = (regs.total_bits
                          * lib.ff.energy_per_bit_pj * CLOCK_TREE_FACTOR)
    clock_mw = clock_pj_per_cycle / schedule.clock_ps * 1000.0

    leak_uw = sum(inst.rtype.leakage_uw for inst in schedule.pool.instances)
    leak_uw += sum(cfg.banks * cfg.rtype.leakage_uw
                   for cfg in schedule.memories.values())
    leak_uw += lib.ff.leakage_per_bit_uw * regs.total_bits
    area_report = schedule.area_report()
    leak_uw += 0.002 * (area_report.sharing_muxes
                        + area_report.steering_muxes)
    return PowerReport(
        dynamic_mw=dynamic_mw,
        clock_mw=clock_mw,
        leakage_mw=leak_uw / 1000.0,
    )
