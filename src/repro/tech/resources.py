"""Resource instances managed by the binder.

A :class:`ResourceInstance` is one physical copy of a
:class:`~repro.tech.library.ResourceType` in the datapath being built.
It tracks which operation occupies it on every control step, including
the equivalent-edge busy semantics required by pipelining (paper section
V, step I.3b: "a resource used for operation op scheduled at edge ej is
considered busy for all edges ek equivalent to ej"), relaxed for
operations with mutually exclusive predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdfg.memory import MemoryDecl
from repro.cdfg.ops import Operation
from repro.cdfg.predicates import Predicate
from repro.tech.library import MemoryResource, ResourceType


class ResourceInstance:
    """One allocated copy of a resource type."""

    def __init__(self, rtype: ResourceType, index: int) -> None:
        self.rtype = rtype
        self.index = index
        #: stable identity independent of speed grade, so post-schedule
        #: regrading (slack compensation) does not invalidate netlist keys.
        self._base_name = f"{rtype.family}_{rtype.width}"
        #: stable instance name used in reports (``mul_32#0``); a plain
        #: attribute (not a property) because the timing engine reads it
        #: millions of times per pass.
        self.name = f"{self._base_name}#{index}"
        #: per-state occupancy: state -> list of (operation, predicate).
        #: Several operations may legally share a state when their
        #: predicates are mutually exclusive.
        self._occupancy: Dict[int, List[Operation]] = {}
        #: incrementally maintained distinct-occupant index (uid -> op):
        #: the binder sorts candidate instances by occupant count on
        #: every binding attempt, so this must be O(1), not a rebuild.
        self._ops_map: Dict[int, Operation] = {}
        #: shared mutation log: the name of every instance whose
        #: candidate-ordering inputs (occupant count, grade) change is
        #: appended here ("*" means everything changed).  The pool
        #: aliases every member's log to its own, so the binder's
        #: sorted-candidates memo can tell exactly which compatibility
        #: groups a mutation invalidated (log length = epoch).
        self._order_log: List[str] = []

    def occupants(self, state: int) -> List[Operation]:
        """Operations occupying this instance at a state."""
        return list(self._occupancy.get(state, ()))

    def states_used(self) -> List[int]:
        """All states where this instance is occupied."""
        return sorted(self._occupancy)

    @property
    def n_ops_bound(self) -> int:
        """Number of distinct operations bound to this instance."""
        return len(self._ops_map)

    def ops_bound(self) -> List[Operation]:
        """All operations bound to this instance (deduplicated)."""
        return [self._ops_map[uid] for uid in sorted(self._ops_map)]

    def is_free(self, op: Operation, states: List[int]) -> bool:
        """Whether ``op`` may occupy this instance on all ``states``.

        ``states`` must already include equivalent edges when pipelining.
        Occupied states are still usable when every current occupant's
        predicate is mutually exclusive with ``op``'s.
        """
        occupancy = self._occupancy
        if not occupancy:
            return True
        for state in states:
            for other in occupancy.get(state, ()):
                if not op.predicate.disjoint(other.predicate):
                    return False
        return True

    def occupy(self, op: Operation, states: List[int]) -> None:
        """Claim the instance for ``op`` on all ``states``."""
        if not self.is_free(op, states):
            raise ValueError(f"{self.name}: conflict binding {op.name}")
        for state in states:
            self._occupancy.setdefault(state, []).append(op)
        if op.uid not in self._ops_map:
            self._order_log.append(self.name)
        self._ops_map[op.uid] = op

    def release(self, op: Operation) -> None:
        """Undo a previous :meth:`occupy` of ``op`` (backtracking)."""
        for state in list(self._occupancy):
            self._occupancy[state] = [
                o for o in self._occupancy[state] if o.uid != op.uid]
            if not self._occupancy[state]:
                del self._occupancy[state]
        if self._ops_map.pop(op.uid, None) is not None:
            self._order_log.append(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourceInstance({self.name})"


class MemoryPortInstance(ResourceInstance):
    """One physical RAM port of one bank of a declared memory.

    Each port is an exclusive per-state resource exactly like a shared
    functional unit (predicate-disjoint accesses may share a port on
    one state); a bank with P ports contributes P instances, which is
    how "at most P accesses per bank per state" falls out of the
    ordinary occupancy machinery.  The port's input muxes in the timing
    engine are the RAM's address (and write-data) muxes.
    """

    def __init__(self, rtype: MemoryResource, memory: str,
                 bank: int, port: int) -> None:
        super().__init__(rtype, index=port)
        self.memory = memory
        self.bank = bank
        self.port = port
        self._base_name = f"ram_{memory}_b{bank}"
        self.name = f"{self._base_name}p{port}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryPortInstance({self.name})"


@dataclass
class MemoryConfig:
    """The physical realization of one declared memory in a schedule.

    ``banks`` is the *effective* banking factor -- the declared one,
    possibly raised by the relaxation driver's add-bank action.
    """

    decl: MemoryDecl
    banks: int
    rtype: MemoryResource
    #: port instances indexed ``[bank][port]``.
    port_insts: List[List[MemoryPortInstance]] = field(default_factory=list)

    @property
    def ports(self) -> int:
        """RAM ports per bank."""
        return self.decl.ports

    @property
    def area(self) -> float:
        """Total area of the memory's RAM macros."""
        return self.banks * self.rtype.area

    def all_port_insts(self) -> List[MemoryPortInstance]:
        """Every port instance, bank-major."""
        return [inst for bank in self.port_insts for inst in bank]


def build_memory_configs(
    memories: Dict[str, MemoryDecl],
    library,
    bank_overrides: Optional[Dict[str, int]] = None,
) -> Dict[str, MemoryConfig]:
    """Materialize RAM banks and port instances for a region's memories."""
    overrides = bank_overrides or {}
    configs: Dict[str, MemoryConfig] = {}
    for name, decl in sorted(memories.items()):
        banks = max(decl.banks, overrides.get(name, decl.banks))
        rtype = library.memory_resource(
            decl.width, -(-decl.depth // banks), decl.ports)
        port_insts = [
            [MemoryPortInstance(rtype, name, b, p)
             for p in range(decl.ports)]
            for b in range(banks)
        ]
        configs[name] = MemoryConfig(decl, banks, rtype, port_insts)
    return configs


class ResourcePool:
    """The set of allocated instances, grouped by family/width.

    The scheduler starts from the allocation lower bound (paper IV.A) and
    the relaxation expert system adds instances when a pass fails for lack
    of resources.
    """

    def __init__(self) -> None:
        self._instances: List[ResourceInstance] = []
        self._counters: Dict[str, int] = {}
        #: guards the binder's sorted-candidates memo (see
        #: :class:`ResourceInstance`); every member instance aliases it.
        self._order_log: List[str] = []

    def add(self, rtype: ResourceType) -> ResourceInstance:
        """Allocate one more instance of ``rtype``."""
        key = f"{rtype.family}_{rtype.width}"
        idx = self._counters.get(key, 0)
        self._counters[key] = idx + 1
        inst = ResourceInstance(rtype, idx)
        inst._order_log = self._order_log
        self._order_log.append("*")
        self._instances.append(inst)
        return inst

    def remove(self, inst: ResourceInstance) -> None:
        """Drop an instance (only used by allocation refinement)."""
        self._instances.remove(inst)
        self._order_log.append("*")

    @property
    def instances(self) -> List[ResourceInstance]:
        """All instances in allocation order."""
        return list(self._instances)

    def compatible(self, op: Operation) -> List[ResourceInstance]:
        """Instances whose type can implement ``op`` (allocation order)."""
        return [inst for inst in self._instances
                if inst.rtype.supports(op.kind, op.resource_width)]

    def count(self, family: str, width: int) -> int:
        """Number of instances of a family/width bucket."""
        return self._counters.get(f"{family}_{width}", 0)

    def total_area(self) -> float:
        """Sum of instance areas (excluding registers and muxes)."""
        return sum(inst.rtype.area for inst in self._instances)

    def clear_occupancy(self) -> None:
        """Release all bindings (between scheduling passes)."""
        for inst in self._instances:
            inst._occupancy.clear()
            inst._ops_map.clear()
        self._order_log.append("*")

    def regrade(self, inst: ResourceInstance, rtype: ResourceType) -> None:
        """Swap an instance's type for a different grade of the family."""
        if rtype.family != inst.rtype.family or rtype.width != inst.rtype.width:
            raise ValueError("regrade must stay within the family/width")
        inst.rtype = rtype
        self._order_log.append(inst.name)

    def __len__(self) -> int:
        return len(self._instances)

    def summary(self) -> Dict[str, int]:
        """Instance counts keyed by type name (for reports)."""
        out: Dict[str, int] = {}
        for inst in self._instances:
            out[inst.rtype.name] = out.get(inst.rtype.name, 0) + 1
        return dict(sorted(out.items()))
