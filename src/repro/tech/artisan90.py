"""The paper's 90 nm typical library (``artisan_90nm_typical``).

Delays are calibrated to Table 1 at 32 bits: mul 930 ps, add 350 ps,
gt 220 ps, neq 60 ps, ff 40/70, mux2 110 ps, mux3 115 ps.  Areas are
calibrated so Example 1's three microarchitectures land on the paper's
Table 3 values (16094 / 24010 / 30491 area units for S / P2 / P1).
"""

from __future__ import annotations

from repro.cdfg.ops import OpKind
from repro.tech.library import (
    FlipFlopSpec,
    Library,
    MemorySpec,
    MuxSpec,
    make_family,
)

#: area units per register bit (Table 3 calibration).
_REG_AREA_PER_BIT = 30.0


def artisan90() -> Library:
    """Construct the calibrated 90 nm typical library."""
    families = [
        make_family(
            "mul", [OpKind.MUL], delay32_ps=930.0, area32=6996.0,
            energy32_pj=4.2, delay_law="log", area_law="super",
            multicycle_ok=True),
        make_family(
            "div", [OpKind.DIV, OpKind.MOD], delay32_ps=2800.0, area32=9200.0,
            energy32_pj=9.5, delay_law="linear", area_law="super",
            multicycle_ok=True),
        make_family(
            "add", [OpKind.ADD, OpKind.SUB, OpKind.NEG],
            delay32_ps=350.0, area32=1124.0,
            energy32_pj=0.45, delay_law="log", area_law="linear"),
        make_family(
            "gt", [OpKind.GT, OpKind.LT, OpKind.GE, OpKind.LE],
            delay32_ps=220.0, area32=438.0,
            energy32_pj=0.20, delay_law="log", area_law="linear"),
        make_family(
            "neq", [OpKind.NEQ, OpKind.EQ], delay32_ps=60.0, area32=232.0,
            energy32_pj=0.10, delay_law="log", area_law="linear"),
        make_family(
            "logic", [OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT],
            delay32_ps=50.0, area32=160.0,
            energy32_pj=0.06, delay_law="flat", area_law="linear"),
        make_family(
            "shift", [OpKind.SHL, OpKind.SHR], delay32_ps=240.0, area32=520.0,
            energy32_pj=0.18, delay_law="log", area_law="linear"),
        make_family(
            "ip", [OpKind.CALL], delay32_ps=1200.0, area32=5200.0,
            energy32_pj=3.0, delay_law="flat", area_law="linear",
            multicycle_ok=True),
    ]
    ff = FlipFlopSpec(
        clk_to_q_ps=40.0,
        setup_ps=40.0,
        alt_delay_ps=70.0,
        area_per_bit=_REG_AREA_PER_BIT,
        energy_per_bit_pj=0.02,
        leakage_per_bit_uw=0.06,
    )
    mux = MuxSpec(
        delay2_ps=110.0,
        delay3_ps=115.0,
        area2_per_bit=12.0,
        area3_per_bit=20.0,
        energy_per_bit_pj=0.008,
    )
    # single-port SRAM macro: address-to-data comparable to (but below)
    # the 32-bit multiply, bitcells far denser than flip-flops
    mem = MemorySpec(
        access_delay_ps=560.0,
        area_per_bit=2.0,
        periphery_area=900.0,
        energy_per_access_pj=1.1,
        leakage_per_bit_uw=0.004,
    )
    return Library("artisan_90nm_typical", families, ff, mux, mem=mem)
