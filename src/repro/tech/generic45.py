"""A second, faster process corner for exploration experiments.

Not from the paper; provided so sweeps and tests can demonstrate that the
flow is library-agnostic.  Roughly a 45 nm generic node: ~2.2x faster and
~0.45x the area of :mod:`repro.tech.artisan90`.
"""

from __future__ import annotations

from repro.cdfg.ops import OpKind
from repro.tech.library import (
    FlipFlopSpec,
    Library,
    MemorySpec,
    MuxSpec,
    make_family,
)

_SPEEDUP = 2.2
_SHRINK = 0.45


def generic45() -> Library:
    """Construct the scaled 45 nm generic library."""
    families = [
        make_family(
            "mul", [OpKind.MUL], delay32_ps=930.0 / _SPEEDUP,
            area32=6996.0 * _SHRINK, energy32_pj=1.6,
            delay_law="log", area_law="super", multicycle_ok=True),
        make_family(
            "div", [OpKind.DIV, OpKind.MOD], delay32_ps=2800.0 / _SPEEDUP,
            area32=9200.0 * _SHRINK, energy32_pj=3.8,
            delay_law="linear", area_law="super", multicycle_ok=True),
        make_family(
            "add", [OpKind.ADD, OpKind.SUB, OpKind.NEG],
            delay32_ps=350.0 / _SPEEDUP, area32=1124.0 * _SHRINK,
            energy32_pj=0.18, delay_law="log", area_law="linear"),
        make_family(
            "gt", [OpKind.GT, OpKind.LT, OpKind.GE, OpKind.LE],
            delay32_ps=220.0 / _SPEEDUP, area32=438.0 * _SHRINK,
            energy32_pj=0.08, delay_law="log", area_law="linear"),
        make_family(
            "neq", [OpKind.NEQ, OpKind.EQ], delay32_ps=60.0 / _SPEEDUP,
            area32=232.0 * _SHRINK, energy32_pj=0.04,
            delay_law="log", area_law="linear"),
        make_family(
            "logic", [OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT],
            delay32_ps=50.0 / _SPEEDUP, area32=160.0 * _SHRINK,
            energy32_pj=0.02, delay_law="flat", area_law="linear"),
        make_family(
            "shift", [OpKind.SHL, OpKind.SHR], delay32_ps=240.0 / _SPEEDUP,
            area32=520.0 * _SHRINK, energy32_pj=0.07,
            delay_law="log", area_law="linear"),
        make_family(
            "ip", [OpKind.CALL], delay32_ps=1200.0 / _SPEEDUP,
            area32=5200.0 * _SHRINK, energy32_pj=1.2,
            delay_law="flat", area_law="linear", multicycle_ok=True),
    ]
    ff = FlipFlopSpec(
        clk_to_q_ps=40.0 / _SPEEDUP,
        setup_ps=40.0 / _SPEEDUP,
        alt_delay_ps=70.0 / _SPEEDUP,
        area_per_bit=30.0 * _SHRINK,
        energy_per_bit_pj=0.008,
        leakage_per_bit_uw=0.09,
    )
    mux = MuxSpec(
        delay2_ps=110.0 / _SPEEDUP,
        delay3_ps=115.0 / _SPEEDUP,
        area2_per_bit=12.0 * _SHRINK,
        area3_per_bit=20.0 * _SHRINK,
        energy_per_bit_pj=0.003,
    )
    mem = MemorySpec(
        access_delay_ps=560.0 / _SPEEDUP,
        area_per_bit=2.0 * _SHRINK,
        periphery_area=900.0 * _SHRINK,
        energy_per_access_pj=0.45,
        leakage_per_bit_uw=0.006,
    )
    return Library("generic_45nm", families, ff, mux,
                   leakage_per_area_uw=0.005, mem=mem)
