"""Technology library substrate: resource characterization, speed grades,
instances for the binder, and the power model."""

from repro.tech.artisan90 import artisan90
from repro.tech.generic45 import generic45
from repro.tech.library import (
    DEFAULT_GRADES,
    FlipFlopSpec,
    Library,
    MuxSpec,
    ResourceType,
    SpeedGrade,
)
from repro.tech.resources import ResourceInstance, ResourcePool

__all__ = [
    "DEFAULT_GRADES",
    "FlipFlopSpec",
    "Library",
    "MuxSpec",
    "ResourceInstance",
    "ResourcePool",
    "ResourceType",
    "SpeedGrade",
    "artisan90",
    "generic45",
]
