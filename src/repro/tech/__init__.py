"""Technology library substrate: resource characterization, speed grades,
RAM macros, instances for the binder, and the power model."""

from repro.tech.artisan90 import artisan90
from repro.tech.generic45 import generic45
from repro.tech.library import (
    DEFAULT_GRADES,
    FlipFlopSpec,
    Library,
    MemoryResource,
    MemorySpec,
    MuxSpec,
    ResourceType,
    SpeedGrade,
)
from repro.tech.resources import (
    MemoryPortInstance,
    ResourceInstance,
    ResourcePool,
)

__all__ = [
    "DEFAULT_GRADES",
    "FlipFlopSpec",
    "Library",
    "MemoryPortInstance",
    "MemoryResource",
    "MemorySpec",
    "MuxSpec",
    "ResourceInstance",
    "ResourcePool",
    "ResourceType",
    "SpeedGrade",
    "artisan90",
    "generic45",
]
