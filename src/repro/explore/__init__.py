"""Design-space exploration: microarchitecture/clock sweeps and Pareto
analysis (the paper's Figures 10 and 11).

``SweepResult`` and ``run_sweep`` live in :mod:`repro.flow.executor`
(the parallel executor) and are re-exported here lazily: ``flow``
imports ``explore``'s leaf modules at import time, so the reverse edge
must resolve at attribute-access time.
"""

from repro.explore.microarch import (
    InfeasiblePoint,
    Microarch,
    PAPER_CLOCKS_PS,
    PAPER_MICROARCHS,
    banked_microarchs,
)
from repro.explore.pareto import DesignPoint, group_by_microarch, pareto_front
from repro.explore.record import read_json, write_csv, write_json
from repro.explore.sweep import sweep_microarchitectures, synthesize_point

#: names resolved from repro.flow.executor on first access (PEP 562).
_LAZY_FLOW_EXPORTS = ("SweepResult", "run_sweep")

__all__ = [
    "DesignPoint",
    "InfeasiblePoint",
    "Microarch",
    "PAPER_CLOCKS_PS",
    "PAPER_MICROARCHS",
    "SweepResult",
    "banked_microarchs",
    "group_by_microarch",
    "read_json",
    "pareto_front",
    "run_sweep",
    "sweep_microarchitectures",
    "synthesize_point",
    "write_csv",
    "write_json",
]


def __getattr__(name: str):
    if name in _LAZY_FLOW_EXPORTS:
        from repro.flow import executor

        value = getattr(executor, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
