"""Design-space exploration: microarchitecture/clock sweeps and Pareto
analysis (the paper's Figures 10 and 11)."""

from repro.explore.pareto import DesignPoint, group_by_microarch, pareto_front
from repro.explore.record import read_json, write_csv, write_json
from repro.explore.sweep import (
    Microarch,
    PAPER_MICROARCHS,
    sweep_microarchitectures,
    synthesize_point,
)

__all__ = [
    "DesignPoint",
    "Microarch",
    "PAPER_MICROARCHS",
    "group_by_microarch",
    "read_json",
    "pareto_front",
    "sweep_microarchitectures",
    "synthesize_point",
    "write_csv",
    "write_json",
]
