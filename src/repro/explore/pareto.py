"""Pareto front extraction over implementation points.

:func:`pareto_front` is a sort-based sweep -- ``O(n log n)`` for two
objectives and for the optional third (power) objective, instead of the
quadratic all-pairs scan it replaces -- so front extraction stays cheap
even on the autotuner's accumulated result stores.  Semantics are
unchanged: minimization on every axis, exact ties kept.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DesignPoint:
    """One implementation: the axes of the paper's Figures 10/11."""

    label: str
    microarch: str
    clock_ps: float
    ii: int
    latency: int
    delay_ps: float
    area: float
    power_mw: float

    def row(self) -> List[object]:
        """Table row matching :func:`repro.rtl.reports.pareto_header`."""
        return [self.microarch, round(self.clock_ps), self.ii,
                round(self.delay_ps), round(self.area, 1),
                round(self.power_mw, 3)]

    def to_json(self) -> Dict[str, object]:
        """JSON-friendly record (stable field set, round-trips through
        :meth:`from_json`)."""
        return {"label": self.label, "microarch": self.microarch,
                "clock_ps": self.clock_ps, "ii": self.ii,
                "latency": self.latency, "delay_ps": self.delay_ps,
                "area": self.area, "power_mw": self.power_mw}

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "DesignPoint":
        """Rebuild a point from :meth:`to_json` output."""
        return cls(label=str(payload["label"]),
                   microarch=str(payload["microarch"]),
                   clock_ps=float(payload["clock_ps"]),
                   ii=int(payload["ii"]),
                   latency=int(payload["latency"]),
                   delay_ps=float(payload["delay_ps"]),
                   area=float(payload["area"]),
                   power_mw=float(payload["power_mw"]))


def dominates(a: DesignPoint, b: DesignPoint,
              metrics: Sequence[str] = ("delay_ps", "area")) -> bool:
    """Whether ``a`` dominates ``b``: <= on every metric, < on one."""
    le = all(getattr(a, m) <= getattr(b, m) for m in metrics)
    lt = any(getattr(a, m) < getattr(b, m) for m in metrics)
    return le and lt


def _front_2d(order: List[int], xs: List[float],
              ys: List[float]) -> set:
    """Surviving indices of the 2-D sweep over pre-sorted ``order``.

    One pass over the points grouped by equal ``x``: a group survives
    only when its minimal ``y`` strictly undercuts everything seen at
    smaller ``x`` (a tie there is domination -- the earlier point wins
    on ``x``); within a surviving group, exactly the minimal-``y``
    points are kept, which preserves exact-duplicate ties.
    """
    keep: set = set()
    best_y = float("inf")
    i, n = 0, len(order)
    while i < n:
        j = i
        group_y = float("inf")
        while j < n and xs[order[j]] == xs[order[i]]:
            group_y = min(group_y, ys[order[j]])
            j += 1
        if group_y < best_y:
            keep.update(k for k in order[i:j] if ys[k] == group_y)
            best_y = group_y
        i = j
    return keep


class _Staircase:
    """Minimal (y, z) pairs under componentwise <=, for the 3-D sweep.

    Kept sorted by ``y`` ascending with ``z`` strictly descending, so a
    domination query and an insertion are both ``O(log n)`` (plus
    amortized removals).
    """

    def __init__(self) -> None:
        self._ys: List[float] = []
        self._zs: List[float] = []

    def covers(self, y: float, z: float) -> bool:
        """Whether some stored pair is <= (y, z) componentwise."""
        i = bisect.bisect_right(self._ys, y)
        return i > 0 and self._zs[i - 1] <= z

    def insert(self, y: float, z: float) -> None:
        """Add a pair, dropping pairs it dominates."""
        if self.covers(y, z):
            return
        i = bisect.bisect_left(self._ys, y)
        j = i
        while j < len(self._ys) and self._zs[j] >= z:
            j += 1
        self._ys[i:j] = [y]
        self._zs[i:j] = [z]


def _front_3d(order: List[int], xs: List[float], ys: List[float],
              zs: List[float]) -> set:
    """Surviving indices of the 3-D sweep over pre-sorted ``order``."""
    keep: set = set()
    stair = _Staircase()
    i, n = 0, len(order)
    while i < n:
        j = i
        while j < n and xs[order[j]] == xs[order[i]]:
            j += 1
        group = order[i:j]
        # against strictly-smaller x: <= on (y, z) is domination (the
        # earlier point is already strictly better on x) ...
        survivors = [k for k in group
                     if not stair.covers(ys[k], zs[k])]
        # ... within the equal-x group, dominance reduces to the 2-D
        # problem on (y, z), ties kept.
        sub = sorted(range(len(survivors)),
                     key=lambda s: (ys[survivors[s]], zs[survivors[s]]))
        sub_keep = _front_2d([survivors[s] for s in sub], ys, zs)
        keep.update(sub_keep)
        for k in sub_keep:
            stair.insert(ys[k], zs[k])
        i = j
    return keep


def pareto_front(points: Sequence[DesignPoint],
                 x: str = "delay_ps", y: str = "area",
                 z: Optional[str] = None) -> List[DesignPoint]:
    """Non-dominated points, minimizing ``x`` and ``y`` (and ``z``).

    Pass ``z`` (typically ``"power_mw"``) for a three-objective front;
    the default two-objective call keeps its original signature and
    semantics.  Runs in ``O(n log n)`` either way.
    """
    n = len(points)
    if n == 0:
        return []
    xs = [float(getattr(p, x)) for p in points]
    ys = [float(getattr(p, y)) for p in points]
    if z is None:
        order = sorted(range(n), key=lambda i: (xs[i], ys[i]))
        keep = _front_2d(order, xs, ys)
    else:
        zs = [float(getattr(p, z)) for p in points]
        order = sorted(range(n), key=lambda i: (xs[i], ys[i], zs[i]))
        keep = _front_3d(order, xs, ys, zs)
    result = [p for i, p in enumerate(points) if i in keep]
    result.sort(key=lambda p: getattr(p, x))
    return result


def group_by_microarch(points: Sequence[DesignPoint]) -> Dict[str, List[DesignPoint]]:
    """Points grouped into per-microarchitecture curves (Fig. 10 lines)."""
    out: Dict[str, List[DesignPoint]] = {}
    for p in points:
        out.setdefault(p.microarch, []).append(p)
    for curve in out.values():
        curve.sort(key=lambda p: p.delay_ps)
    return out
