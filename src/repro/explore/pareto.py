"""Pareto front extraction over implementation points."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class DesignPoint:
    """One implementation: the axes of the paper's Figures 10/11."""

    label: str
    microarch: str
    clock_ps: float
    ii: int
    latency: int
    delay_ps: float
    area: float
    power_mw: float

    def row(self) -> List[object]:
        """Table row matching :func:`repro.rtl.reports.pareto_header`."""
        return [self.microarch, round(self.clock_ps), self.ii,
                round(self.delay_ps), round(self.area, 1),
                round(self.power_mw, 3)]


def pareto_front(points: Sequence[DesignPoint],
                 x: str = "delay_ps", y: str = "area") -> List[DesignPoint]:
    """Non-dominated points, minimizing both ``x`` and ``y``."""
    result: List[DesignPoint] = []
    for p in points:
        px, py = getattr(p, x), getattr(p, y)
        dominated = False
        for q in points:
            if q is p:
                continue
            qx, qy = getattr(q, x), getattr(q, y)
            if qx <= px and qy <= py and (qx < px or qy < py):
                dominated = True
                break
        if not dominated:
            result.append(p)
    result.sort(key=lambda p: getattr(p, x))
    return result


def group_by_microarch(points: Sequence[DesignPoint]) -> Dict[str, List[DesignPoint]]:
    """Points grouped into per-microarchitecture curves (Fig. 10 lines)."""
    out: Dict[str, List[DesignPoint]] = {}
    for p in points:
        out.setdefault(p.microarch, []).append(p)
    for curve in out.values():
        curve.sort(key=lambda p: p.delay_ps)
    return out
