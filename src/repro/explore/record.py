"""Experiment record writers.

Sweeps and benchmark harnesses produce :class:`DesignPoint` lists; these
helpers persist them as CSV or JSON so plots and papers can be built
outside this repository without re-running HLS.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.explore.pareto import DesignPoint

_FIELDS = ("label", "microarch", "clock_ps", "ii", "latency",
           "delay_ps", "area", "power_mw")


def write_csv(points: Iterable[DesignPoint],
              path: Union[str, Path]) -> Path:
    """Write sweep points to a CSV file; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for p in points:
            writer.writerow([getattr(p, f) for f in _FIELDS])
    return path


def write_json(points: Iterable[DesignPoint],
               path: Union[str, Path]) -> Path:
    """Write sweep points to a JSON file; returns the path."""
    path = Path(path)
    payload = [{f: getattr(p, f) for f in _FIELDS} for p in points]
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def read_json(path: Union[str, Path]) -> List[DesignPoint]:
    """Load sweep points back from a JSON record."""
    payload = json.loads(Path(path).read_text())
    return [DesignPoint(**entry) for entry in payload]
