"""Microarchitecture x clock design-space exploration.

The paper's Figure 10/11 experiment: one kernel (IDCT), several
microarchitectures (non-pipelined at latencies 8/16/32, pipelined with
LI 16 and 32 at half-latency II), each synthesized across a range of
clock periods.  The delay axis is ``II_effective * Tclk``; area and power
come from the bound implementation (faster clocks force faster, larger
speed grades and multi-cycle splits, which is what bends the curves).

The functions here are thin shims over the unified compilation pipeline
(:mod:`repro.flow`): :func:`repro.flow.executor.run_sweep` is the real
executor -- cache-aware, parallel, and explicit about infeasible grid
points -- while these wrappers preserve the original list-of-points
signatures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.cdfg.region import Region
from repro.core.scheduler import SchedulerOptions
from repro.explore.microarch import (
    InfeasiblePoint,
    Microarch,
    PAPER_CLOCKS_PS,
    PAPER_MICROARCHS,
    banked_microarchs,
)
from repro.explore.pareto import DesignPoint
from repro.tech.library import Library

if TYPE_CHECKING:  # imported lazily at call time to avoid a cycle:
    from repro.flow.cache import FlowCache  # flow -> explore at import

__all__ = [
    "InfeasiblePoint",
    "Microarch",
    "PAPER_CLOCKS_PS",
    "PAPER_MICROARCHS",
    "banked_microarchs",
    "sweep_microarchitectures",
    "synthesize_point",
]


def synthesize_point(
    region_factory: Callable[[], Region],
    library: Library,
    microarch: Microarch,
    clock_ps: float,
    options: Optional[SchedulerOptions] = None,
    cache: Optional["FlowCache"] = None,
) -> Optional[DesignPoint]:
    """One HLS run; None when the configuration is infeasible."""
    from repro.flow.executor import synthesize_design_point

    result = synthesize_design_point(
        region_factory, library, microarch, clock_ps, options, cache)
    if isinstance(result, InfeasiblePoint):
        return None
    return result


def sweep_microarchitectures(
    region_factory: Callable[[], Region],
    library: Library,
    microarchs: Sequence[Microarch] = PAPER_MICROARCHS,
    clocks_ps: Sequence[float] = PAPER_CLOCKS_PS,
    options: Optional[SchedulerOptions] = None,
    jobs: int = 1,
    cache: Optional["FlowCache"] = None,
    infeasible: Optional[List[InfeasiblePoint]] = None,
) -> List[DesignPoint]:
    """The full Figure 10/11 grid (25 runs at the default settings).

    Feasible points come back in deterministic grid order regardless of
    ``jobs``.  Pass a list as ``infeasible`` to also collect the grid
    points the scheduler rejected (they are no longer silently dropped:
    callers that ignore them can still see the count via the list).
    """
    from repro.flow.executor import run_sweep

    result = run_sweep(region_factory, library, microarchs, clocks_ps,
                       options=options, jobs=jobs, cache=cache)
    if infeasible is not None:
        infeasible.extend(result.infeasible)
    return result.points
