"""Microarchitecture x clock design-space exploration.

The paper's Figure 10/11 experiment: one kernel (IDCT), several
microarchitectures (non-pipelined at latencies 8/16/32, pipelined with
LI 16 and 32 at half-latency II), each synthesized across a range of
clock periods.  The delay axis is ``II_effective * Tclk``; area and power
come from the bound implementation (faster clocks force faster, larger
speed grades and multi-cycle splits, which is what bends the curves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cdfg.region import PipelineSpec, Region
from repro.core.schedule import Schedule, ScheduleError
from repro.core.scheduler import SchedulerOptions, schedule_region
from repro.explore.pareto import DesignPoint
from repro.tech.library import Library
from repro.tech.power import estimate_power


@dataclass(frozen=True)
class Microarch:
    """One microarchitecture: a fixed latency, optionally pipelined."""

    name: str
    latency: int
    ii: Optional[int] = None  # None = non-pipelined

    @property
    def ii_effective(self) -> int:
        """Cycles between iterations."""
        return self.ii if self.ii is not None else self.latency


#: the paper's Figure 10 microarchitecture set.
PAPER_MICROARCHS: Sequence[Microarch] = (
    Microarch("Non-Pipelined 8", 8),
    Microarch("Non-Pipelined 16", 16),
    Microarch("Non-Pipelined 32", 32),
    Microarch("Pipelined 16", 16, ii=8),
    Microarch("Pipelined 32", 32, ii=16),
)


def synthesize_point(
    region_factory: Callable[[], Region],
    library: Library,
    microarch: Microarch,
    clock_ps: float,
    options: Optional[SchedulerOptions] = None,
) -> Optional[DesignPoint]:
    """One HLS run; None when the configuration is infeasible."""
    region = region_factory()
    region.min_latency = microarch.latency
    region.max_latency = microarch.latency
    pipeline = PipelineSpec(ii=microarch.ii) if microarch.ii else None
    try:
        schedule = schedule_region(region, library, clock_ps,
                                   pipeline=pipeline, options=options)
    except ScheduleError:
        return None
    power = estimate_power(schedule)
    return DesignPoint(
        label=f"{microarch.name}@{clock_ps:.0f}",
        microarch=microarch.name,
        clock_ps=clock_ps,
        ii=schedule.ii_effective,
        latency=schedule.latency,
        delay_ps=schedule.delay_ps,
        area=schedule.area,
        power_mw=power.total_mw,
    )


def sweep_microarchitectures(
    region_factory: Callable[[], Region],
    library: Library,
    microarchs: Sequence[Microarch] = PAPER_MICROARCHS,
    clocks_ps: Sequence[float] = (1000.0, 1250.0, 1600.0, 2100.0, 2800.0),
    options: Optional[SchedulerOptions] = None,
) -> List[DesignPoint]:
    """The full Figure 10/11 grid (25 runs at the default settings)."""
    points: List[DesignPoint] = []
    for microarch in microarchs:
        for clock in clocks_ps:
            point = synthesize_point(region_factory, library, microarch,
                                     clock, options)
            if point is not None:
                points.append(point)
    return points
