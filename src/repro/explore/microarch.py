"""Microarchitecture vocabulary of the design-space exploration.

A :class:`Microarch` names one point on the paper's microarchitecture
axis (Figure 10): a fixed latency, optionally pipelined at a designer
II.  :data:`PAPER_MICROARCHS` and :data:`PAPER_CLOCKS_PS` span the
Figure 10/11 grid.  :class:`InfeasiblePoint` records a grid point the
scheduler could not realize -- sweeps report these explicitly instead of
silently dropping them.

This module is dependency-free so both :mod:`repro.explore.sweep` and
:mod:`repro.flow.executor` can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Microarch:
    """One microarchitecture: a fixed latency, optionally pipelined."""

    name: str
    latency: int
    ii: Optional[int] = None  # None = non-pipelined

    @property
    def ii_effective(self) -> int:
        """Cycles between iterations."""
        return self.ii if self.ii is not None else self.latency


@dataclass(frozen=True)
class InfeasiblePoint:
    """A sweep grid point the scheduler proved overconstrained."""

    microarch: str
    clock_ps: float
    reason: str

    def describe(self) -> str:
        """One-line report entry (shared by the CLI and examples)."""
        return (f"infeasible: {self.microarch} @ {self.clock_ps:.0f} ps "
                f"-- {self.reason}")


#: the paper's Figure 10 microarchitecture set.
PAPER_MICROARCHS: Sequence[Microarch] = (
    Microarch("Non-Pipelined 8", 8),
    Microarch("Non-Pipelined 16", 16),
    Microarch("Non-Pipelined 32", 32),
    Microarch("Pipelined 16", 16, ii=8),
    Microarch("Pipelined 32", 32, ii=16),
)

#: the paper's Figure 10/11 clock-period axis (ps).
PAPER_CLOCKS_PS: Sequence[float] = (1000.0, 1250.0, 1600.0, 2100.0, 2800.0)
