"""Microarchitecture vocabulary of the design-space exploration.

A :class:`Microarch` names one point on the paper's microarchitecture
axis (Figure 10): a fixed latency, optionally pipelined at a designer
II.  :data:`PAPER_MICROARCHS` and :data:`PAPER_CLOCKS_PS` span the
Figure 10/11 grid.  :class:`InfeasiblePoint` records a grid point the
scheduler could not realize -- sweeps report these explicitly instead of
silently dropping them.

This module is dependency-free so both :mod:`repro.explore.sweep` and
:mod:`repro.flow.executor` can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Microarch:
    """One microarchitecture: a fixed latency, optionally pipelined,
    optionally with unroll, memory banking and/or FIFO depth overrides.

    ``banking`` maps memory names to cyclic banking factors applied on
    top of the region's declarations -- the sweep axis that exposes
    memory-port-constrained II; ``channel_depths`` does the same for a
    dataflow composition's FIFO capacities.  Both are stored as sorted
    tuples of pairs so the microarchitecture stays hashable (sweep
    grids key on it).  ``unroll`` replicates the loop body before
    scheduling (one region iteration then performs ``unroll`` source
    iterations).

    Example::

        base = Microarch("Pipelined 16", 16, ii=8)
        banked = base.with_banking({"a": 4})          # memory axis
        deep = base.with_channel_depth({"s": 3})      # dataflow axis
        wide = base.with_unroll(2)                    # unroll axis
        assert base.ii_effective == 8
    """

    name: str
    latency: int
    ii: Optional[int] = None  # None = non-pipelined
    banking: Optional[Tuple[Tuple[str, int], ...]] = None
    #: FIFO depth overrides for dataflow compositions: channel name ->
    #: depth (sorted tuple of pairs, keeping the microarch hashable).
    channel_depths: Optional[Tuple[Tuple[str, int], ...]] = None
    #: loop-unroll factor applied before scheduling (None/1 = as built).
    unroll: Optional[int] = None

    @property
    def ii_effective(self) -> int:
        """Cycles between iterations."""
        return self.ii if self.ii is not None else self.latency

    def with_banking(self, banking: Dict[str, int]) -> "Microarch":
        """A copy with memory banking overrides (and a labeled name)."""
        pairs = tuple(sorted(banking.items()))
        label = ",".join(f"{mem}x{banks}" for mem, banks in pairs)
        return replace(self, name=f"{self.name} [banks {label}]",
                       banking=pairs)

    def with_channel_depth(self, depths: Dict[str, int]) -> "Microarch":
        """A copy with FIFO depth overrides (and a labeled name).

        The dataflow analogue of :meth:`with_banking`: the channel-depth
        axis of a streaming sweep
        (:func:`repro.dataflow.sweep_channel_depths`).
        """
        pairs = tuple(sorted(depths.items()))
        label = ",".join(f"{chan}={depth}" for chan, depth in pairs)
        return replace(self, name=f"{self.name} [depth {label}]",
                       channel_depths=pairs)

    def apply_channel_depths(self, pipeline) -> None:
        """Rewrite a :class:`~repro.dataflow.Pipeline`'s channel depths
        in place (raises ``DataflowError`` on unknown channels)."""
        if not self.channel_depths:
            return
        for chan, depth in self.channel_depths:
            pipeline.set_depth(chan, depth)

    def with_unroll(self, factor: int) -> "Microarch":
        """A copy with a loop-unroll factor (and a labeled name)."""
        if factor < 1:
            raise ValueError(f"unroll factor must be >= 1, got {factor}")
        return replace(self, name=f"{self.name} [unroll x{factor}]",
                       unroll=factor)

    def apply_unroll(self, region):
        """The region the scheduler should see: unrolled when asked.

        Unlike :meth:`apply_banking` this returns a (possibly new)
        region -- :func:`repro.cdfg.transforms.unroll.unroll_loop`
        rebuilds the DFG rather than mutating it.
        """
        if self.unroll is None or self.unroll == 1:
            return region
        from repro.cdfg.transforms.unroll import unroll_loop

        return unroll_loop(region, self.unroll)

    def apply_banking(self, region) -> None:
        """Rewrite the region's memory declarations in place.

        Dependence edges are re-derived afterwards: banking relaxes
        conflicts between accesses with distinct static banks, so the
        swept point must carry exactly the edges a directly-declared
        identical geometry would (same fingerprint, same schedule).
        """
        if not self.banking:
            return
        from repro.cdfg.memory import reemit_dependence_edges

        for mem, banks in self.banking:
            decl = region.memories.get(mem)
            if decl is None:
                raise KeyError(
                    f"{self.name}: region has no memory {mem!r}")
            region.memories[mem] = decl.with_banks(banks)
        reemit_dependence_edges(region)


def banked_microarchs(
    base: Microarch,
    memories: Sequence[str],
    factors: Sequence[int],
) -> Tuple[Microarch, ...]:
    """One microarchitecture per banking factor, for sweep grids.

    Every listed memory gets the same factor per point -- the common
    "partition everything cyclically by N" exploration move.
    """
    return tuple(
        base.with_banking({mem: factor for mem in memories})
        for factor in factors
    )


@dataclass(frozen=True)
class InfeasiblePoint:
    """A sweep grid point the scheduler proved overconstrained."""

    microarch: str
    clock_ps: float
    reason: str

    def describe(self) -> str:
        """One-line report entry (shared by the CLI and examples)."""
        return (f"infeasible: {self.microarch} @ {self.clock_ps:.0f} ps "
                f"-- {self.reason}")

    def to_json(self) -> Dict[str, object]:
        """JSON-friendly record (stable field set, round-trips through
        :meth:`from_json`; the dse result store and the CLI share it)."""
        return {"microarch": self.microarch, "clock_ps": self.clock_ps,
                "reason": self.reason}

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "InfeasiblePoint":
        """Rebuild a point from :meth:`to_json` output."""
        return cls(microarch=str(payload["microarch"]),
                   clock_ps=float(payload["clock_ps"]),
                   reason=str(payload["reason"]))


#: the paper's Figure 10 microarchitecture set.
PAPER_MICROARCHS: Sequence[Microarch] = (
    Microarch("Non-Pipelined 8", 8),
    Microarch("Non-Pipelined 16", 16),
    Microarch("Non-Pipelined 32", 32),
    Microarch("Pipelined 16", 16, ii=8),
    Microarch("Pipelined 32", 32, ii=16),
)

#: the paper's Figure 10/11 clock-period axis (ps).
PAPER_CLOCKS_PS: Sequence[float] = (1000.0, 1250.0, 1600.0, 2100.0, 2800.0)
