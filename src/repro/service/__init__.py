"""Synthesis-as-a-service: an async job server over the Flow/DSE stack.

The layers, bottom up (all stdlib, no new dependencies):

* :mod:`~repro.service.jobs` -- job/execution model, priority queue,
  request dedup by content hash;
* :mod:`~repro.service.execution` -- parameter normalization, job
  content keys, and the four job kinds (``schedule`` / ``sweep`` /
  ``tune`` / ``stream``) run against the Flow/DSE stack;
* :mod:`~repro.service.engine` -- the worker pool: process-isolated
  attempts with timeouts and bounded retries, shared FlowCache +
  sharded ResultStore, graceful degradation to in-process execution;
* :mod:`~repro.service.server` -- the HTTP endpoints
  (``POST /jobs``, ``GET /jobs/<id>[/result]``, ``DELETE /jobs/<id>``,
  ``GET /healthz``, ``GET /stats``);
* :mod:`~repro.service.client` -- a urllib client for CLI/benchmarks.

Quickstart::

    from repro.service import ReproService, ServiceClient

    with ReproService(port=0, workers=2) as service:
        client = ServiceClient(service.url)
        job = client.submit("schedule", workload="fir", clock_ps=1600)
        print(client.wait(job["id"])["state"])

CLI front ends: ``python -m repro serve`` and ``python -m repro
submit``.  See docs/SERVICE.md for the API reference, the job
lifecycle state machine, dedup semantics and failure modes.
"""

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    TERMINAL,
    JobCancelled,
    JobError,
    JobQueue,
    QUEUED,
    RUNNING,
)
from repro.service.execution import (
    JOB_KINDS,
    execute_job,
    job_key,
    normalize_params,
    parse_microarchs,
)
from repro.service.engine import JobEngine
from repro.service.server import ReproService
from repro.service.client import ServiceClient, ServiceError

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "TERMINAL",
    "JobCancelled",
    "JobEngine",
    "JobError",
    "JobQueue",
    "QUEUED",
    "RUNNING",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "execute_job",
    "job_key",
    "normalize_params",
    "parse_microarchs",
]
