"""What a job actually runs: parameter normalization, content keys and
the four job kinds executed against the Flow/DSE stack.

This module is deliberately process-agnostic: the engine calls
:func:`execute_job` either inside a worker process (the normal path) or
inline in a worker thread (graceful degradation), with the same
arguments.  Results are split into a *deterministic* payload (what the
result endpoint serves, and what dedup identity is asserted against --
no wall times, no cache counters) and a *stats* record (everything
nondeterministic).

Content keys (:func:`job_key`) reuse the repo's content-addressing
end to end: the region / pipeline structural fingerprint from
:mod:`repro.flow.cache`, the timing-model version, the library and the
normalized parameters.  Identity is the elaborated region's structure,
not its spelling: two source submissions differing only in formatting
or comments hash identically, which is exactly the dedup the service
promises.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Optional, Tuple

from repro.explore.microarch import (
    InfeasiblePoint,
    Microarch,
    PAPER_CLOCKS_PS,
)
from repro.flow.cache import FlowCache, region_fingerprint
from repro.flow.context import CompilationContext
from repro.flow.flow import get_flow
from repro.frontend import FrontendError, compile_source
from repro.service.jobs import JobCancelled, JobError
from repro.tech import Library, artisan90, generic45
from repro.timing import engine as timing_engine
from repro.workloads import (
    PIPELINE_INPUTS,
    PIPELINE_REGISTRY,
    WORKLOAD_REGISTRY,
)

#: the job kinds the service accepts.
JOB_KINDS = ("schedule", "sweep", "tune", "stream")

#: libraries addressable in a job body.
LIBRARIES: Dict[str, Callable[[], Library]] = {
    "artisan90": artisan90,
    "generic45": generic45,
}

#: points per progress/cancellation checkpoint in sweep execution.
SWEEP_WAVE = 4


def parse_microarchs(spec_text: Optional[str]) -> List[Microarch]:
    """Microarchs from a ``lat[,lat:ii,...]`` spec (CLI & job bodies).

    ``None``/empty falls back to the paper's eight microarchitectures.
    Raises :class:`JobError` on malformed entries.
    """
    from repro.explore.microarch import PAPER_MICROARCHS

    if not spec_text:
        return list(PAPER_MICROARCHS)
    micros: List[Microarch] = []
    for spec in str(spec_text).split(","):
        try:
            if ":" in spec:
                lat, ii = spec.split(":")
                micros.append(Microarch(f"P{lat}/{ii}", int(lat),
                                        ii=int(ii)))
            else:
                micros.append(Microarch(f"NP{spec}", int(spec)))
        except ValueError:
            raise JobError(
                f"bad microarch spec {spec!r} (want lat or lat:ii)")
    return micros


def _library(name: str) -> Library:
    try:
        return LIBRARIES[name]()
    except KeyError:
        raise JobError(f"unknown library {name!r}; "
                       f"choose from {sorted(LIBRARIES)}")


def _clock_list(value) -> List[float]:
    """Clocks from a list or a comma-separated string."""
    if value is None:
        return [float(c) for c in PAPER_CLOCKS_PS]
    if isinstance(value, str):
        value = value.split(",")
    try:
        clocks = [float(c) for c in value]
    except (TypeError, ValueError):
        raise JobError(f"bad clocks {value!r}")
    if not clocks:
        raise JobError("empty clock list")
    return clocks


def _region_factory(params: dict) -> Tuple[Callable, str]:
    """(region factory, design fingerprint) from a job's design spec.

    ``workload`` names a registry entry; ``source`` carries Python-
    subset or mini-language text compiled on the spot (exactly one
    kernel, like the CLI's sweep path).  Factories recompile/rebuild
    per call so regions are never shared mutable state.
    """
    workload = params.get("workload")
    source = params.get("source")
    if (workload is None) == (source is None):
        raise JobError("exactly one of 'workload' or 'source' required")
    if workload is not None:
        factory = WORKLOAD_REGISTRY.get(workload)
        if factory is None:
            raise JobError(f"unknown workload {workload!r}; choose from "
                           f"{sorted(WORKLOAD_REGISTRY)}")
    else:
        def factory(text=source):
            units = compile_source(text, filename="<submitted>")
            if len(units) != 1:
                raise JobError(
                    f"submitted source must contain exactly one kernel, "
                    f"found {[u.region.name for u in units]}")
            return units[0].region
        try:
            factory()
        except FrontendError as exc:
            raise JobError(f"frontend error: {exc.render()}")
    return factory, region_fingerprint(factory())


def normalize_params(kind: str, params: dict) -> dict:
    """Validate a submission body and fill every default in.

    The normalized record is what gets hashed into the job key, so two
    submissions differing only in spelled-out defaults dedup together.
    Raises :class:`JobError` on any problem (mapped to HTTP 400).
    """
    if kind not in JOB_KINDS:
        raise JobError(f"unknown job kind {kind!r}; "
                       f"choose from {JOB_KINDS}")
    if not isinstance(params, dict):
        raise JobError("job params must be a JSON object")
    out: dict = {"library": str(params.get("library", "artisan90"))}
    _library(out["library"])  # validate early
    if kind == "stream":
        pipeline = params.get("pipeline")
        if pipeline not in PIPELINE_REGISTRY:
            raise JobError(
                f"unknown pipeline {pipeline!r}; choose from "
                f"{sorted(PIPELINE_REGISTRY)}")
        out["pipeline"] = pipeline
        out["clock_ps"] = float(params.get("clock_ps", 1600.0))
        return out
    out["workload"] = params.get("workload")
    out["source"] = params.get("source")
    if kind == "schedule":
        out["clock_ps"] = float(params.get("clock_ps", 1600.0))
        ii = params.get("ii")
        out["ii"] = int(ii) if ii is not None else None
    elif kind == "sweep":
        out["clocks_ps"] = _clock_list(params.get("clocks_ps"))
        out["latencies"] = params.get("latencies")
        parse_microarchs(out["latencies"])  # validate early
    elif kind == "tune":
        out["clocks_ps"] = _clock_list(params.get("clocks_ps"))
        out["latencies"] = params.get("latencies")
        parse_microarchs(out["latencies"])
        out["strategy"] = str(params.get("strategy", "greedy"))
        if out["strategy"] not in ("exhaustive", "bisect", "greedy",
                                   "halving"):
            raise JobError(f"unknown strategy {out['strategy']!r}")
        for field in ("delay_ps", "max_area", "max_power_mw"):
            value = params.get(field)
            out[field] = float(value) if value is not None else None
        objective = params.get("objective")
        if objective is None:
            objective = "area" if out["delay_ps"] is not None else "delay"
        if objective not in ("area", "delay", "power"):
            raise JobError(f"unknown objective {objective!r}")
        out["objective"] = objective
    # design resolution doubles as validation for all non-stream kinds
    _region_factory(out)
    return out


def job_key(kind: str, params: dict) -> str:
    """Content hash of a normalized submission.

    Keys on the *design structure* (region / pipeline fingerprint), not
    on how the design was spelled: submissions whose sources differ
    only in formatting or comments elaborate to the same region and
    collide, as does a registry workload vs. source text that
    elaborates to the identical region.
    """
    if kind == "stream":
        from repro.dse.search import pipeline_fingerprint

        fingerprint = pipeline_fingerprint(
            PIPELINE_REGISTRY[params["pipeline"]]())
    else:
        _, fingerprint = _region_factory(params)
    identity = {
        key: value for key, value in params.items()
        if key not in ("workload", "source")
    }
    payload = {
        "kind": kind,
        "timing_model": timing_engine.TIMING_MODEL_VERSION,
        "design": fingerprint,
        "params": identity,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _checkpoint(cancel_event) -> None:
    if cancel_event is not None and cancel_event.is_set():
        raise JobCancelled()


def _run_schedule(params: dict, cache, progress,
                  cancel_event, tracer) -> Tuple[bool, dict, dict]:
    from repro.cdfg.region import PipelineSpec

    factory, _ = _region_factory(params)
    ctx = CompilationContext(
        region=factory(), library=_library(params["library"]),
        clock_ps=params["clock_ps"],
        pipeline=PipelineSpec(ii=params["ii"])
        if params["ii"] is not None else None,
        run_optimizer=False, cache=cache, cancel_event=cancel_event,
        tracer=tracer)
    if progress is not None:
        ctx.progress_cb = lambda name, event: progress(
            {"pass": name, "event": event})
    get_flow("sweep").run(ctx)
    if ctx.cancel_requested:
        raise JobCancelled()
    if ctx.failed:
        return False, {"diagnostics": [str(d) for d in ctx.errors]}, {}
    result = {
        "schedule": ctx.schedule.summary(),
        "power_mw": ctx.power.total_mw,
    }
    return True, result, {}


def _run_sweep(params: dict, cache, store, progress,
               cancel_event, tracer) -> Tuple[bool, dict, dict]:
    from repro.core.scheduler import SchedulerOptions
    from repro.dse.store import candidate_key
    from repro.explore.pareto import DesignPoint
    from repro.flow.executor import run_points

    factory, fingerprint = _region_factory(params)
    library = _library(params["library"])
    micros = parse_microarchs(params["latencies"])
    clocks = params["clocks_ps"]
    grid = [(m, float(c)) for m in micros for c in clocks]
    options = SchedulerOptions()
    keys = [candidate_key(fingerprint, library.name, m, c, options)
            for m, c in grid]
    results: List[Optional[object]] = [None] * len(grid)
    store_hits = 0
    if store is not None:
        for idx, key in enumerate(keys):
            hit = store.get(key)
            if hit is not None:
                results[idx] = hit
                store_hits += 1
    pending = [idx for idx, r in enumerate(results) if r is None]
    done = len(grid) - len(pending)
    total = len(grid)
    for base in range(0, len(pending), SWEEP_WAVE):
        _checkpoint(cancel_event)
        wave = pending[base:base + SWEEP_WAVE]
        fresh = run_points(factory, library, [grid[i] for i in wave],
                           options=options, jobs=1, cache=cache,
                           tracer=tracer)
        for idx, result in zip(wave, fresh):
            results[idx] = result
            if store is not None:
                store.put(keys[idx], result)
        done += len(wave)
        if progress is not None:
            progress({"points_done": done, "points_total": total})
    points = [r for r in results if isinstance(r, DesignPoint)]
    infeasible = [r for r in results if isinstance(r, InfeasiblePoint)]
    result = {
        "feasible": len(points),
        "infeasible": len(infeasible),
        "points": [p.to_json() for p in points],
        "infeasible_points": [q.to_json() for q in infeasible],
    }
    stats = {"store_hits": store_hits,
             "fresh_points": total - store_hits}
    return bool(points), result, stats


def _run_tune(params: dict, cache, store, progress,
              cancel_event, tracer) -> Tuple[bool, dict, dict]:
    from repro.dse import DesignSpace, Goal, GoalError, tune

    factory, _ = _region_factory(params)
    library = _library(params["library"])
    try:
        goal = Goal.build(objective=params["objective"],
                          delay_ps=params["delay_ps"],
                          max_area=params["max_area"],
                          max_power_mw=params["max_power_mw"])
    except GoalError as exc:
        raise JobError(f"invalid goal: {exc}")
    space = DesignSpace(tuple(parse_microarchs(params["latencies"])),
                        tuple(float(c) for c in params["clocks_ps"]))
    _checkpoint(cancel_event)
    if progress is not None:
        progress({"phase": "tune", "grid_size": space.size})
    report = tune(factory, library, goal, space=space,
                  strategy=params["strategy"], cache=cache, store=store,
                  jobs=1, tracer=tracer)
    _checkpoint(cancel_event)
    summary = report.summary()
    summary.pop("elapsed_s", None)  # keep the payload deterministic
    stats = {"fresh_evaluations": report.fresh_evaluations,
             "store_hits": report.store_hits}
    return report.satisfied, summary, stats


def _run_stream(params: dict, cache, progress,
                cancel_event, tracer) -> Tuple[bool, dict, dict]:
    from repro.dataflow import (
        compile_pipeline,
        simulate_pipeline_machine,
        simulate_pipeline_reference,
    )
    from repro.obs.trace import maybe_span

    library = _library(params["library"])
    factory = PIPELINE_REGISTRY[params["pipeline"]]
    _checkpoint(cancel_event)
    if progress is not None:
        progress({"phase": "compose"})
    with maybe_span(tracer, "stream.compose",
                    pipeline=params["pipeline"]):
        composed = compile_pipeline(factory(), library,
                                    clock_ps=params["clock_ps"],
                                    cache=cache)
    _checkpoint(cancel_event)
    if progress is not None:
        progress({"phase": "simulate"})
    with maybe_span(tracer, "stream.simulate",
                    pipeline=params["pipeline"]):
        inputs = PIPELINE_INPUTS.get(params["pipeline"], dict)()
        oracle = simulate_pipeline_reference(factory(), inputs)
        machine = simulate_pipeline_machine(composed, inputs)
        verified = machine.outputs == oracle.outputs
    summary = composed.summary()
    summary["cycles"] = machine.cycles
    summary["stalled_cycles"] = machine.stalled_cycles
    summary["verified"] = verified
    return verified, summary, {}


def execute_job(kind: str, params: dict,
                cache: Optional[FlowCache] = None,
                store=None,
                progress: Optional[Callable[[dict], None]] = None,
                cancel_event=None,
                tracer=None) -> Tuple[bool, dict, dict]:
    """Run one normalized job; returns ``(ok, result, stats)``.

    ``result`` is deterministic (dedup identity is asserted on it);
    ``stats`` carries cache/store traffic.  Raises
    :class:`JobCancelled` at a checkpoint with the cancel event set and
    :class:`JobError` on deterministic parameter problems.  A ``False``
    ``ok`` means the work ran but failed on its own terms (infeasible
    schedule, unsatisfied goal, simulation mismatch); ``result`` then
    carries the diagnostic payload.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`) records the job's
    spans; like ``progress``, it observes and never steers -- results
    are bit-identical traced or not.
    """
    _checkpoint(cancel_event)
    if kind == "schedule":
        return _run_schedule(params, cache, progress, cancel_event,
                             tracer)
    if kind == "sweep":
        return _run_sweep(params, cache, store, progress, cancel_event,
                          tracer)
    if kind == "tune":
        return _run_tune(params, cache, store, progress, cancel_event,
                         tracer)
    if kind == "stream":
        return _run_stream(params, cache, progress, cancel_event,
                           tracer)
    raise JobError(f"unknown job kind {kind!r}")
