"""The job engine: worker pool, process isolation, retries, stats.

A :class:`JobEngine` owns the :class:`~repro.service.jobs.JobQueue`
and ``workers`` supervisor threads.  Each supervisor pops the highest-
priority execution and runs it in a *worker process* (fork by default):
the child executes :func:`~repro.service.execution.execute_job` against
its own :class:`~repro.flow.cache.FlowCache` (warmed from and merged
back to ``cache_path`` via the cache's merge-on-save) and a per-process
:class:`~repro.dse.store.ResultStore` shard, streaming progress records
back through a pipe.  The supervisor enforces the job timeout, watches
the cancel event, and turns abnormal child exits into bounded retries
-- a SIGKILLed worker mid-job therefore ends in a retried success or a
clean ``failed`` state with diagnostics, never a hung client.

If worker processes cannot be spawned at all (fork failure, exhausted
pids -- "the pool died"), the engine degrades to serial in-process
execution: jobs still complete, cancellation still works through the
flow layer's cooperative checkpoints, and ``/healthz`` reports
``degraded: true``.

Construction knobs:

``workers``       supervisor threads (= max concurrent jobs)
``mode``          "process" (isolated, default) or "inline" (no fork)
``job_timeout_s`` per-attempt wall budget before the child is killed
``max_retries``   extra attempts after a crash/timeout (not after
                  deterministic failures -- those never retry)
``store_path``    shared JSONL result store (shards merged on load,
                  compacted on stop)
``cache_path``    shared FlowCache pickle (merge-on-save)
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Dict, Optional

from repro.dse.store import ResultStore
from repro.flow.cache import FlowCache
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer
from repro.service import execution as exe
from repro.service.jobs import (
    CANCELLED,
    Execution,
    Job,
    JobCancelled,
    JobError,
    JobQueue,
)

#: supervisor poll interval (pipe + cancel + deadline checks), seconds.
POLL_S = 0.02


def _child_main(conn, kind: str, params: dict,
                cache_path: Optional[str],
                store_path: Optional[str],
                traced: bool = True) -> None:
    """Worker-process entry: run one job, stream messages back.

    Messages: ``("progress", dict)`` any number of times, then exactly
    one of ``("done", ok, result, stats)`` / ``("cancelled",)`` /
    ``("job_error", message)`` / ``("crash", repr)``.

    Observability rides the ``done`` message: ``stats["spans"]`` holds
    the job's trace (when ``traced``) and ``stats["registry"]`` the
    child's metrics snapshot; the supervisor pops both before they can
    reach any client-facing result payload.
    """
    REGISTRY.reset()  # forked children inherit the parent's metrics
    cache = FlowCache.load(cache_path) if cache_path else FlowCache()
    store = ResultStore(store_path, shard_per_process=True) \
        if store_path else None
    tracer = Tracer() if traced else None

    def progress(info: dict) -> None:
        try:
            conn.send(("progress", info))
        except Exception:
            pass

    try:
        if tracer is not None:
            with tracer.span("service.job", kind=kind) as span:
                ok, result, stats = exe.execute_job(
                    kind, params, cache=cache, store=store,
                    progress=progress, tracer=tracer)
                span.set("ok", ok)
        else:
            ok, result, stats = exe.execute_job(kind, params,
                                                cache=cache, store=store,
                                                progress=progress)
        stats = dict(stats)
        stats["cache"] = cache.stats()
        if tracer is not None:
            stats["spans"] = tracer.export()
        stats["registry"] = REGISTRY.snapshot()
        if cache_path:
            cache.save(cache_path)
        conn.send(("done", ok, result, stats))
    except JobCancelled:
        conn.send(("cancelled",))
    except JobError as err:
        conn.send(("job_error", str(err)))
    except BaseException as err:  # crash: report, parent decides retry
        try:
            conn.send(("crash", f"{type(err).__name__}: {err}"))
        except Exception:
            pass
    finally:
        conn.close()


class _Attempt:
    """Outcome of one execution attempt (supervisor bookkeeping)."""

    __slots__ = ("status", "ok", "result", "stats", "message")

    def __init__(self, status: str, ok: bool = False,
                 result: Optional[dict] = None,
                 stats: Optional[dict] = None,
                 message: str = "") -> None:
        self.status = status  # done|cancelled|job_error|crash|timeout
        self.ok = ok
        self.result = result
        self.stats = stats or {}
        self.message = message


class JobEngine:
    """Worker pool + queue + shared stores; see the module docstring."""

    def __init__(self, workers: int = 2, mode: str = "process",
                 job_timeout_s: float = 120.0, max_retries: int = 1,
                 store_path: Optional[str] = None,
                 cache_path: Optional[str] = None,
                 trace_jobs: bool = True) -> None:
        if mode not in ("process", "inline"):
            raise ValueError(f"unknown engine mode {mode!r}")
        self.queue = JobQueue()
        self.mode = mode
        self.job_timeout_s = job_timeout_s
        self.max_retries = max_retries
        #: record per-job span traces (served at /jobs/<id>/trace).
        self.trace_jobs = bool(trace_jobs)
        self.store_path = store_path
        self.cache_path = cache_path
        #: in-memory shared cache (inline/degraded execution path).
        self.cache = FlowCache.load(cache_path) if cache_path \
            else FlowCache()
        self._store = ResultStore(store_path) if store_path else None
        self.workers = max(1, int(workers))
        self.degraded = False
        self._stop = threading.Event()
        self._threads = []
        self._lock = threading.Lock()
        self._stats: Dict[str, float] = {
            "submitted": 0, "completed": 0, "failed": 0, "cancelled": 0,
            "retries": 0, "worker_crashes": 0, "timeouts": 0,
            "cache_hits": 0, "cache_misses": 0, "store_hits": 0,
            "store_misses": 0,
        }
        self.started_at = time.time()
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._mp = multiprocessing.get_context()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "JobEngine":
        """Spin up the supervisor threads (idempotent)."""
        if self._threads:
            return self
        self._stop.clear()
        for i in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"repro-worker-{i}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, compact: bool = True) -> None:
        """Stop accepting work, join workers, fold store shards."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        if compact and self._store is not None:
            self._store.refresh()
            self._store.compact()
        if self.cache_path:
            self.cache.save(self.cache_path)

    def __enter__(self) -> "JobEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def submit(self, kind: str, params: dict, priority: int = 0) -> Job:
        """Validate, normalize, dedup and enqueue one submission."""
        normalized = exe.normalize_params(kind, params)
        key = exe.job_key(kind, normalized)
        with self._lock:
            self._stats["submitted"] += 1
        return self.queue.submit(kind, normalized, key,
                                 priority=int(priority))

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel one job (see :meth:`JobQueue.cancel`)."""
        job = self.queue.cancel(job_id)
        if job is not None and job.state == CANCELLED:
            with self._lock:
                self._stats["cancelled"] += 1
        return job

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Optional[Job]:
        """Block until a job is terminal; returns the job record."""
        return self.queue.wait(job_id, timeout)

    def stats(self) -> dict:
        """The ``/stats`` payload."""
        with self._lock:
            out = dict(self._stats)
        counts = self.queue.counts()
        elapsed = max(time.time() - self.started_at, 1e-9)
        cache = self.cache.stats()
        out.update({
            "queue_depth": self.queue.depth(),
            "jobs": counts,
            "running": counts["running"],
            "dedup_hits": self.queue.dedup_hits,
            "served_jobs": out["completed"] + out["failed"],
            "jobs_per_sec": round(
                (out["completed"] + out["failed"]) / elapsed, 4),
            "uptime_s": round(elapsed, 3),
            "workers": self.workers,
            "mode": self.mode,
            "degraded": self.degraded,
        })
        lookups = out["cache_hits"] + out["cache_misses"] \
            + cache["hits"] + cache["misses"]
        hits = out["cache_hits"] + cache["hits"]
        out["cache_hit_rate"] = round(hits / lookups, 4) if lookups \
            else 0.0
        store_lookups = out["store_hits"] + out["store_misses"]
        out["store_hit_rate"] = round(
            out["store_hits"] / store_lookups, 4) if store_lookups \
            else 0.0
        if self._store is not None:
            out["store"] = self._store.stats()
        prefix = "service.job_seconds."
        out["job_latency"] = {
            name[len(prefix):]: {
                "count": int(summary["count"]),
                "mean_s": round(summary["mean"], 6),
                "p50_s": round(summary["p50"], 6),
                "p90_s": round(summary["p90"], 6),
                "p99_s": round(summary["p99"], 6),
            }
            for name, summary in REGISTRY.histogram_summaries().items()
            if name.startswith(prefix)
        }
        return out

    def healthz(self) -> dict:
        """The ``/healthz`` payload."""
        return {"ok": True, "workers": self.workers,
                "degraded": self.degraded, "mode": self.mode,
                "queue_depth": self.queue.depth()}

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            execution = self.queue.next_execution(timeout=0.1)
            if execution is None:
                continue
            t0 = time.perf_counter()
            try:
                self._run_execution(execution)
                REGISTRY.observe(
                    f"service.job_seconds.{execution.kind}",
                    time.perf_counter() - t0)
            except Exception as err:  # defensive: never kill the loop
                self.queue.finish(
                    execution, ok=False,
                    error={"reason": "engine_error",
                           "message": f"{type(err).__name__}: {err}"})
                self._bump("failed")

    def _bump(self, counter: str, amount: float = 1) -> None:
        with self._lock:
            self._stats[counter] += amount

    def _run_execution(self, execution: Execution) -> None:
        """Attempt loop: process (or inline) runs, retries, verdict."""
        attempts_allowed = 1 + max(0, int(self.max_retries))
        last = None
        for attempt in range(attempts_allowed):
            if execution.cancel_event.is_set():
                self.queue.finish(execution, ok=False,
                                  error={"reason": "cancelled"})
                return
            self.queue.bump_attempts(execution)
            if attempt > 0:
                self._bump("retries")
            if self.mode == "inline" or self.degraded:
                last = self._attempt_inline(execution)
            else:
                last = self._attempt_process(execution)
                if last.status == "spawn_failed":
                    # the pool is gone: degrade to in-process serial
                    # execution rather than failing every job
                    self.degraded = True
                    last = self._attempt_inline(execution)
            if last.status == "done":
                self._finish_done(execution, last)
                return
            if last.status == "cancelled":
                self.queue.finish(execution, ok=False,
                                  error={"reason": "cancelled"})
                return
            if last.status == "job_error":
                self.queue.finish(
                    execution, ok=False,
                    error={"reason": "bad_request",
                           "message": last.message})
                self._bump("failed")
                return
            # crash / timeout: bounded retry
            if last.status == "timeout":
                self._bump("timeouts")
            else:
                self._bump("worker_crashes")
        self.queue.finish(
            execution, ok=False,
            error={"reason": last.status,
                   "message": last.message,
                   "attempts": attempts_allowed})
        self._bump("failed")

    def _finish_done(self, execution: Execution, attempt: _Attempt) -> None:
        stats = attempt.stats
        # observability payloads ride the stats dict over the pipe;
        # pop them here so they never leak into /jobs/<id>/result
        spans = stats.pop("spans", None)
        registry_snap = stats.pop("registry", None)
        if registry_snap:
            REGISTRY.merge(registry_snap)
        cache_stats = stats.get("cache")
        if cache_stats:
            self._bump("cache_hits", cache_stats.get("hits", 0))
            self._bump("cache_misses", cache_stats.get("misses", 0))
        self._bump("store_hits", stats.get("store_hits", 0))
        self._bump("store_misses",
                   stats.get("fresh_points",
                             stats.get("fresh_evaluations", 0)))
        if self._store is not None:
            # fold worker shards into this process's warm view
            self._store.refresh()
        if attempt.ok:
            self.queue.finish(execution, ok=True, result=attempt.result,
                              stats=stats, trace=spans)
            self._bump("completed")
        else:
            self.queue.finish(
                execution, ok=False,
                error={"reason": "unsatisfied",
                       "message": "the job ran but did not meet its "
                                  "goal (infeasible/unverified)",
                       "detail": attempt.result},
                stats=stats, trace=spans)
            self._bump("failed")

    # -- process-isolated attempt --------------------------------------
    def _attempt_process(self, execution: Execution) -> _Attempt:
        try:
            parent_conn, child_conn = self._mp.Pipe()
            proc = self._mp.Process(
                target=_child_main,
                args=(child_conn, execution.kind, execution.params,
                      self.cache_path, self.store_path,
                      self.trace_jobs),
                daemon=True)
            proc.start()
        except (OSError, ValueError) as err:
            return _Attempt("spawn_failed", message=str(err))
        child_conn.close()
        execution.worker_pid = proc.pid
        deadline = time.monotonic() + self.job_timeout_s
        verdict: Optional[_Attempt] = None
        try:
            while verdict is None:
                if execution.cancel_event.is_set():
                    verdict = _Attempt("cancelled")
                    break
                if time.monotonic() > deadline:
                    verdict = _Attempt(
                        "timeout",
                        message=f"attempt exceeded "
                                f"{self.job_timeout_s:.1f}s")
                    break
                try:
                    ready = parent_conn.poll(POLL_S)
                except (OSError, EOFError):
                    ready = False
                if ready:
                    try:
                        msg = parent_conn.recv()
                    except (OSError, EOFError):
                        msg = None  # died mid-send: treat as crash
                    if msg is None:
                        verdict = _Attempt(
                            "crash", message="worker pipe closed")
                    elif msg[0] == "progress":
                        self.queue.set_progress(execution, msg[1])
                        continue
                    elif msg[0] == "done":
                        verdict = _Attempt("done", ok=msg[1],
                                           result=msg[2], stats=msg[3])
                    elif msg[0] == "cancelled":
                        verdict = _Attempt("cancelled")
                    elif msg[0] == "job_error":
                        verdict = _Attempt("job_error", message=msg[1])
                    else:  # "crash"
                        verdict = _Attempt("crash", message=msg[1])
                elif not proc.is_alive():
                    # one last drain: the child may have sent its
                    # verdict and exited between poll and is_alive
                    try:
                        if parent_conn.poll(0):
                            continue
                    except (OSError, EOFError):
                        pass
                    verdict = _Attempt(
                        "crash",
                        message=f"worker pid {proc.pid} exited with "
                                f"code {proc.exitcode} mid-job")
        finally:
            execution.worker_pid = None
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - stuck child
                    proc.kill()
                    proc.join(timeout=2.0)
            else:
                proc.join(timeout=2.0)
            parent_conn.close()
        return verdict

    # -- inline (degraded / mode="inline") attempt ---------------------
    def _attempt_inline(self, execution: Execution) -> _Attempt:
        def progress(info: dict) -> None:
            self.queue.set_progress(execution, info)

        store = None
        if self.store_path:
            store = ResultStore(self.store_path, shard_per_process=True)
        tracer = Tracer() if self.trace_jobs else None
        try:
            if tracer is not None:
                with tracer.span("service.job",
                                 kind=execution.kind) as span:
                    ok, result, stats = exe.execute_job(
                        execution.kind, execution.params,
                        cache=self.cache, store=store,
                        progress=progress,
                        cancel_event=execution.cancel_event,
                        tracer=tracer)
                    span.set("ok", ok)
            else:
                ok, result, stats = exe.execute_job(
                    execution.kind, execution.params, cache=self.cache,
                    store=store, progress=progress,
                    cancel_event=execution.cancel_event)
        except JobCancelled:
            return _Attempt("cancelled")
        except JobError as err:
            return _Attempt("job_error", message=str(err))
        except Exception as err:
            return _Attempt("crash",
                            message=f"{type(err).__name__}: {err}")
        if self._store is not None:
            self._store.refresh()
        stats = dict(stats)
        if tracer is not None:
            # inline runs observe the global registry directly, so only
            # the spans need the stats channel
            stats["spans"] = tracer.export()
        return _Attempt("done", ok=ok, result=result, stats=stats)
