"""Synthesis-as-a-service: the HTTP front of the job engine.

Endpoints (all JSON)::

    POST   /jobs             submit {kind, workload|source|pipeline,
                             priority, ...}  -> 202 {id, state, ...}
    GET    /jobs/<id>        status           -> 200 (404 unknown)
    GET    /jobs/<id>/result result payload   -> 200 done
                                                 202 queued/running
                                                 410 cancelled
                                                 500 failed (+error)
                                                 404 unknown
    DELETE /jobs/<id>        cancel           -> 200 (409 if terminal,
                                                 404 unknown)
    GET    /jobs/<id>/trace  Chrome trace_event JSON of the job's
                             spans -> 200 terminal-with-trace
                                      202 queued/running
                                      410 cancelled
                                      404 unknown / tracing disabled
    GET    /healthz          liveness + degradation flag
    GET    /stats            queue depth, dedup hits, cache + store
                             hit rates, per-kind job latency
                             percentiles, served jobs/sec,
                             per-state job counts
    GET    /metrics          the metrics registry in Prometheus text
                             exposition format

The result-status mapping mirrors the CLI exit codes (0 -> 200,
infeasible/failed -> 500, bad input -> 400), so a shell pipeline and an
HTTP client observe the same failure taxonomy -- see docs/SERVICE.md.
Error bodies carry the same ``{"error": {code, reason, message}}``
object the CLI prints with ``--json``: ``code`` is the CLI exit code
the condition maps to, ``reason`` a stable machine-readable slug.

Built on stdlib ``http.server.ThreadingHTTPServer``: one thread per
connection in front of the engine's own worker pool; no new
dependencies.  :class:`ReproService` bundles engine + server with
``start()``/``stop()`` and context-manager support; ``port=0`` binds an
ephemeral port (the bound address is in ``.url``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.obs.metrics import REGISTRY
from repro.obs.trace import spans_to_chrome
from repro.service.engine import JobEngine
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JobError,
    QUEUED,
    RUNNING,
)

#: request body size cap (sources are small; grids are tiny JSON).
MAX_BODY = 1 << 20

#: HTTP status -> (CLI exit code, reason slug) for error bodies; the
#: same taxonomy ``repro --json`` renders on stderr (EXIT_BAD_INPUT=3,
#: EXIT_FAILED=1).
ERROR_TAXONOMY = {
    400: (3, "bad-input"),
    404: (3, "not-found"),
    409: (1, "conflict"),
    410: (1, "cancelled"),
}


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer with a backlog sized for bursty clients.

    The stdlib default ``request_queue_size`` of 5 resets connections
    the moment a handful of clients connect at once; a job server's
    whole point is absorbing such bursts into its queue.
    """

    request_queue_size = 64


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.engine``; JSON in, JSON out."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    @property
    def engine(self) -> JobEngine:
        return self.server.engine

    def _send(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error_body(self, status: int, message: str, **extra) -> dict:
        """The ``{"error": {code, reason, message}}`` object for one
        HTTP status, per :data:`ERROR_TAXONOMY`."""
        code, reason = ERROR_TAXONOMY.get(status, (1, "failed"))
        return {"error": dict(extra, code=code, reason=reason,
                              message=message)}

    def _error(self, status: int, message: str, **extra) -> None:
        self._send(status, self._error_body(status, message, **extra))

    def _send_text(self, code: int, body: str,
                   content_type: str) -> None:
        raw = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY:
            raise JobError(f"request body over {MAX_BODY} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode() or "{}")
        except (ValueError, UnicodeDecodeError):
            raise JobError("request body is not valid JSON")
        if not isinstance(payload, dict):
            raise JobError("request body must be a JSON object")
        return payload

    def _job_path(self) -> Optional[Tuple[str, str]]:
        """``/jobs/<id>[/result|/trace]`` -> (id, view); else None.

        ``view`` is ``"status"``, ``"result"`` or ``"trace"``.
        """
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            return parts[1], "status"
        if len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] in ("result", "trace"):
            return parts[1], parts[2]
        return None

    # -- routes --------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?")[0] != "/jobs":
            return self._error(404, f"no such endpoint {self.path!r}")
        try:
            body = self._read_body()
            kind = body.pop("kind", None)
            priority = body.pop("priority", 0)
            try:
                priority = int(priority)
            except (TypeError, ValueError):
                raise JobError(f"bad priority {priority!r}")
            job = self.engine.submit(kind, body, priority=priority)
        except JobError as err:
            return self._error(400, str(err))
        payload = job.status()
        payload["deduplicated"] = job.dedup_of is not None
        self._send(202, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?")[0]
        if path == "/healthz":
            return self._send(200, self.engine.healthz())
        if path == "/stats":
            return self._send(200, self.engine.stats())
        if path == "/metrics":
            return self._metrics()
        target = self._job_path()
        if target is None:
            return self._error(404, f"no such endpoint {self.path!r}")
        job_id, view = target
        job = self.engine.queue.get(job_id)
        if job is None:
            return self._error(404, f"unknown job {job_id!r}")
        if view == "status":
            return self._send(200, job.status())
        if view == "trace":
            return self._trace(job)
        if job.state == DONE:
            return self._send(200, {"id": job.id, "state": job.state,
                                    "result": job.result,
                                    "stats": job.stats})
        if job.state in (QUEUED, RUNNING):
            return self._send(202, job.status())
        if job.state == CANCELLED:
            payload = job.status()
            payload.update(self._error_body(
                410, f"job {job.id} was cancelled"))
            return self._send(410, payload)
        # FAILED: the error record is the payload
        return self._send(500, job.status())

    def _metrics(self) -> None:
        """``/metrics``: the registry + engine gauges as Prometheus
        text exposition (scrape-ready, no JSON wrapper)."""
        stats = self.engine.stats()
        extra = {
            "service.queue_depth": stats["queue_depth"],
            "service.jobs_running": stats["running"],
            "service.uptime_seconds": stats["uptime_s"],
            "service.workers": stats["workers"],
            "service.degraded": 1.0 if stats["degraded"] else 0.0,
            "service.cache_hit_rate": stats["cache_hit_rate"],
            "service.store_hit_rate": stats["store_hit_rate"],
        }
        for counter in ("submitted", "completed", "failed", "cancelled",
                        "retries", "worker_crashes", "timeouts"):
            extra[f"service.jobs_{counter}"] = stats[counter]
        extra["service.dedup_hits"] = stats["dedup_hits"]
        body = REGISTRY.render_prometheus(extra_gauges=extra)
        self._send_text(200, body, "text/plain; version=0.0.4")

    def _trace(self, job) -> None:
        """``/jobs/<id>/trace``: the job's spans as a Chrome trace."""
        if job.state in (QUEUED, RUNNING):
            return self._send(202, job.status())
        if job.state == CANCELLED:
            payload = job.status()
            payload.update(self._error_body(
                410, f"job {job.id} was cancelled"))
            return self._send(410, payload)
        if job.trace is None:
            return self._error(
                404, f"no trace recorded for job {job.id} "
                     "(tracing disabled on this engine)")
        return self._send(200, spans_to_chrome(job.trace))

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        target = self._job_path()
        if target is None or target[1] != "status":
            return self._error(404, f"no such endpoint {self.path!r}")
        job_id = target[0]
        job = self.engine.queue.get(job_id)
        if job is None:
            return self._error(404, f"unknown job {job_id!r}")
        was_terminal = job.state in (DONE, FAILED, CANCELLED)
        job = self.engine.cancel(job_id)
        if was_terminal:
            payload = job.status()
            payload.update(self._error_body(
                409, f"job {job.id} is already {job.state}"))
            return self._send(409, payload)
        return self._send(200, job.status())


class ReproService:
    """Engine + HTTP server, bundled for one-call boot.

    >>> service = ReproService(port=0, workers=1, mode="inline")
    >>> url = service.start().url            # doctest: +SKIP
    >>> service.stop()                       # doctest: +SKIP

    ``start()`` spins the engine's worker threads and a daemon thread
    running ``serve_forever``; ``stop()`` shuts both down and compacts
    the result store.  Usable as a context manager.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 engine: Optional[JobEngine] = None,
                 **engine_kwargs) -> None:
        self.host = host
        self._requested_port = port
        self.engine = engine if engine is not None \
            else JobEngine(**engine_kwargs)
        self._httpd: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproService":
        """Bind, start serving and start the engine (idempotent)."""
        if self._httpd is not None:
            return self
        self.engine.start()
        self._httpd = _Server(
            (self.host, self._requested_port), _Handler)
        self._httpd.engine = self.engine
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving, stop the engine, compact the store."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.engine.stop()

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
