"""A tiny stdlib HTTP client for the job service.

Used by ``repro submit``, the throughput benchmark, the CI smoke
driver and the test suite -- anything that talks to a running
:class:`~repro.service.server.ReproService` without pulling in a
dependency.  Every method returns the decoded JSON payload; HTTP error
statuses raise :class:`ServiceError` carrying the status code and the
decoded body, so callers branch on ``err.status`` instead of parsing
exception strings.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.service.jobs import TERMINAL


class ServiceError(Exception):
    """An HTTP-level failure (status >= 400) from the service."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        message = payload.get("error", {}).get("message") \
            if isinstance(payload.get("error"), dict) else None
        super().__init__(message or f"HTTP {status}")


class ServiceClient:
    """Submit/status/result/cancel against one service URL."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req,
                                        timeout=self.timeout) as resp:
                return json.loads(resp.read().decode() or "{}")
        except urllib.error.HTTPError as err:
            try:
                payload = json.loads(err.read().decode() or "{}")
            except ValueError:
                payload = {}
            raise ServiceError(err.code, payload) from None

    # ------------------------------------------------------------------
    def submit(self, kind: str, priority: int = 0, **params) -> dict:
        """POST /jobs; returns the accepted job's status record."""
        body = dict(params, kind=kind, priority=priority)
        return self._request("POST", "/jobs", body)

    def status(self, job_id: str) -> dict:
        """GET /jobs/<id>."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """GET /jobs/<id>/result (raises ServiceError unless done)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """DELETE /jobs/<id>."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def trace(self, job_id: str) -> dict:
        """GET /jobs/<id>/trace (Chrome ``trace_event`` JSON)."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def stats(self) -> dict:
        """GET /stats."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """GET /metrics (Prometheus text exposition, not JSON)."""
        req = urllib.request.Request(self.url + "/metrics")
        try:
            with urllib.request.urlopen(req,
                                        timeout=self.timeout) as resp:
                return resp.read().decode()
        except urllib.error.HTTPError as err:  # pragma: no cover
            raise ServiceError(err.code, {}) from None

    def healthz(self) -> dict:
        """GET /healthz."""
        return self._request("GET", "/healthz")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll_s: float = 0.05) -> dict:
        """Poll the status endpoint until the job is terminal.

        Returns the final status record; raises ``TimeoutError`` when
        the deadline passes first (the job keeps running server-side).
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL:
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout:.1f}s")
            time.sleep(poll_s)
