"""Job model, priority queue and request-dedup index of the service.

A *job* is one client submission: a kind (``schedule`` / ``sweep`` /
``tune`` / ``stream``), a normalized parameter record, a priority and a
content key.  An *execution* is the unit of work the worker pool runs;
several jobs share one execution when their content keys collide --
that is the request dedup the ROADMAP asks for ("two users tuning the
same design hit one synthesis").  The mapping is:

* submit with a key nobody holds -> new execution, queued by priority;
* submit while an identical execution is queued/running -> the new job
  *subscribes* to it (one synthesis, every subscriber observes the
  result);
* submit after an identical execution finished successfully -> the new
  job completes immediately with the shared result object (bit-equal
  by construction);
* failed or cancelled executions never serve duplicates -- a resubmit
  re-executes.

Cancellation is per job: cancelling one subscriber detaches it; the
execution itself is only cancelled (dequeued, or its worker signalled)
when its last subscriber leaves.

Job lifecycle::

    queued -> running -> done
                     \\-> failed      (crash/timeout after retries, or
                                       a deterministic error)
    queued/running -> cancelled      (client DELETE)

Everything here is in-memory state guarded by one condition variable;
the HTTP layer and the worker threads are the only callers.
"""

from __future__ import annotations

import heapq
import threading
import time
import uuid
from typing import Dict, List, Optional, Tuple

#: job / execution states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a job never leaves.
TERMINAL = frozenset({DONE, FAILED, CANCELLED})


class JobError(Exception):
    """A deterministic submission/parameter problem (HTTP 400)."""


class JobCancelled(Exception):
    """Raised inside an execution when its cancel event is set."""


def new_job_id() -> str:
    """A short, collision-safe job identifier."""
    return uuid.uuid4().hex[:12]


class Job:
    """One client submission (thin view onto a shared execution)."""

    def __init__(self, job_id: str, kind: str, params: dict, key: str,
                 priority: int) -> None:
        self.id = job_id
        self.kind = kind
        self.params = params
        self.key = key
        self.priority = priority
        self.state = QUEUED
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.attempts = 0
        self.progress: dict = {}
        #: deterministic result payload (shared object across deduped
        #: jobs -- bit-equality between subscribers is by construction).
        self.result: Optional[dict] = None
        self.error: Optional[dict] = None
        #: id of the job whose execution this one subscribed to (dedup).
        self.dedup_of: Optional[str] = None
        #: nondeterministic accounting (wall times, cache traffic);
        #: deliberately outside ``result`` so dedup identity holds.
        self.stats: dict = {}
        #: structured span dicts recorded while the execution ran
        #: (``repro.obs.trace``); like ``stats``, observability data is
        #: kept outside ``result`` so dedup identity holds.
        self.trace: Optional[List[dict]] = None

    def status(self) -> dict:
        """The JSON the status endpoint serves."""
        out = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
            "attempts": self.attempts,
            "progress": dict(self.progress),
        }
        if self.started_at is not None:
            out["started_at"] = self.started_at
        if self.finished_at is not None:
            out["finished_at"] = self.finished_at
        if self.dedup_of is not None:
            out["dedup_of"] = self.dedup_of
        if self.error is not None:
            out["error"] = self.error
        return out


class Execution:
    """One unit of work; every subscribed job observes its outcome."""

    def __init__(self, kind: str, params: dict, key: str,
                 priority: int) -> None:
        self.kind = kind
        self.params = params
        self.key = key
        self.priority = priority
        self.state = QUEUED
        self.jobs: List[Job] = []
        self.cancel_event = threading.Event()
        self.result: Optional[dict] = None
        self.error: Optional[dict] = None
        self.trace: Optional[List[dict]] = None
        #: pid of the worker process currently running this execution
        #: (fault-injection tests target it; None when inline/queued).
        self.worker_pid: Optional[int] = None

    @property
    def primary_id(self) -> Optional[str]:
        """The first still-subscribed job's id (dedup attribution)."""
        return self.jobs[0].id if self.jobs else None


class JobQueue:
    """Priority queue + dedup index + job registry, one lock for all.

    ``submit`` / ``next_execution`` / ``finish`` / ``cancel`` are the
    whole surface; every transition broadcasts on the condition so
    in-process waiters (tests, the engine's drain) can block instead of
    spinning.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: pending executions: (-priority, seq, Execution); stale
        #: entries (already running/terminal) are skipped on pop.
        self._heap: List[Tuple[int, int, Execution]] = []
        self._seq = 0
        self._jobs: Dict[str, Job] = {}
        #: newest execution per content key (any state).
        self._by_key: Dict[str, Execution] = {}
        self.dedup_hits = 0

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def submit(self, kind: str, params: dict, key: str,
               priority: int = 0) -> Job:
        """Register a job; dedups against the newest same-key execution."""
        job = Job(new_job_id(), kind, params, key, priority)
        with self._cond:
            self._jobs[job.id] = job
            existing = self._by_key.get(key)
            if existing is not None and existing.state in (QUEUED, RUNNING):
                # share the in-flight execution
                self.dedup_hits += 1
                job.dedup_of = existing.primary_id
                job.state = existing.state
                if existing.state == RUNNING:
                    job.started_at = time.time()
                existing.jobs.append(job)
                if priority > existing.priority \
                        and existing.state == QUEUED:
                    # lazy reprioritization: push a higher-priority
                    # entry; the stale one is skipped when popped
                    existing.priority = priority
                    self._push(existing)
            elif existing is not None and existing.state == DONE:
                # served straight from the completed execution: the
                # *same* result object, so bit-equality is structural
                self.dedup_hits += 1
                job.dedup_of = existing.primary_id
                job.state = DONE
                job.started_at = job.finished_at = time.time()
                job.result = existing.result
                job.trace = existing.trace
            else:
                execution = Execution(kind, params, key, priority)
                execution.jobs.append(job)
                self._by_key[key] = execution
                self._push(execution)
            self._cond.notify_all()
        return job

    def _push(self, execution: Execution) -> None:
        self._seq += 1
        heapq.heappush(self._heap,
                       (-execution.priority, self._seq, execution))

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def next_execution(self,
                       timeout: Optional[float] = None
                       ) -> Optional[Execution]:
        """Pop the highest-priority queued execution and mark it
        running; ``None`` when nothing arrives within ``timeout``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._heap:
                    _, _, execution = heapq.heappop(self._heap)
                    if execution.state != QUEUED:
                        continue  # stale entry (cancelled/reprioritized)
                    execution.state = RUNNING
                    now = time.time()
                    for job in execution.jobs:
                        job.state = RUNNING
                        job.started_at = now
                    self._cond.notify_all()
                    return execution
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def finish(self, execution: Execution, ok: bool,
               result: Optional[dict] = None,
               error: Optional[dict] = None,
               stats: Optional[dict] = None,
               trace: Optional[List[dict]] = None) -> None:
        """Terminal transition; propagates to every subscribed job."""
        with self._cond:
            if execution.state in TERMINAL:
                return
            execution.state = DONE if ok else FAILED
            execution.result = result
            execution.error = error
            execution.trace = trace
            execution.worker_pid = None
            now = time.time()
            for job in execution.jobs:
                job.state = execution.state
                job.finished_at = now
                job.result = result
                job.error = error
                job.trace = trace
                if stats:
                    job.stats.update(stats)
            self._cond.notify_all()

    def set_progress(self, execution: Execution, info: dict) -> None:
        """Merge a progress record into every subscribed job."""
        with self._cond:
            for job in execution.jobs:
                job.progress.update(info)

    def bump_attempts(self, execution: Execution) -> None:
        """Count one (re)try on every subscribed job."""
        with self._cond:
            for job in execution.jobs:
                job.attempts += 1

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        """The job record, or None."""
        with self._cond:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel one job; returns it (or None when unknown).

        A terminal job is returned unchanged.  Cancelling the last
        subscriber of an execution cancels the execution itself: a
        queued one simply never runs (its heap entry goes stale), a
        running one has its cancel event set for the supervisor to act
        on.  Other subscribers are unaffected -- their synthesis
        continues.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state in TERMINAL:
                return job
            job.state = CANCELLED
            job.finished_at = time.time()
            execution = self._by_key.get(job.key)
            if execution is not None and job in execution.jobs:
                execution.jobs.remove(job)
                if not execution.jobs and execution.state in (QUEUED,
                                                              RUNNING):
                    execution.cancel_event.set()
                    if execution.state == QUEUED:
                        execution.state = CANCELLED
            self._cond.notify_all()
            return job

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Optional[Job]:
        """Block until the job is terminal (or timeout); returns it."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.state in TERMINAL:
                    return job
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return job
                self._cond.wait(remaining)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Executions still queued (stale heap entries excluded)."""
        with self._cond:
            return sum(1 for _, _, e in self._heap if e.state == QUEUED)

    def counts(self) -> Dict[str, int]:
        """Job-state histogram."""
        out = {s: 0 for s in (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
        with self._cond:
            for job in self._jobs.values():
                out[job.state] += 1
        return out

    def jobs(self) -> List[Job]:
        """Every job, submission-ordered (insertion order)."""
        with self._cond:
            return list(self._jobs.values())
