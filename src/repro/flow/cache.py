"""Content-addressed result cache for compilation flows.

A sweep revisits the same (region, library, clock, options, pipeline)
configuration whenever grids overlap or a benchmark re-runs; scheduling
is by far the dominant cost, so caching pays off immediately.  The key
is a deterministic SHA-256 over the region *structure* (operations,
edges, predicates, pins, latency bounds) plus the library name, clock
period, scheduler options and pipelining directive -- two independently
built but identical regions hash identically, which is what makes the
cache content-addressed rather than identity-based.

Cached artifacts (schedules, folded kernels, RTL text, power reports)
are returned by reference: a hit on a context built around a *different*
but structurally identical region yields the schedule of the first run,
bound to the first run's region object.  All metric accessors
(``area``, ``delay_ps``, ``summary()``) only read, so sharing is safe;
callers that mutate schedules should bypass the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.cdfg.region import PipelineSpec, Region
from repro.core.scheduler import SchedulerOptions
from repro.tech.library import Library
from repro.timing import engine as timing_engine


def region_fingerprint(region: Region) -> str:
    """Deterministic content hash of a region's structure.

    Covers everything scheduling observes: per-operation kind, widths,
    predicate literals, payload, pins, I/O striding; the full edge list
    with ports, distances and memory-ordering attributes; the memory
    declarations (depth, width, banking, ports, initial contents --
    banking changes the port-constraint problem, so it must miss the
    cache); and the region-level latency bounds, loop flags and trip
    count.  Operation uids are allocated in insertion order by
    :class:`~repro.cdfg.dfg.DFG`, so two regions built by the same
    sequence of builder calls produce identical fingerprints.
    """
    dfg = region.dfg
    ops = []
    edges = []
    for op in dfg.ops:
        ops.append([
            op.uid, op.kind.value, op.width, op.name,
            sorted(op.predicate.literals),
            repr(op.payload),
            op.pinned_state, op.pinned_resource, op.is_exit_test,
            list(op.operand_widths), op.io_offset, op.io_stride,
        ])
        for edge in dfg.in_edges(op.uid):
            edges.append([edge.src, edge.dst, edge.port, edge.distance,
                          edge.order, edge.min_gap])
    edges.sort()
    memories = [
        [decl.name, decl.depth, decl.width, decl.banks, decl.ports,
         list(decl.init) if decl.init is not None else None]
        for decl in (region.memories[name]
                     for name in sorted(region.memories))
    ]
    frontend = region.metadata.get("frontend")
    payload = {
        "name": region.name,
        "is_loop": region.is_loop,
        "min_latency": region.min_latency,
        "max_latency": region.max_latency,
        "exit_op_uid": region.exit_op_uid,
        "trip_count": region.trip_count,
        # which compiler produced the region, and at which version:
        # bumping a frontend's version tag invalidates every cached
        # artifact compiled from that frontend's sources (structurally
        # identical output notwithstanding), while builder-made and
        # other-frontend regions keep hitting.  None for regions built
        # directly through RegionBuilder.
        "frontend": list(frontend) if frontend is not None else None,
        "ops": ops,
        "edges": edges,
        "memories": memories,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def compilation_key(
    region: Region,
    library: Library,
    clock_ps: float,
    options: Optional[SchedulerOptions] = None,
    pipeline: Optional[PipelineSpec] = None,
) -> str:
    """The cache key of one compilation configuration.

    The timing-model version is part of the key: artifacts scheduled
    under an older delay model must be recomputed, not served.
    """
    payload = {
        "timing_model": timing_engine.TIMING_MODEL_VERSION,
        "region": region_fingerprint(region),
        "library": library.name,
        "clock_ps": repr(float(clock_ps)),
        "options": asdict(options) if options is not None
        else asdict(SchedulerOptions()),
        "ii": pipeline.ii if pipeline is not None else None,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


#: bump when the on-disk cache layout changes; mismatched files load
#: as an empty cache instead of failing.
CACHE_FILE_VERSION = 1


def _load_entries(path: Union[str, Path]) -> Dict[Tuple[str, str], object]:
    """Tolerantly read a cache file's entries; empty dict on any problem.

    Shared by :meth:`FlowCache.load` and the merge step of
    :meth:`FlowCache.save` -- version or timing-model mismatches, a
    missing file and a corrupt pickle all read as "nothing on disk".
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except Exception:  # missing, truncated, corrupt, unreadable ...
        return {}
    if not isinstance(payload, dict) \
            or payload.get("version") != CACHE_FILE_VERSION \
            or payload.get("timing_model") \
            != timing_engine.TIMING_MODEL_VERSION:
        return {}
    data = payload.get("data")
    if not isinstance(data, dict):
        return {}
    return {
        key: artifact for key, artifact in data.items()
        if (isinstance(key, tuple) and len(key) == 2
            and all(isinstance(k, str) for k in key))
    }


class FlowCache:
    """A thread-safe artifact store keyed by (compilation key, stage).

    One instance is shared across the contexts of a sweep (and across
    repeated sweeps); the parallel executor's workers hit it
    concurrently, hence the lock.  ``max_entries`` bounds memory with
    FIFO eviction -- sweeps revisit recent keys, not ancient ones.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self._data: Dict[Tuple[str, str], object] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, key: str, stage: str) -> object:
        """The cached artifact for (key, stage), or None on a miss."""
        with self._lock:
            entry = self._data.get((key, stage))
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def put(self, key: str, stage: str, artifact: object) -> None:
        """Store an artifact; evicts oldest entries beyond the bound."""
        if artifact is None:
            return
        with self._lock:
            self._data[(key, stage)] = artifact
            while len(self._data) > self.max_entries:
                self._data.pop(next(iter(self._data)))

    def peek(self, key: str, stage: str) -> bool:
        """Whether (key, stage) is cached, without touching hit/miss
        counters -- the sweep executor's dispatch probe (counters must
        reflect the flow's own lookups, identically to a serial run)."""
        with self._lock:
            return (key, stage) in self._data

    def entries(self) -> Dict[Tuple[str, str], object]:
        """A snapshot of every entry (what a sweep worker sends back)."""
        with self._lock:
            return dict(self._data)

    def absorb(self, entries: Dict[Tuple[str, str], object]) -> int:
        """Merge another cache's entries; first writer wins per key.

        Artifacts are content-addressed, so two processes that computed
        the same (key, stage) computed equivalent artifacts -- keeping
        the incumbent makes repeated merges idempotent.  Returns the
        number of newly added entries.
        """
        added = 0
        with self._lock:
            for key, artifact in entries.items():
                if artifact is None or key in self._data:
                    continue
                self._data[key] = artifact
                added += 1
            while len(self._data) > self.max_entries:
                self._data.pop(next(iter(self._data)))
        return added

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters for reports."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._data)}

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the cache to ``path`` (pickle, written atomically).

        Saving *merges* with whatever already sits at ``path``: the
        on-disk entries are read back (tolerantly, with the usual
        version checks) and united with this cache's entries, our
        entries winning on conflict.  Two processes saving to the same
        file therefore both land their work -- the last writer decides
        conflicts, but no longer silently discards the other writer's
        disjoint entries.  The atomic ``os.replace`` keeps readers safe
        at every instant; the read-merge-write window is not a
        transaction, which is fine for a cache (a lost entry costs a
        recompute, never correctness).

        The file carries :data:`CACHE_FILE_VERSION` and the current
        timing-model version; :meth:`load` refuses both mismatches, so
        a stale file silently stops matching instead of serving
        artifacts scheduled under an older delay model.
        """
        path = Path(path)
        with self._lock:
            data = dict(self._data)
        merged = dict(_load_entries(path))
        merged.update(data)
        payload = {
            "version": CACHE_FILE_VERSION,
            "timing_model": timing_engine.TIMING_MODEL_VERSION,
            "data": merged,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        # pid + thread id: two threads of one process saving the same
        # path must not interleave writes into one tmp file
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path],
             max_entries: int = 4096) -> "FlowCache":
        """A cache warmed from ``path``; empty on any problem.

        Tolerant by design: a missing, truncated, corrupt or
        version-mismatched file (including a bumped
        ``TIMING_MODEL_VERSION``) yields a working empty cache --
        persistence is an optimization, never a failure mode.
        """
        cache = cls(max_entries=max_entries)
        entries = _load_entries(path)
        with cache._lock:
            for key, artifact in list(entries.items())[-max_entries:]:
                cache._data[key] = artifact
        return cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (f"FlowCache(entries={s['entries']}, hits={s['hits']}, "
                f"misses={s['misses']})")
