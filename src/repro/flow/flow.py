"""Flows: named, composable pass sequences.

A :class:`Flow` runs registered passes over one
:class:`~repro.flow.context.CompilationContext`, timing each pass and
stopping at the first error diagnostic.  The built-in flows cover the
repo's entry points:

========== ==========================================================
``schedule``  frontend -> optimize -> schedule
``pipeline``  schedule plus kernel folding
``verilog``   pipeline plus RTL emission
``sweep``     schedule plus power estimation (the Figure 10/11 axes)
========== ==========================================================

``register_flow`` adds project-specific compositions; ``run_flow`` is
the one-call convenience the CLI, examples and shims use.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Union

from repro.flow.context import CompilationContext, PassTiming
from repro.flow.passes import FlowPass, get_pass
from repro.obs.trace import maybe_span


class Flow:
    """An ordered pass composition with per-pass instrumentation.

    A flow is just a list of registered pass names validated for
    artifact ordering; running one threads a single
    :class:`~repro.flow.context.CompilationContext` through every pass,
    timing each and stopping at the first error diagnostic.

    Example -- compile a prebuilt region to RTL through the stock
    ``verilog`` flow::

        from repro import artisan90
        from repro.flow import run_flow
        from repro.workloads import get_workload

        ctx = run_flow("verilog", region=get_workload("fir")(),
                       library=artisan90(), clock_ps=1600.0)
        assert not ctx.failed
        print(ctx.schedule.summary()["ii"], len(ctx.rtl.splitlines()))

    Custom compositions register once and run anywhere::

        register_flow(Flow("sched_only", ["frontend", "schedule"]))
    """

    def __init__(self, name: str,
                 passes: Sequence[Union[str, FlowPass]]) -> None:
        self.name = name
        self.passes: List[FlowPass] = [
            p if isinstance(p, FlowPass) else get_pass(p) for p in passes]
        self.validate()

    def validate(self) -> None:
        """Check that every pass's inputs are produced upstream.

        ``source``/``region``/``cache`` arrive with the context, so only
        artifacts some pass *provides* are checked for ordering.
        """
        produced = {"source", "region", "cache"}
        all_provided = {a for p in self.passes for a in p.provides}
        for p in self.passes:
            for need in p.requires:
                if need in all_provided and need not in produced:
                    raise ValueError(
                        f"flow {self.name!r}: pass {p.name!r} needs "
                        f"{need!r} before any pass provides it")
            produced.update(p.provides)

    def run(self, ctx: CompilationContext) -> CompilationContext:
        """Execute the passes in order; stops at the first error.

        Between passes the flow honors the context's cancellation
        event (a set event yields a ``cancelled`` error diagnostic
        instead of further artifacts) and reports pass boundaries
        through the context's progress hook -- the checkpoints the job
        service relies on for live status and cooperative aborts.
        """
        with maybe_span(ctx.tracer, "flow.run", flow=self.name,
                        region=ctx.region.name if ctx.region else None,
                        clock_ps=ctx.clock_ps) as flow_span:
            for p in self.passes:
                if ctx.cancel_requested:
                    ctx.error("flow",
                              f"cancelled before pass {p.name!r}")
                    break
                ctx.notify(p.name, "start")
                with maybe_span(ctx.tracer, "flow.pass",
                                name=p.name) as pass_span:
                    start = time.perf_counter()
                    outcome = p.run(ctx)
                    elapsed = time.perf_counter() - start
                    if pass_span is not None:
                        pass_span.set("outcome", outcome or "computed")
                        pass_span.set("failed", ctx.failed)
                ctx.timings.append(
                    PassTiming(p.name, elapsed,
                               cached=outcome == "cached"))
                ctx.notify(p.name,
                           "cached" if outcome == "cached" else "done")
                if ctx.failed:
                    break
            if flow_span is not None:
                flow_span.set("failed", ctx.failed)
        return ctx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Flow({self.name}: {' -> '.join(p.name for p in self.passes)})"


#: every registered flow, by name.
FLOW_REGISTRY: Dict[str, Flow] = {}


def register_flow(flow: Flow) -> Flow:
    """Register (or replace) a named flow."""
    FLOW_REGISTRY[flow.name] = flow
    return flow


def get_flow(name: str) -> Flow:
    """Look up a registered flow; raises ``KeyError`` with choices."""
    try:
        return FLOW_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown flow {name!r}; "
                       f"choose from {sorted(FLOW_REGISTRY)}") from None


register_flow(Flow("schedule", ["frontend", "optimize", "schedule"]))
register_flow(Flow("pipeline", ["frontend", "optimize", "schedule", "fold"]))
register_flow(Flow("verilog",
                   ["frontend", "optimize", "schedule", "fold", "verilog"]))
register_flow(Flow("sweep", ["frontend", "optimize", "schedule", "power"]))


def run_flow(name: str, **context_kwargs) -> CompilationContext:
    """Build a context from keyword arguments and run a named flow.

    ``options=None`` is accepted and replaced by defaults so shims can
    forward their optional parameter unconditionally.
    """
    if context_kwargs.get("options") is None:
        context_kwargs.pop("options", None)
    ctx = CompilationContext(**context_kwargs)
    return get_flow(name).run(ctx)
