"""The sweep engine: process-parallel, cross-point-incremental grids.

Runs the microarchitecture x clock grid of the paper's Figures 10/11
through the ``sweep`` flow.  Three backends share one contract -- every
scheduling decision is bit-identical to the serial cold path, point for
point, diagnostics included:

``context`` (default for ``jobs <= 1``)
    Serial traversal over a :class:`~repro.flow.sweepctx.SweepContext`:
    the region factory runs once, each microarchitecture variant
    (unroll + latency clamp + banking) is built once, and all clocks of
    a variant share one scheduler carryover cache (timing statics,
    heights, priority orders, clock-keyed ASAP/ALAP skeletons).

``process`` (default for ``jobs > 1``)
    The context engine sharded over worker processes.  Points are
    batched per variant, each batch shipping its prebuilt region to the
    worker as one pickle blob (not one per point); workers keep a
    private :class:`~repro.flow.cache.FlowCache` whose entries are
    merged back into the shared cache on completion.  Points already
    present in the shared cache are served in the parent, so warm
    re-sweeps never pay worker dispatch.  Any pool-level failure falls
    back to the ``context`` backend for the remaining points.

``thread``
    The seed executor, preserved verbatim as the benchmark baseline and
    the fallback of last resort: per-point factory rebuilds fanned out
    over a GIL-bound thread pool.

Infeasible configurations are first-class :class:`InfeasiblePoint`
results instead of being silently dropped.  Result ordering is the
serial traversal order (microarchitecture-major, then clock) under
every backend.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import profiling
from repro.cdfg.dfg import DFGError
from repro.cdfg.region import PipelineSpec, Region
from repro.core.scheduler import SchedulerOptions
from repro.explore.microarch import (
    InfeasiblePoint,
    Microarch,
    PAPER_CLOCKS_PS,
    PAPER_MICROARCHS,
)
from repro.explore.pareto import DesignPoint
from repro.flow.cache import FlowCache, compilation_key
from repro.flow.context import CompilationContext
from repro.flow.flow import get_flow
from repro.flow.sweepctx import SweepContext, SweepVariant
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer, maybe_span
from repro.tech.library import Library

PointResult = Union[DesignPoint, InfeasiblePoint]

#: sweep backends; ``None`` picks ``context`` or ``process`` by jobs.
BACKENDS = ("context", "process", "thread")


@dataclass
class SweepResult:
    """Everything one sweep produced, feasible or not."""

    points: List[DesignPoint] = field(default_factory=list)
    infeasible: List[InfeasiblePoint] = field(default_factory=list)
    elapsed_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    backend: str = "context"
    jobs: int = 1
    #: sweep-layer profile: worker utilization, pickled bytes, warm
    #: accepts/fallbacks, per-worker cache traffic (process backend).
    profile: Dict[str, object] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Grid size: feasible + infeasible."""
        return len(self.points) + len(self.infeasible)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly record of the whole sweep."""
        return {
            "feasible": len(self.points),
            "infeasible": len(self.infeasible),
            "elapsed_s": round(self.elapsed_s, 4),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "backend": self.backend,
            "jobs": self.jobs,
            "profile": dict(self.profile),
            "points": [
                {"label": p.label, "microarch": p.microarch,
                 "clock_ps": p.clock_ps, "ii": p.ii, "latency": p.latency,
                 "delay_ps": p.delay_ps, "area": p.area,
                 "power_mw": p.power_mw} for p in self.points],
            "infeasible_points": [
                {"microarch": q.microarch, "clock_ps": q.clock_ps,
                 "reason": q.reason} for q in self.infeasible],
        }


def _point_result(ctx: CompilationContext, microarch: Microarch,
                  clock_ps: float) -> PointResult:
    """Translate a finished flow context into a grid point record."""
    if ctx.failed:
        return InfeasiblePoint(microarch.name, clock_ps,
                               ctx.errors[0].message)
    schedule = ctx.schedule
    return DesignPoint(
        label=f"{microarch.name}@{clock_ps:.0f}",
        microarch=microarch.name,
        clock_ps=clock_ps,
        ii=schedule.ii_effective,
        latency=schedule.latency,
        delay_ps=schedule.delay_ps,
        area=schedule.area,
        power_mw=ctx.power.total_mw,
    )


def synthesize_design_point(
    region_factory: Callable[[], Region],
    library: Library,
    microarch: Microarch,
    clock_ps: float,
    options: Optional[SchedulerOptions] = None,
    cache: Optional[FlowCache] = None,
    tracer: Optional[Tracer] = None,
) -> PointResult:
    """One HLS run through the ``sweep`` flow.

    The region is built fresh (the single-point entry has no sweep
    context to share structure with), clamped to the microarchitecture's
    latency, and scheduled/power-estimated.  Returns a
    :class:`DesignPoint`, or an :class:`InfeasiblePoint` carrying the
    scheduler's reason when the configuration is overconstrained.
    """
    try:
        region = microarch.apply_unroll(region_factory())
    except DFGError as exc:
        # an unrollable-as-asked region (indivisible trip count,
        # distance>1 carried edges, ...) is an overconstrained grid
        # point like any other, not a sweep-aborting error
        return InfeasiblePoint(microarch.name, clock_ps, str(exc))
    region.min_latency = microarch.latency
    region.max_latency = microarch.latency
    microarch.apply_banking(region)
    pipeline = PipelineSpec(ii=microarch.ii) \
        if microarch.ii is not None else None
    ctx = CompilationContext(
        region=region, library=library, clock_ps=clock_ps,
        pipeline=pipeline, run_optimizer=False, cache=cache,
        tracer=tracer)
    if options is not None:
        ctx.options = options
    get_flow("sweep").run(ctx)
    return _point_result(ctx, microarch, clock_ps)


def _variant_point(
    variant: SweepVariant,
    library: Library,
    clock_ps: float,
    options: Optional[SchedulerOptions],
    cache: Optional[FlowCache],
    tracer: Optional[Tracer] = None,
) -> PointResult:
    """One grid point against a prebuilt variant (context/process path)."""
    if variant.region is None:
        return InfeasiblePoint(variant.microarch.name, clock_ps,
                               variant.error or "variant build failed")
    with maybe_span(tracer, "sweep.point",
                    microarch=variant.microarch.name,
                    clock_ps=clock_ps) as span:
        ctx = CompilationContext(
            region=variant.region, library=library, clock_ps=clock_ps,
            pipeline=variant.pipeline, run_optimizer=False, cache=cache,
            tracer=tracer)
        ctx.scheduler_carryover = variant.carryover
        if options is not None:
            ctx.options = options
        get_flow("sweep").run(ctx)
        result = _point_result(ctx, variant.microarch, clock_ps)
        if span is not None:
            span.set("feasible", not isinstance(result, InfeasiblePoint))
    return result


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------
def _sweep_worker(payload: Tuple) -> Tuple:
    """One worker batch: a variant region blob plus its clock list.

    Runs in a worker process.  The region arrives as a single pickle
    blob shared by every point of the batch; the worker schedules its
    clocks against a private :class:`FlowCache` (entries travel back to
    the parent for merging) and returns its profiling counters and busy
    time so the parent can report utilization.  When the parent traces
    (``traced`` in the payload), the worker records its points into a
    private :class:`Tracer` and ships the exported spans home on the
    same return tuple the cache entries ride -- the sweep's existing
    merge-back channel.
    """
    (chunk_id, blob, error, microarch, clocks, options, library,
     traced) = payload
    profiling.reset()  # forked workers inherit the parent's table
    tracer = Tracer() if traced else None
    start = time.perf_counter()
    region = pickle.loads(blob) if blob is not None else None
    variant = SweepVariant(microarch, region, error, library)
    local_cache = FlowCache()
    results = [
        _variant_point(variant, library, clock, options, local_cache,
                       tracer)
        for clock in clocks
    ]
    busy_s = time.perf_counter() - start
    return (chunk_id, results, local_cache.entries(), local_cache.stats(),
            profiling.snapshot(), busy_s,
            tracer.export() if tracer else [])


def _chunk_clocks(idxs: List[int], n_chunks: int) -> List[List[int]]:
    """Split one variant's grid indexes into up to ``n_chunks`` batches."""
    n_chunks = max(1, min(n_chunks, len(idxs)))
    size = -(-len(idxs) // n_chunks)
    return [idxs[i:i + size] for i in range(0, len(idxs), size)]


def _run_process_backend(
    sctx: SweepContext,
    grid: List[Tuple[Microarch, float]],
    results: List[Optional[PointResult]],
    library: Library,
    options: Optional[SchedulerOptions],
    jobs: int,
    cache: Optional[FlowCache],
    profile: Dict[str, object],
    tracer: Optional[Tracer] = None,
) -> None:
    """Fill ``results`` for every index still None, via worker processes."""
    by_variant: Dict[Microarch, List[int]] = {}
    for idx, (microarch, _) in enumerate(grid):
        if results[idx] is None:
            by_variant.setdefault(microarch, []).append(idx)
    if not by_variant:
        return
    per_variant = max(1, jobs // len(by_variant))
    workers: List[Dict[str, object]] = []
    # more processes than cores only adds fork + scheduling overhead;
    # chunking already bounds useful parallelism at one batch per
    # variant-chunk
    max_workers = min(jobs, max(1, os.cpu_count() or 1))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = []
        chunk_map: List[List[int]] = []
        # build + submit variant by variant so the first worker starts
        # while the parent is still constructing later variants
        for microarch, idxs in by_variant.items():
            variant = sctx.variant(microarch)
            blob = variant.blob() if variant.region is not None else None
            for chunk_idxs in _chunk_clocks(idxs, per_variant):
                payload = (len(chunk_map), blob, variant.error, microarch,
                           [grid[i][1] for i in chunk_idxs], options,
                           library, tracer is not None)
                futures.append(pool.submit(_sweep_worker, payload))
                chunk_map.append(chunk_idxs)
        for future, chunk_idxs in zip(futures, chunk_map):
            (_, chunk_results, entries, stats, counters,
             busy_s, spans) = future.result()
            for idx, result in zip(chunk_idxs, chunk_results):
                results[idx] = result
            profiling.merge(counters)
            if tracer is not None:
                tracer.absorb(spans)
            REGISTRY.observe("sweep.worker_busy_seconds", busy_s)
            if cache is not None:
                cache.absorb(entries)
                # fold the worker's flow lookups into the shared
                # counters: the sweep's hit/miss totals then match the
                # serial traversal exactly
                cache.hits += stats["hits"]
                cache.misses += stats["misses"]
            workers.append({
                "points": len(chunk_idxs),
                "busy_s": round(busy_s, 4),
                "cache_hits": stats["hits"],
                "cache_misses": stats["misses"],
            })
    profile["workers"] = workers


def _run_sweep_threads(
    region_factory: Callable[[], Region],
    library: Library,
    grid: List[Tuple[Microarch, float]],
    options: Optional[SchedulerOptions],
    jobs: int,
    cache: Optional[FlowCache],
    tracer: Optional[Tracer] = None,
) -> List[PointResult]:
    """The seed thread-pool path (benchmark baseline, GIL-bound)."""
    def one(item: Tuple[Microarch, float]) -> PointResult:
        microarch, clock = item
        return synthesize_design_point(
            region_factory, library, microarch, clock, options, cache,
            tracer)

    if jobs <= 1:
        return [one(item) for item in grid]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(one, grid))


def _execute_grid(
    region_factory: Callable[[], Region],
    library: Library,
    grid: List[Tuple[Microarch, float]],
    options: Optional[SchedulerOptions],
    jobs: int,
    cache: Optional[FlowCache],
    backend: Optional[str],
    tracer: Optional[Tracer] = None,
) -> Tuple[List[PointResult], SweepResult]:
    """Execute an explicit (microarch, clock) list on the sweep engine.

    The shared core of :func:`run_sweep` (cross-product grids) and
    :func:`run_points` (ragged point lists).  Returns the per-point
    results in input order plus the accounting record.
    """
    if backend is None:
        # a process pool on a single-core host is pure fork/pickle
        # overhead -- the context engine does the same work in-process
        # (backends are decision-identical, so the choice is invisible)
        backend = "process" if jobs > 1 and (os.cpu_count() or 1) > 1 \
            else "context"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown sweep backend {backend!r}; choose from {BACKENDS}")
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    ffwd0 = profiling.counters.get("scheduler.ffwd", 0)
    reject0 = profiling.counters.get("scheduler.ffwd_reject", 0)
    profile: Dict[str, object] = {}
    start = time.perf_counter()

    with maybe_span(tracer, "sweep.run", backend=backend, jobs=jobs,
                    points=len(grid)):
        if backend == "thread":
            results: List[Optional[PointResult]] = _run_sweep_threads(
                region_factory, library, grid, options, jobs, cache,
                tracer)
        else:
            sctx = SweepContext(region_factory, library)
            results = [None] * len(grid)
            if backend == "process" and jobs > 1:
                # serve points the shared cache already covers in the
                # parent (the flow's own get() calls do the hit
                # counting), then dispatch the rest to workers
                parent_served = 0
                for idx, (microarch, clock) in enumerate(grid):
                    if cache is None:
                        break
                    variant = sctx.variant(microarch)
                    if variant.region is None:
                        continue
                    key = compilation_key(
                        variant.region, library, clock,
                        options or SchedulerOptions(), variant.pipeline)
                    if cache.peek(key, "schedule"):
                        results[idx] = _variant_point(
                            variant, library, clock, options, cache,
                            tracer)
                        parent_served += 1
                profile["parent_served"] = parent_served
                try:
                    _run_process_backend(sctx, grid, results, library,
                                         options, jobs, cache, profile,
                                         tracer)
                except Exception:
                    # pool-level failure (unpicklable payload, broken
                    # worker): finish on the in-process context engine
                    profiling.bump("sweep.process_fallback")
                    profile["process_fallback"] = True
            for idx, (microarch, clock) in enumerate(grid):
                if results[idx] is None:
                    results[idx] = _variant_point(
                        sctx.variant(microarch), library, clock,
                        options, cache, tracer)

    elapsed = time.perf_counter() - start
    out = SweepResult(elapsed_s=elapsed, backend=backend, jobs=jobs,
                      profile=profile)
    for result in results:
        if isinstance(result, InfeasiblePoint):
            out.infeasible.append(result)
        else:
            out.points.append(result)
    if cache is not None:
        out.cache_hits = cache.hits - hits0
        out.cache_misses = cache.misses - misses0
    counters = profiling.counters
    profile["warm_accepts"] = counters.get("scheduler.ffwd", 0) - ffwd0
    profile["warm_fallbacks"] = \
        counters.get("scheduler.ffwd_reject", 0) - reject0
    profile["pickle_bytes"] = counters.get("sweep.pickle_bytes", 0)
    workers = profile.get("workers")
    if workers and elapsed > 0:
        busy = sum(w["busy_s"] for w in workers)
        profile["worker_utilization"] = round(
            busy / (elapsed * max(jobs, 1)), 4)
        REGISTRY.set_gauge("sweep.worker_utilization",
                           profile["worker_utilization"])
    profiling.bump("sweep.points", len(grid))
    profiling.bump(f"sweep.backend.{backend}")
    # the profile dict stays the public per-sweep record; the registry
    # carries the same figures for live consumers (/metrics, profile
    # --json) without another counter table
    REGISTRY.observe("sweep.elapsed_seconds", elapsed)
    REGISTRY.set_gauge("sweep.last_points", len(grid))
    return results, out


def run_sweep(
    region_factory: Callable[[], Region],
    library: Library,
    microarchs: Sequence[Microarch] = PAPER_MICROARCHS,
    clocks_ps: Sequence[float] = PAPER_CLOCKS_PS,
    options: Optional[SchedulerOptions] = None,
    jobs: int = 1,
    cache: Optional[FlowCache] = None,
    backend: Optional[str] = None,
    tracer: Optional[Tracer] = None,
) -> SweepResult:
    """The full microarch x clock grid, on the sweep engine.

    ``backend`` selects ``context`` / ``process`` / ``thread``
    explicitly; by default ``jobs`` decides (``context`` serially,
    ``process`` for ``jobs > 1`` on multicore hosts).  Result ordering
    and every scheduling decision are identical across backends --
    including with a ``tracer`` attached, which collects per-point
    spans (worker-process spans come home over the cache merge-back
    channel) without steering anything.
    """
    grid: List[Tuple[Microarch, float]] = [
        (m, float(c)) for m in microarchs for c in clocks_ps]
    _, out = _execute_grid(region_factory, library, grid, options, jobs,
                           cache, backend, tracer)
    return out


def run_points(
    region_factory: Callable[[], Region],
    library: Library,
    points: Sequence[Tuple[Microarch, float]],
    options: Optional[SchedulerOptions] = None,
    jobs: int = 1,
    cache: Optional[FlowCache] = None,
    backend: Optional[str] = None,
    tracer: Optional[Tracer] = None,
) -> List[PointResult]:
    """A ragged (microarch, clock) list through the sweep engine.

    The batched evaluation entry the DSE strategies use: one dispatch
    covers every queued candidate, whatever mixture of curves they come
    from, so the worker pool stays saturated between search decisions.
    Results come back in input order, one per requested point, with the
    same bit-identical-to-serial guarantee as :func:`run_sweep`.
    """
    grid = [(m, float(c)) for m, c in points]
    results, _ = _execute_grid(region_factory, library, grid, options,
                               jobs, cache, backend, tracer)
    return results
