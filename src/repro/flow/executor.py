"""Parallel sweep executor.

Runs the microarchitecture x clock grid of the paper's Figures 10/11
through the ``sweep`` flow.  Each grid point is independent, so the
executor fans them out over a thread pool (``jobs`` workers) while
keeping the result order deterministic -- identical, point for point, to
the serial traversal (microarchitecture-major, then clock).  Infeasible
configurations are first-class :class:`InfeasiblePoint` results instead
of being silently dropped, and a shared
:class:`~repro.flow.cache.FlowCache` makes repeated grids near-free.

Threads rather than processes: regions are built per-worker by the
factory, the scheduler touches only per-run state, and factories are
frequently closures that do not pickle.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cdfg.dfg import DFGError
from repro.cdfg.region import PipelineSpec, Region
from repro.core.scheduler import SchedulerOptions
from repro.explore.microarch import (
    InfeasiblePoint,
    Microarch,
    PAPER_CLOCKS_PS,
    PAPER_MICROARCHS,
)
from repro.explore.pareto import DesignPoint
from repro.flow.cache import FlowCache
from repro.flow.context import CompilationContext
from repro.flow.flow import get_flow
from repro.tech.library import Library

PointResult = Union[DesignPoint, InfeasiblePoint]


@dataclass
class SweepResult:
    """Everything one sweep produced, feasible or not."""

    points: List[DesignPoint] = field(default_factory=list)
    infeasible: List[InfeasiblePoint] = field(default_factory=list)
    elapsed_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def total(self) -> int:
        """Grid size: feasible + infeasible."""
        return len(self.points) + len(self.infeasible)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly record of the whole sweep."""
        return {
            "feasible": len(self.points),
            "infeasible": len(self.infeasible),
            "elapsed_s": round(self.elapsed_s, 4),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "points": [
                {"label": p.label, "microarch": p.microarch,
                 "clock_ps": p.clock_ps, "ii": p.ii, "latency": p.latency,
                 "delay_ps": p.delay_ps, "area": p.area,
                 "power_mw": p.power_mw} for p in self.points],
            "infeasible_points": [
                {"microarch": q.microarch, "clock_ps": q.clock_ps,
                 "reason": q.reason} for q in self.infeasible],
        }


def synthesize_design_point(
    region_factory: Callable[[], Region],
    library: Library,
    microarch: Microarch,
    clock_ps: float,
    options: Optional[SchedulerOptions] = None,
    cache: Optional[FlowCache] = None,
) -> PointResult:
    """One HLS run through the ``sweep`` flow.

    The region is built fresh (schedules bind operation state), clamped
    to the microarchitecture's latency, and scheduled/power-estimated.
    Returns a :class:`DesignPoint`, or an :class:`InfeasiblePoint`
    carrying the scheduler's reason when the configuration is
    overconstrained.
    """
    try:
        region = microarch.apply_unroll(region_factory())
    except DFGError as exc:
        # an unrollable-as-asked region (indivisible trip count,
        # distance>1 carried edges, ...) is an overconstrained grid
        # point like any other, not a sweep-aborting error
        return InfeasiblePoint(microarch.name, clock_ps, str(exc))
    region.min_latency = microarch.latency
    region.max_latency = microarch.latency
    microarch.apply_banking(region)
    pipeline = PipelineSpec(ii=microarch.ii) \
        if microarch.ii is not None else None
    ctx = CompilationContext(
        region=region, library=library, clock_ps=clock_ps,
        pipeline=pipeline, run_optimizer=False, cache=cache)
    if options is not None:
        ctx.options = options
    get_flow("sweep").run(ctx)
    if ctx.failed:
        return InfeasiblePoint(microarch.name, clock_ps,
                               ctx.errors[0].message)
    schedule = ctx.schedule
    return DesignPoint(
        label=f"{microarch.name}@{clock_ps:.0f}",
        microarch=microarch.name,
        clock_ps=clock_ps,
        ii=schedule.ii_effective,
        latency=schedule.latency,
        delay_ps=schedule.delay_ps,
        area=schedule.area,
        power_mw=ctx.power.total_mw,
    )


def run_sweep(
    region_factory: Callable[[], Region],
    library: Library,
    microarchs: Sequence[Microarch] = PAPER_MICROARCHS,
    clocks_ps: Sequence[float] = PAPER_CLOCKS_PS,
    options: Optional[SchedulerOptions] = None,
    jobs: int = 1,
    cache: Optional[FlowCache] = None,
) -> SweepResult:
    """The full grid, serially (``jobs=1``) or on a worker pool.

    Result ordering is deterministic and identical in both modes:
    ``ThreadPoolExecutor.map`` yields in submission order, which is the
    serial traversal order.
    """
    grid: List[Tuple[Microarch, float]] = [
        (m, float(c)) for m in microarchs for c in clocks_ps]
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    start = time.perf_counter()

    def one(item: Tuple[Microarch, float]) -> PointResult:
        microarch, clock = item
        return synthesize_design_point(
            region_factory, library, microarch, clock, options, cache)

    if jobs <= 1:
        results = [one(item) for item in grid]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(one, grid))

    out = SweepResult(elapsed_s=time.perf_counter() - start)
    for result in results:
        if isinstance(result, InfeasiblePoint):
            out.infeasible.append(result)
        else:
            out.points.append(result)
    if cache is not None:
        out.cache_hits = cache.hits - hits0
        out.cache_misses = cache.misses - misses0
    return out
