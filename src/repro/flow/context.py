"""The compilation context threaded through a flow.

A :class:`CompilationContext` is the single mutable object a
:class:`~repro.flow.flow.Flow` operates on: it carries the inputs (source
text or a prebuilt region, library, clock, scheduler options, pipelining
directive), accumulates artifacts as passes run (elaborated loops, the
optimizer report, the schedule, the folded kernel, RTL text, the power
report) and collects structured per-stage :class:`Diagnostic` entries
instead of bare exceptions or ``None`` returns, so drivers can render or
serialize failures uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cdfg.region import PipelineSpec, Region
from repro.core.folding import FoldedPipeline
from repro.core.schedule import Schedule, ScheduleError
from repro.core.scheduler import SchedulerOptions
from repro.tech.library import Library
from repro.tech.power import PowerReport

#: diagnostic severities, mildest first.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One structured message attached to a compilation stage."""

    stage: str
    severity: str
    message: str
    details: tuple = ()

    def __str__(self) -> str:
        head = f"[{self.stage}] {self.severity}: {self.message}"
        if not self.details:
            return head
        return head + "".join(f"\n  {line}" for line in self.details)


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock cost of one pass execution."""

    name: str
    seconds: float
    cached: bool = False


@dataclass
class CompilationContext:
    """Inputs, artifacts and diagnostics of one compilation."""

    library: Library
    clock_ps: float = 1600.0
    options: SchedulerOptions = field(default_factory=SchedulerOptions)
    pipeline: Optional[PipelineSpec] = None
    #: mini-language source text (consumed by the frontend pass) ...
    source: Optional[str] = None
    #: ... or a prebuilt region (the frontend pass then no-ops).
    region: Optional[Region] = None
    #: set False to skip the optimizer pass (microarchitecture sweeps
    #: schedule the region exactly as built).
    run_optimizer: bool = True
    #: result cache shared across contexts; None disables caching.
    cache: Optional["FlowCache"] = None  # noqa: F821 - see flow.cache
    #: cross-point scheduling carryover (a ``_RegionCache`` owned by the
    #: sweep engine's :class:`~repro.flow.sweepctx.SweepContext`); every
    #: cached entry is decision-neutral, so it is transient state -- it
    #: never enters the compilation cache key.
    scheduler_carryover: Optional[object] = None
    #: progress hook called as ``progress_cb(pass_name, event)`` with
    #: ``event`` in {"start", "done", "cached"} around every pass; long
    #: drivers (the job service) use it for live status.  Exceptions
    #: raised by the hook are swallowed: observation must never change
    #: a compilation's outcome.
    progress_cb: Optional[Callable[[str, str], None]] = None
    #: cooperative cancellation: any object with ``is_set() -> bool``
    #: (e.g. ``threading.Event``).  Checked between passes by
    #: :meth:`~repro.flow.flow.Flow.run`; a set event stops the flow
    #: with a ``cancelled`` error diagnostic instead of an artifact.
    cancel_event: Optional[object] = None
    #: structured trace sink (a :class:`repro.obs.trace.Tracer`); the
    #: flow emits one span per pass and the scheduler nests its
    #: relaxation-pass spans underneath.  Like ``progress_cb``,
    #: tracing is decision-neutral: ``None`` (the default) costs one
    #: check per pass and an attached tracer never changes an outcome.
    tracer: Optional["Tracer"] = None  # noqa: F821 - see repro.obs

    # -- artifacts, filled in by passes ---------------------------------
    elaborated: Optional[list] = None
    opt_report: Optional[Dict[str, int]] = None
    schedule: Optional[Schedule] = None
    folded: Optional[FoldedPipeline] = None
    rtl: Optional[str] = None
    power: Optional[PowerReport] = None

    # -- bookkeeping ----------------------------------------------------
    diagnostics: List[Diagnostic] = field(default_factory=list)
    timings: List[PassTiming] = field(default_factory=list)
    #: content hash of (region, library, clock, options, pipeline); set
    #: by the first cache-aware pass, shared by the ones downstream.
    cache_key: Optional[str] = None

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def diag(self, stage: str, severity: str, message: str,
             details: tuple = ()) -> Diagnostic:
        """Record a diagnostic and return it."""
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        entry = Diagnostic(stage, severity, message, tuple(details))
        self.diagnostics.append(entry)
        return entry

    def info(self, stage: str, message: str) -> Diagnostic:
        """Record an informational diagnostic."""
        return self.diag(stage, "info", message)

    def error(self, stage: str, message: str,
              details: tuple = ()) -> Diagnostic:
        """Record an error diagnostic (marks the context failed)."""
        return self.diag(stage, "error", message, details)

    @property
    def failed(self) -> bool:
        """Whether any pass reported an error."""
        return any(d.severity == "error" for d in self.diagnostics)

    @property
    def cancel_requested(self) -> bool:
        """Whether the attached cancellation event (if any) is set."""
        event = self.cancel_event
        try:
            return event is not None and bool(event.is_set())
        except Exception:
            return False

    def notify(self, pass_name: str, event: str) -> None:
        """Invoke the progress hook, swallowing observer failures."""
        if self.progress_cb is None:
            return
        try:
            self.progress_cb(pass_name, event)
        except Exception:
            pass

    @property
    def errors(self) -> List[Diagnostic]:
        """All error diagnostics, in emission order."""
        return [d for d in self.diagnostics if d.severity == "error"]

    def raise_if_failed(self) -> None:
        """Re-raise the first error as a :class:`ScheduleError`.

        Bridges the structured-diagnostic world back to the legacy
        exception-based API the thin shims preserve.
        """
        if not self.failed:
            return
        first = self.errors[0]
        raise ScheduleError(first.message, list(first.details))

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    def timing_summary(self) -> Dict[str, float]:
        """pass name -> seconds (cached passes report their hit cost)."""
        out: Dict[str, float] = {}
        for timing in self.timings:
            out[timing.name] = out.get(timing.name, 0.0) + timing.seconds
        return out

    def summary(self) -> Dict[str, object]:
        """Key figures of the compilation, JSON-friendly."""
        out: Dict[str, object] = {
            "region": self.region.name if self.region else None,
            "library": self.library.name,
            "clock_ps": self.clock_ps,
            "pipeline_ii": self.pipeline.ii if self.pipeline else None,
            "failed": self.failed,
            "diagnostics": [str(d) for d in self.diagnostics],
            "pass_seconds": self.timing_summary(),
        }
        if self.schedule is not None:
            out["schedule"] = self.schedule.summary()
        return out
