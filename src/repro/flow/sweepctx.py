"""Cross-point state of one sweep: prebuilt variants + carryover caches.

A Figure-10-style grid evaluates every microarchitecture at every clock.
The seed executor rebuilt the region from its factory for every single
point and let each ``schedule_region`` call recompute its timing
statics, heights, priority orders and ASAP/ALAP skeletons from scratch.
All of that is structure, not decision state: scheduling never mutates
the region (the equivalence suite pins this), and the scheduler's
carryover cache keys every clock-dependent entry by clock.

:class:`SweepContext` therefore builds each microarchitecture *variant*
(factory -> unroll -> latency clamp -> banking) exactly once and pairs
it with one scheduler carryover cache that serves every clock of that
variant.  The process backend additionally asks the context for a
pickled blob of the variant region, shipped to a worker once per point
batch rather than once per point.

Everything held here is decision-neutral: a sweep through a
``SweepContext`` is bit-identical to the seed per-point path -- same
schedules, same diagnostics, same infeasible records (the bit-identity
property suite compares all of them).
"""

from __future__ import annotations

import pickle
from typing import Callable, Dict, Optional, Tuple

from repro import profiling
from repro.cdfg.dfg import DFGError
from repro.cdfg.region import PipelineSpec, Region
from repro.core.scheduler import _RegionCache
from repro.explore.microarch import Microarch
from repro.tech.library import Library


class SweepVariant:
    """One prebuilt microarchitecture variant of the swept region."""

    def __init__(self, microarch: Microarch, region: Optional[Region],
                 error: Optional[str], library: Library) -> None:
        self.microarch = microarch
        #: the region every clock of this variant schedules (None when
        #: the variant itself is unbuildable, e.g. an indivisible
        #: unroll factor -- ``error`` then carries the reason).
        self.region = region
        self.error = error
        self.pipeline: Optional[PipelineSpec] = (
            PipelineSpec(ii=microarch.ii)
            if microarch.ii is not None else None)
        self._library = library
        self._carryover: Optional[_RegionCache] = None
        self._blob: Optional[bytes] = None

    @property
    def carryover(self) -> Optional[_RegionCache]:
        """The scheduler carryover cache shared by this variant's clocks
        (built lazily; every entry is decision-neutral)."""
        if self._carryover is None and self.region is not None:
            self._carryover = _RegionCache(self.region, self._library)
        return self._carryover

    def blob(self) -> bytes:
        """The pickled region, computed once (process-backend payload)."""
        if self._blob is None:
            self._blob = pickle.dumps(self.region,
                                      protocol=pickle.HIGHEST_PROTOCOL)
            profiling.bump("sweep.pickle_bytes", len(self._blob))
        return self._blob


class SweepContext:
    """Factory-once, build-variant-once state for one sweep.

    The factory runs a single time; every microarchitecture's unroll +
    latency clamp + banking runs a single time.  Points then schedule
    against the shared variant region with the variant's carryover
    cache.  Building a variant can fail (unrollable-as-asked regions);
    the failure is recorded per variant so every clock of that
    microarchitecture reports the same :class:`InfeasiblePoint` reason
    the per-point path would have produced.
    """

    def __init__(self, region_factory: Callable[[], Region],
                 library: Library) -> None:
        self.library = library
        self._factory = region_factory
        self._base: Optional[Region] = None
        self._variants: Dict[Microarch, SweepVariant] = {}

    def variant(self, microarch: Microarch) -> SweepVariant:
        """The (memoized) prebuilt variant for one microarchitecture."""
        entry = self._variants.get(microarch)
        if entry is not None:
            return entry
        profiling.bump("sweep.variant_builds")
        try:
            if microarch.unroll is not None and microarch.unroll != 1:
                # unrolling rebuilds the DFG from the base region, so
                # variants can share one factory product; non-unrolled
                # variants need their own build (banking mutates
                # memories in place)
                region = microarch.apply_unroll(self._base_region())
            else:
                region = self._factory()
            region.min_latency = microarch.latency
            region.max_latency = microarch.latency
            microarch.apply_banking(region)
            entry = SweepVariant(microarch, region, None, self.library)
        except DFGError as exc:
            entry = SweepVariant(microarch, None, str(exc), self.library)
        self._variants[microarch] = entry
        return entry

    def _base_region(self) -> Region:
        if self._base is None:
            self._base = self._factory()
        return self._base
