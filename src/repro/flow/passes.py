"""Registered compilation passes.

Each pass is a named, cache-aware stage over a
:class:`~repro.flow.context.CompilationContext`.  The bodies are thin:
they delegate to the existing engines (``compile_source``, ``optimize``,
``schedule_region``, ``fold_schedule``, ``generate_verilog``,
``estimate_power``) and translate exceptions into structured
diagnostics.  A pass returns ``"cached"`` when it served its artifact
from the context's :class:`~repro.flow.cache.FlowCache`, ``"skipped"``
when it had nothing to do, and ``None`` when it computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.cdfg.transforms import optimize
from repro.core.folding import fold_schedule, validate_folding
from repro.core.schedule import ScheduleError
from repro.core.scheduler import schedule_region
from repro.flow.cache import compilation_key
from repro.flow.context import CompilationContext
from repro.frontend import FrontendError, compile_source
from repro.rtl import generate_verilog
from repro.tech.power import estimate_power

PassFn = Callable[[CompilationContext], Optional[str]]


@dataclass(frozen=True)
class FlowPass:
    """A named stage: metadata plus the function that runs it."""

    name: str
    fn: PassFn
    #: context artifacts this pass reads (documentation + composition
    #: checks in :meth:`repro.flow.flow.Flow.validate`).
    requires: Tuple[str, ...] = ()
    #: context artifacts this pass fills in.
    provides: Tuple[str, ...] = ()
    description: str = ""

    def run(self, ctx: CompilationContext) -> Optional[str]:
        """Execute the pass body."""
        return self.fn(ctx)


#: every registered pass, by name.
PASS_REGISTRY: Dict[str, FlowPass] = {}


def register_pass(name: str, requires: Tuple[str, ...] = (),
                  provides: Tuple[str, ...] = (), description: str = ""):
    """Decorator: register a pass function under ``name``."""
    def wrap(fn: PassFn) -> FlowPass:
        entry = FlowPass(name, fn, requires, provides,
                         description or (fn.__doc__ or "").strip())
        PASS_REGISTRY[name] = entry
        return entry
    return wrap


def get_pass(name: str) -> FlowPass:
    """Look up a registered pass; raises ``KeyError`` with choices."""
    try:
        return PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown pass {name!r}; "
                       f"choose from {sorted(PASS_REGISTRY)}") from None


def _ensure_key(ctx: CompilationContext) -> Optional[str]:
    """The context's compilation cache key (computed once, then shared)."""
    if ctx.cache is None:
        return None
    if ctx.cache_key is None:
        ctx.cache_key = compilation_key(
            ctx.region, ctx.library, ctx.clock_ps, ctx.options,
            ctx.pipeline)
    return ctx.cache_key


def _cached(ctx: CompilationContext, stage: str):
    key = _ensure_key(ctx)
    if key is None:
        return None
    return ctx.cache.get(key, stage)


def _store(ctx: CompilationContext, stage: str, artifact: object) -> None:
    if ctx.cache is not None and ctx.cache_key is not None:
        ctx.cache.put(ctx.cache_key, stage, artifact)


@dataclass(frozen=True)
class _Infeasible:
    """Negative cache entry: the scheduler proved this key infeasible.

    Infeasible configurations are the most expensive ones (they exhaust
    the relaxation search), so re-sweeps must not replay them.
    """

    message: str
    details: Tuple[str, ...]


# ----------------------------------------------------------------------
# pass bodies
# ----------------------------------------------------------------------
@register_pass("frontend", requires=("source",), provides=("region",),
               description="parse + elaborate mini-language source")
def frontend_pass(ctx: CompilationContext) -> Optional[str]:
    """Source text -> elaborated loops; the first loop becomes the region.

    Skipped when the context already carries a prebuilt region.  Multi-
    loop sources keep all loops in ``ctx.elaborated``; drivers that
    compile every loop build one context per loop.
    """
    if ctx.region is not None:
        return "skipped"
    if ctx.source is None:
        ctx.error("frontend", "no source text and no prebuilt region")
        return None
    try:
        loops = compile_source(ctx.source)
    except FrontendError as exc:
        ctx.error("frontend", exc.headline(), details=tuple(exc.excerpt()))
        return None
    ctx.elaborated = loops
    loop = loops[0]
    ctx.region = loop.region
    if ctx.pipeline is None and loop.pipeline is not None:
        ctx.pipeline = loop.pipeline
        ctx.info("frontend",
                 f"adopted @pipeline({loop.pipeline.ii}) from source")
    return None


@register_pass("optimize", requires=("region",), provides=("opt_report",),
               description="DFG cleanup passes to fixpoint")
def optimize_pass(ctx: CompilationContext) -> Optional[str]:
    """Run the standard optimizer pipeline on the region's DFG."""
    if not ctx.run_optimizer:
        return "skipped"
    ctx.opt_report = optimize(ctx.region)
    return None


@register_pass("schedule", requires=("region",), provides=("schedule",),
               description="timing-driven pass scheduling + binding")
def schedule_pass(ctx: CompilationContext) -> Optional[str]:
    """Schedule and bind the region (the paper's section IV/V engine)."""
    hit = _cached(ctx, "schedule")
    if isinstance(hit, _Infeasible):
        ctx.error("schedule", hit.message, hit.details)
        return "cached"
    if hit is not None:
        ctx.schedule = hit
        return "cached"
    try:
        ctx.schedule = schedule_region(
            ctx.region, ctx.library, ctx.clock_ps,
            pipeline=ctx.pipeline, options=ctx.options,
            carryover=ctx.scheduler_carryover, tracer=ctx.tracer)
    except ScheduleError as exc:
        # args[0] is the bare message; str(exc) would repeat the
        # diagnostics that go into the structured details
        ctx.error("schedule", str(exc.args[0]), tuple(exc.diagnostics))
        _store(ctx, "schedule",
               _Infeasible(str(exc.args[0]), tuple(exc.diagnostics)))
        return None
    _store(ctx, "schedule", ctx.schedule)
    return None


@register_pass("fold", requires=("schedule",), provides=("folded",),
               description="fold the iteration schedule onto the kernel")
def fold_pass(ctx: CompilationContext) -> Optional[str]:
    """Fold a pipelined schedule (step II); no-op when sequential."""
    if ctx.pipeline is None:
        return "skipped"
    hit = _cached(ctx, "fold")
    if hit is not None:
        ctx.folded = hit
        return "cached"
    folded = fold_schedule(ctx.schedule)
    problems = validate_folding(folded)
    if problems:
        ctx.error("fold",
                  f"{ctx.schedule.region.name}: folding validation failed",
                  tuple(problems))
        return None
    ctx.folded = folded
    _store(ctx, "fold", folded)
    return None


@register_pass("verilog", requires=("schedule",), provides=("rtl",),
               description="emit Verilog RTL")
def verilog_pass(ctx: CompilationContext) -> Optional[str]:
    """Generate RTL from the schedule (folded kernel when pipelined)."""
    hit = _cached(ctx, "verilog")
    if hit is not None:
        ctx.rtl = hit
        return "cached"
    ctx.rtl = generate_verilog(ctx.schedule, ctx.folded)
    _store(ctx, "verilog", ctx.rtl)
    return None


@register_pass("power", requires=("schedule",), provides=("power",),
               description="average-power estimation")
def power_pass(ctx: CompilationContext) -> Optional[str]:
    """Estimate average power at the full-rate operating point."""
    hit = _cached(ctx, "power")
    if hit is not None:
        ctx.power = hit
        return "cached"
    ctx.power = estimate_power(ctx.schedule)
    _store(ctx, "power", ctx.power)
    return None
