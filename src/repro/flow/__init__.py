"""The unified compilation pipeline.

``flow`` turns the repo's hand-wired frontend -> transforms -> schedule
-> fold -> RTL sequences into declarative, cache-aware, instrumented
compilations:

* :class:`CompilationContext` -- inputs, accumulated artifacts and
  structured per-stage diagnostics;
* :class:`FlowPass` / :class:`Flow` -- registered stages composed into
  named flows (``schedule``, ``pipeline``, ``verilog``, ``sweep``);
* :class:`FlowCache` -- content-addressed result cache keyed by a
  deterministic hash of (region structure, library, clock, options);
* :func:`run_sweep` / :func:`run_points` -- the sweep engine behind
  the Figure 10/11 experiments and the DSE layer's batched
  evaluations: three decision-identical backends (``context``,
  ``process``, ``thread``), cross-point carryover via
  :class:`SweepContext`, and explicit infeasible-point records.

The legacy entry points (``pipeline_loop``, ``sweep_microarchitectures``,
the CLI commands) are thin shims over this package.
"""

from repro.flow.cache import FlowCache, compilation_key, region_fingerprint
from repro.flow.context import CompilationContext, Diagnostic, PassTiming
from repro.flow.executor import (
    BACKENDS,
    PointResult,
    SweepResult,
    run_points,
    run_sweep,
    synthesize_design_point,
)
from repro.flow.sweepctx import SweepContext, SweepVariant
from repro.flow.flow import (
    FLOW_REGISTRY,
    Flow,
    get_flow,
    register_flow,
    run_flow,
)
from repro.flow.passes import (
    PASS_REGISTRY,
    FlowPass,
    get_pass,
    register_pass,
)

__all__ = [
    "BACKENDS",
    "CompilationContext",
    "Diagnostic",
    "FLOW_REGISTRY",
    "Flow",
    "FlowCache",
    "FlowPass",
    "PASS_REGISTRY",
    "PassTiming",
    "PointResult",
    "SweepContext",
    "SweepResult",
    "SweepVariant",
    "compilation_key",
    "get_flow",
    "get_pass",
    "region_fingerprint",
    "register_flow",
    "register_pass",
    "run_flow",
    "run_points",
    "run_sweep",
    "synthesize_design_point",
]
