"""Data flow graph.

Nodes are :class:`~repro.cdfg.ops.Operation` objects; edges carry the
consumer input-port index and a *distance*: 0 for intra-iteration
dependencies, >=1 for loop-carried dependencies (values produced ``distance``
iterations earlier).  Removing all edges with distance >= 1 must leave the
graph acyclic; cycles through distance-1 edges are exactly the strongly
connected components the pipeliner must keep within II states
(paper section V, step I.3a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.cdfg.ops import Operation, OpKind, arity_of
from repro.cdfg.predicates import Predicate


@dataclass(frozen=True, slots=True)
class DataEdge:
    """A data dependency: ``src`` output feeds ``dst`` input ``port``.

    ``order`` edges carry no value: they sequence two side effects on the
    same memory (RAW/WAR/WAW) and use ``port = -1``.  ``min_gap`` is the
    minimum number of states the consumer must start after the producer
    *completes* (1 for RAW/WAW -- the RAM write commits at the clock
    edge -- and 0 for WAR, where read-before-write within one state is
    the RAM's read-first semantics).  Data edges keep ``min_gap = 0``;
    their spacing rule is chaining-aware and lives in the timing engine.
    """

    src: int
    dst: int
    port: int
    distance: int = 0
    order: bool = False
    min_gap: int = 0


class DFGError(ValueError):
    """Raised on malformed data flow graphs."""


class DFG:
    """A mutable data flow graph with loop-carried edges.

    The DFG owns operation uids (allocated by :meth:`add_op`) and keeps
    adjacency both ways for O(degree) traversal.  All iteration orders are
    deterministic (insertion order / sorted uids), which keeps scheduling
    and benchmarks reproducible.
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._ops: Dict[int, Operation] = {}
        self._in_edges: Dict[int, List[DataEdge]] = {}
        self._out_edges: Dict[int, List[DataEdge]] = {}
        self._next_uid = 0
        #: bumped on every structural mutation; external caches key on it.
        self._version = 0
        # derived-structure caches, all invalidated by _mutated(); the
        # scheduler re-queries these per pass, so caching them is the
        # difference between O(passes * V log V) and O(V log V) total
        self._in_sorted: Dict[int, List[DataEdge]] = {}
        self._data_in_sorted: Dict[int, List[DataEdge]] = {}
        self._topo_cache: Optional[List[Operation]] = None
        self._sccs_cache: Optional[List[Set[int]]] = None
        self._fanin_masks_cache: Optional[Dict[int, int]] = None

    @property
    def version(self) -> int:
        """Monotonic structure version (bumped on every mutation)."""
        return self._version

    def _mutated(self) -> None:
        self._version += 1
        if self._in_sorted:
            self._in_sorted.clear()
        if self._data_in_sorted:
            self._data_in_sorted.clear()
        self._topo_cache = None
        self._sccs_cache = None
        self._fanin_masks_cache = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_op(
        self,
        kind: OpKind,
        width: int,
        name: str = "",
        predicate: Optional[Predicate] = None,
        payload: object = None,
        pinned_state: Optional[int] = None,
        pinned_resource: Optional[str] = None,
        is_exit_test: bool = False,
    ) -> Operation:
        """Create and register a new operation; returns it."""
        uid = self._next_uid
        self._next_uid += 1
        op = Operation(
            uid=uid,
            kind=kind,
            width=width,
            name=name,
            predicate=predicate if predicate is not None else Predicate.true(),
            payload=payload,
            pinned_state=pinned_state,
            pinned_resource=pinned_resource,
            is_exit_test=is_exit_test,
        )
        self._ops[uid] = op
        self._in_edges[uid] = []
        self._out_edges[uid] = []
        self._mutated()
        return op

    def connect(self, src: Operation, dst: Operation, port: int, distance: int = 0) -> DataEdge:
        """Add a data edge from ``src``'s output to ``dst``'s input ``port``."""
        if src.uid not in self._ops or dst.uid not in self._ops:
            raise DFGError("connect: operations must belong to this DFG")
        if distance < 0:
            raise DFGError("connect: distance must be non-negative")
        for edge in self._in_edges[dst.uid]:
            if edge.port == port and not edge.order:
                raise DFGError(
                    f"connect: input port {port} of {dst.name} already driven")
        edge = DataEdge(src.uid, dst.uid, port, distance)
        self._in_edges[dst.uid].append(edge)
        self._out_edges[src.uid].append(edge)
        self._mutated()
        return edge

    def connect_order(self, src: Operation, dst: Operation,
                      distance: int = 0, min_gap: int = 1) -> DataEdge:
        """Add a memory-dependence (ordering) edge from ``src`` to ``dst``.

        Duplicate ordering constraints collapse onto the strongest one
        already present (same endpoints and distance, largest gap).
        """
        if src.uid not in self._ops or dst.uid not in self._ops:
            raise DFGError("connect_order: operations must belong to this DFG")
        if distance < 0:
            raise DFGError("connect_order: distance must be non-negative")
        for edge in self._in_edges[dst.uid]:
            if (edge.order and edge.src == src.uid
                    and edge.distance == distance
                    and edge.min_gap >= min_gap):
                return edge
        edge = DataEdge(src.uid, dst.uid, -1, distance,
                        order=True, min_gap=min_gap)
        self._in_edges[dst.uid].append(edge)
        self._out_edges[src.uid].append(edge)
        self._mutated()
        return edge

    def disconnect(self, edge: DataEdge) -> None:
        """Remove a previously added edge."""
        self._in_edges[edge.dst].remove(edge)
        self._out_edges[edge.src].remove(edge)
        self._mutated()

    def replace_input(self, dst: Operation, port: int, new_src: Operation) -> None:
        """Re-drive ``dst``'s input ``port`` from ``new_src`` (same distance)."""
        old = self.in_edge(dst.uid, port)
        if old is None:
            raise DFGError(f"replace_input: port {port} of {dst.name} not driven")
        self.disconnect(old)
        self.connect(new_src, dst, port, old.distance)

    def remove_op(self, op: Operation) -> None:
        """Remove an operation; it must have no remaining edges."""
        if self._in_edges[op.uid] or self._out_edges[op.uid]:
            raise DFGError(f"remove_op: {op.name} still connected")
        del self._ops[op.uid]
        del self._in_edges[op.uid]
        del self._out_edges[op.uid]
        self._mutated()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def op(self, uid: int) -> Operation:
        """The operation with the given uid."""
        return self._ops[uid]

    def __contains__(self, uid: int) -> bool:
        return uid in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def ops(self) -> List[Operation]:
        """All operations in insertion order."""
        return list(self._ops.values())

    def ops_of_kind(self, *kinds: OpKind) -> List[Operation]:
        """All operations whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [op for op in self._ops.values() if op.kind in wanted]

    def in_edges(self, uid: int) -> List[DataEdge]:
        """Incoming edges of an operation, in port order.

        Includes ordering edges (port -1, sorted first); callers that
        collect operand *values* use :meth:`data_in_edges`.  The returned
        list is a cache shared between calls -- treat it as read-only.
        """
        edges = self._in_sorted.get(uid)
        if edges is None:
            edges = self._in_sorted[uid] = sorted(
                self._in_edges[uid], key=lambda e: e.port)
        return edges

    def data_in_edges(self, uid: int) -> List[DataEdge]:
        """Incoming value-carrying edges only, in port order.

        Returns a shared cached list -- treat it as read-only.
        """
        edges = self._data_in_sorted.get(uid)
        if edges is None:
            edges = self._data_in_sorted[uid] = sorted(
                (e for e in self._in_edges[uid] if not e.order),
                key=lambda e: e.port)
        return edges

    def order_in_edges(self, uid: int) -> List[DataEdge]:
        """Incoming memory-dependence edges only."""
        return [e for e in self._in_edges[uid] if e.order]

    def out_edges(self, uid: int) -> List[DataEdge]:
        """Outgoing edges of an operation."""
        return list(self._out_edges[uid])

    def in_edge(self, uid: int, port: int) -> Optional[DataEdge]:
        """The data edge driving input ``port`` of ``uid``, or None."""
        for edge in self._in_edges[uid]:
            if edge.port == port and not edge.order:
                return edge
        return None

    def operand(self, uid: int, port: int) -> Optional[Operation]:
        """The producer of input ``port`` of ``uid``, or None."""
        edge = self.in_edge(uid, port)
        return self._ops[edge.src] if edge is not None else None

    def preds(self, uid: int, include_carried: bool = True) -> List[Operation]:
        """Producers feeding ``uid`` (optionally skipping loop-carried edges)."""
        edges = self._in_edges[uid]
        return [self._ops[e.src] for e in edges
                if include_carried or e.distance == 0]

    def succs(self, uid: int, include_carried: bool = True) -> List[Operation]:
        """Consumers of ``uid``'s result (optionally skipping carried edges)."""
        edges = self._out_edges[uid]
        return [self._ops[e.dst] for e in edges
                if include_carried or e.distance == 0]

    def fanout_cone_size(self, uid: int) -> int:
        """Number of operations transitively reachable through distance-0 edges.

        Used by the scheduler priority function (paper section IV.B: "the
        size of the fanout cone of an operation").
        """
        seen: Set[int] = set()
        stack = [e.dst for e in self._out_edges[uid] if e.distance == 0]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(e.dst for e in self._out_edges[cur] if e.distance == 0)
        return len(seen)

    # ------------------------------------------------------------------
    # graph algorithms
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Operation]:
        """Operations sorted so every distance-0 producer precedes consumers.

        Predicate conditions count as producers too: a predicated
        operation's commit depends on its branch condition even though no
        data edge connects them.  Raises :class:`DFGError` if the
        resulting graph has a cycle.  The returned list is a cache shared
        between calls until the next mutation -- treat it as read-only.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indeg = {uid: 0 for uid in self._ops}
        pred_consumers: Dict[int, List[int]] = {}
        for uid, op in self._ops.items():
            indeg[uid] = sum(1 for e in self._in_edges[uid]
                             if e.distance == 0)
            data_srcs = {e.src for e in self._in_edges[uid]}
            for cond_uid in op.predicate.condition_uids():
                if cond_uid in self._ops and cond_uid != uid \
                        and cond_uid not in data_srcs:
                    indeg[uid] += 1
                    pred_consumers.setdefault(cond_uid, []).append(uid)
        queue = sorted(uid for uid, d in indeg.items() if d == 0)
        order: List[Operation] = []
        while queue:
            uid = queue.pop(0)
            order.append(self._ops[uid])
            for edge in self._out_edges[uid]:
                if edge.distance != 0:
                    continue
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    queue.append(edge.dst)
            for waiter in pred_consumers.get(uid, ()):
                indeg[waiter] -= 1
                if indeg[waiter] == 0:
                    queue.append(waiter)
        if len(order) != len(self._ops):
            raise DFGError("topological_order: intra-iteration cycle in DFG")
        self._topo_cache = order
        return order

    def sccs(self) -> List[Set[int]]:
        """Non-trivial strongly connected components (loop-carried cycles).

        The graph used includes *all* edges regardless of distance, so a
        cycle necessarily goes through at least one loop-carried edge.
        Returns components with more than one node, or with a self loop.
        These are the operation groups that must fit within II states when
        pipelining (paper section V, step I.3a).  Cached until the next
        mutation; treat the result as read-only.
        """
        if self._sccs_cache is not None:
            return self._sccs_cache
        graph = nx.DiGraph()
        graph.add_nodes_from(self._ops)
        for edges in self._out_edges.values():
            for edge in edges:
                graph.add_edge(edge.src, edge.dst)
        result: List[Set[int]] = []
        for comp in nx.strongly_connected_components(graph):
            if len(comp) > 1:
                result.append(set(comp))
            else:
                (only,) = comp
                if graph.has_edge(only, only):
                    result.append({only})
        result.sort(key=lambda comp: min(comp))
        self._sccs_cache = result
        return result

    def fanin_masks(self) -> Dict[int, int]:
        """Transitive distance-0 fanin closure per op, as uid bitmasks.

        ``masks[v]`` has bit ``u`` set iff ``u == v`` or ``u`` reaches
        ``v`` through distance-0 edges (including ordering edges, same as
        :meth:`topological_order`'s edge set).  Restraint cone analysis
        ORs a handful of these masks instead of BFS-walking the graph per
        failed pass.  Cached until the next mutation.
        """
        if self._fanin_masks_cache is not None:
            return self._fanin_masks_cache
        masks: Dict[int, int] = {}
        for op in self.topological_order():
            mask = 1 << op.uid
            for edge in self._in_edges[op.uid]:
                if edge.distance == 0:
                    mask |= masks.get(edge.src, 0)
            masks[op.uid] = mask
        self._fanin_masks_cache = masks
        return masks

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export to a networkx multigraph (for analysis / debugging)."""
        graph = nx.MultiDiGraph(name=self.name)
        for uid, op in self._ops.items():
            graph.add_node(uid, kind=op.kind.value, width=op.width, name=op.name)
        for edges in self._out_edges.values():
            for edge in edges:
                graph.add_edge(edge.src, edge.dst, port=edge.port,
                               distance=edge.distance)
        return graph

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check well-formedness; raises :class:`DFGError` on violations."""
        for uid, op in self._ops.items():
            need = arity_of(op.kind)
            edges = [e for e in self._in_edges[uid] if not e.order]
            if any(e.order for e in self._in_edges[uid]) \
                    and op.kind not in (OpKind.LOAD, OpKind.STORE):
                raise DFGError(
                    f"{op.name}: ordering edges may only enter memory ops")
            ports = sorted(e.port for e in edges)
            if need is not None and len(edges) != need:
                raise DFGError(
                    f"{op.name}: kind {op.kind.value} needs {need} inputs, "
                    f"has {len(edges)}")
            if ports != list(range(len(ports))):
                raise DFGError(f"{op.name}: input ports not dense: {ports}")
            if op.kind is OpKind.LOAD and len(edges) > 1:
                raise DFGError(f"{op.name}: load takes at most an address")
            if op.kind is OpKind.STORE and not 1 <= len(edges) <= 2:
                raise DFGError(
                    f"{op.name}: store takes (data) or (address, data)")
            if op.kind is OpKind.STORE:
                if any(not e.order for e in self._out_edges[uid]):
                    raise DFGError(
                        f"{op.name}: store produces no value")
            if op.kind is OpKind.LOOPMUX:
                init = self.in_edge(uid, 0)
                carried = self.in_edge(uid, 1)
                if init is None or carried is None:
                    raise DFGError(f"{op.name}: loopmux needs both inputs")
                if init.distance != 0 or carried.distance < 1:
                    raise DFGError(
                        f"{op.name}: loopmux port0 must be distance 0, "
                        f"port1 distance >= 1")
            elif op.kind is OpKind.WRITE:
                if self._out_edges[uid]:
                    raise DFGError(f"{op.name}: write must have no consumers")
            for edge in edges:
                if edge.distance >= 1 and op.kind is not OpKind.LOOPMUX:
                    raise DFGError(
                        f"{op.name}: loop-carried edges may only enter LOOPMUX")
            for edge in self._in_edges[uid]:
                if edge.order and edge.min_gap < 0:
                    raise DFGError(f"{op.name}: negative order-edge gap")
        # the distance-0 subgraph must be acyclic
        self.topological_order()

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Operation counts by kind plus totals (for reports / Fig. 9)."""
        counts: Dict[str, int] = {}
        for op in self._ops.values():
            counts[op.kind.value] = counts.get(op.kind.value, 0) + 1
        counts["total"] = len(self._ops)
        counts["edges"] = sum(len(v) for v in self._out_edges.values())
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DFG({self.name}, ops={len(self._ops)})"
