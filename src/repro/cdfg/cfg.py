"""Control flow graph.

The CFG produced by elaboration has nodes that either mark control
structure (fork/join from conditionals, loop head/tail) or correspond to
``wait()`` calls (state boundaries).  Edges are *control steps*: the
combinational work performed between two state boundaries within one clock
cycle.  DFG operations are associated with CFG edges (paper section II).

The micro-architecture transformer turns a loop of the CFG into a
:class:`~repro.cdfg.region.Region` for the scheduler by

1. balancing the latency of all fork/join branches (padding the shorter
   branch with empty states), and
2. applying full predicate conversion so the body becomes a straight-line
   sequence of control steps (paper section V, step I.1).

The value-merge part of predicate conversion (MUX insertion) is performed
during elaboration; the CFG-level transform recorded here flattens the
*structure* and re-homes operations onto the linear spine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cdfg.dfg import DFG, DFGError
from repro.cdfg.ops import Operation


class NodeKind(str, enum.Enum):
    """CFG node vocabulary."""

    ENTRY = "entry"
    EXIT = "exit"
    STATE = "state"        # a wait() boundary
    FORK = "fork"          # conditional split
    JOIN = "join"          # conditional merge
    LOOP_HEAD = "loop_head"
    LOOP_TAIL = "loop_tail"


@dataclass
class CFGNode:
    """A CFG node: control structure marker or state boundary."""

    uid: int
    kind: NodeKind
    label: str = ""


@dataclass
class CFGEdge:
    """A control step between two CFG nodes; carries DFG operations."""

    uid: int
    src: int
    dst: int
    ops: List[int] = field(default_factory=list)
    #: for fork out-edges: polarity of the branch condition (True/False).
    branch: Optional[bool] = None


class CFG:
    """A mutable control flow graph."""

    def __init__(self, name: str = "cfg") -> None:
        self.name = name
        self._nodes: Dict[int, CFGNode] = {}
        self._edges: Dict[int, CFGEdge] = {}
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}
        self._next_node = 0
        self._next_edge = 0
        self.entry: Optional[int] = None
        self.exit: Optional[int] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, kind: NodeKind, label: str = "") -> CFGNode:
        """Create a node of the given kind."""
        node = CFGNode(self._next_node, kind, label)
        self._next_node += 1
        self._nodes[node.uid] = node
        self._out[node.uid] = []
        self._in[node.uid] = []
        if kind is NodeKind.ENTRY:
            self.entry = node.uid
        elif kind is NodeKind.EXIT:
            self.exit = node.uid
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode,
                 branch: Optional[bool] = None) -> CFGEdge:
        """Create a control step from ``src`` to ``dst``."""
        edge = CFGEdge(self._next_edge, src.uid, dst.uid, branch=branch)
        self._next_edge += 1
        self._edges[edge.uid] = edge
        self._out[src.uid].append(edge.uid)
        self._in[dst.uid].append(edge.uid)
        return edge

    def attach_op(self, edge: CFGEdge, op: Operation) -> None:
        """Associate a DFG operation with a control step."""
        edge.ops.append(op.uid)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node(self, uid: int) -> CFGNode:
        """Node by uid."""
        return self._nodes[uid]

    def edge(self, uid: int) -> CFGEdge:
        """Edge by uid."""
        return self._edges[uid]

    @property
    def nodes(self) -> List[CFGNode]:
        """All nodes in creation order."""
        return list(self._nodes.values())

    @property
    def edges(self) -> List[CFGEdge]:
        """All edges in creation order."""
        return list(self._edges.values())

    def out_edges(self, uid: int) -> List[CFGEdge]:
        """Outgoing edges of a node."""
        return [self._edges[e] for e in self._out[uid]]

    def in_edges(self, uid: int) -> List[CFGEdge]:
        """Incoming edges of a node."""
        return [self._edges[e] for e in self._in[uid]]

    # ------------------------------------------------------------------
    # structure helpers
    # ------------------------------------------------------------------
    def branch_latencies(self, fork_uid: int) -> Dict[bool, int]:
        """States on each branch between a fork and its matching join.

        Branches must re-converge at a single JOIN node; the count is the
        number of STATE nodes passed through (the branch latency the
        paper balances before predicate conversion).
        """
        fork = self._nodes[fork_uid]
        if fork.kind is not NodeKind.FORK:
            raise DFGError(f"node {fork_uid} is not a fork")
        result: Dict[bool, int] = {}
        for edge in self.out_edges(fork_uid):
            states = 0
            cur = edge.dst
            guard = 0
            while self._nodes[cur].kind is not NodeKind.JOIN:
                if self._nodes[cur].kind is NodeKind.STATE:
                    states += 1
                outs = self.out_edges(cur)
                if len(outs) != 1:
                    raise DFGError(
                        "branch_latencies supports single-path branches only")
                cur = outs[0].dst
                guard += 1
                if guard > len(self._nodes):
                    raise DFGError("branch does not reach a join")
            result[bool(edge.branch)] = states
        return result

    def balance_fork(self, fork_uid: int) -> int:
        """Pad the shorter branch of a fork with empty states.

        Returns the number of states inserted.  After balancing, both
        branches have equal latency, the precondition for predicate
        conversion into a fixed-length straight line (paper step I.1).
        """
        lat = self.branch_latencies(fork_uid)
        if len(lat) != 2:
            raise DFGError("balance_fork requires a two-way fork")
        diff = lat[True] - lat[False]
        if diff == 0:
            return 0
        short = diff < 0
        # walk to the node just before the join on the short branch
        for edge in self.out_edges(fork_uid):
            if bool(edge.branch) is not short:
                continue
            cur_edge = edge
            while self._nodes[cur_edge.dst].kind is not NodeKind.JOIN:
                cur_edge = self.out_edges(cur_edge.dst)[0]
            join = self._nodes[cur_edge.dst]
            prev = self._nodes[cur_edge.src]
            # splice |diff| STATE nodes before the join
            self._detach_edge(cur_edge)
            last = prev
            for i in range(abs(diff)):
                pad = self.add_node(NodeKind.STATE, label=f"pad{i}")
                self.add_edge(last, pad,
                              branch=cur_edge.branch if last is prev else None)
                last = pad
            self.add_edge(last, join)
        return abs(diff)

    def _detach_edge(self, edge: CFGEdge) -> None:
        self._out[edge.src].remove(edge.uid)
        self._in[edge.dst].remove(edge.uid)
        del self._edges[edge.uid]

    def loop_spine(self, head_uid: int) -> List[CFGEdge]:
        """The straight-line control steps of a structured loop body.

        Valid after all forks inside the loop have been predicate
        converted (i.e. the body is a chain of STATE nodes from LOOP_HEAD
        to LOOP_TAIL).
        """
        head = self._nodes[head_uid]
        if head.kind is not NodeKind.LOOP_HEAD:
            raise DFGError(f"node {head_uid} is not a loop head")
        spine: List[CFGEdge] = []
        outs = [e for e in self.out_edges(head_uid)]
        if len(outs) != 1:
            raise DFGError("loop body must be linear; predicate-convert first")
        cur = outs[0]
        guard = 0
        while True:
            spine.append(cur)
            node = self._nodes[cur.dst]
            if node.kind is NodeKind.LOOP_TAIL:
                return spine
            if node.kind not in (NodeKind.STATE,):
                raise DFGError(
                    f"loop body not linear: hit {node.kind.value} node")
            outs = self.out_edges(node.uid)
            if len(outs) != 1:
                raise DFGError("loop body must be linear")
            cur = outs[0]
            guard += 1
            if guard > len(self._nodes) + 1:
                raise DFGError("loop body does not reach its tail")

    def validate(self) -> None:
        """Check basic well-formedness (degrees per node kind)."""
        for node in self._nodes.values():
            outs, ins = self._out[node.uid], self._in[node.uid]
            if node.kind is NodeKind.ENTRY and ins:
                raise DFGError("entry node has predecessors")
            if node.kind is NodeKind.EXIT and outs:
                raise DFGError("exit node has successors")
            if node.kind is NodeKind.FORK and len(outs) != 2:
                raise DFGError(f"fork {node.uid} must have 2 out-edges")
            if node.kind is NodeKind.JOIN and len(ins) < 2:
                raise DFGError(f"join {node.uid} must have >=2 in-edges")
