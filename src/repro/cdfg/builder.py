"""Fluent construction API for regions.

The builder mirrors how the paper's elaboration step produces a DFG from
SystemC: port reads, arithmetic on value handles, conditional selects and
loop-carried variables.  It is the programmatic twin of the textual
frontend (:mod:`repro.frontend`) and the main way tests and workloads
construct designs.

Example (the paper's Figure 1 do/while body)::

    b = RegionBuilder("example1", is_loop=True)
    mask = b.read("mask", 32)
    chrome = b.read("chrome", 32)
    delta = b.mul(mask, chrome, name="mul1_op")
    aver = b.loop_var("aver", b.const(0, 32))
    ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.cdfg.dfg import DFG, DFGError
from repro.cdfg.memory import MemoryDecl, emit_dependence_edges
from repro.cdfg.ops import Operation, OpKind
from repro.cdfg.predicates import Predicate
from repro.cdfg.region import Region

ValueLike = Union["Value", int]


@dataclass(frozen=True)
class Value:
    """Handle to an operation's result within a builder."""

    op: Operation

    @property
    def width(self) -> int:
        """Result width in bits."""
        return self.op.width


class LoopVar:
    """A loop-carried variable: a LOOPMUX awaiting its carried input."""

    def __init__(self, builder: "RegionBuilder", name: str, mux: Operation) -> None:
        self._builder = builder
        self.name = name
        self.mux = mux
        self.closed = False

    @property
    def value(self) -> Value:
        """The current-iteration value (output of the loop mux)."""
        return Value(self.mux)

    def set_next(self, value: ValueLike, distance: int = 1) -> None:
        """Provide the value carried into the next iteration."""
        if self.closed:
            raise DFGError(f"loop_var {self.name}: next value already set")
        resolved = self._builder._as_value(value, self.mux.width)
        self._builder.dfg.connect(resolved.op, self.mux, 1, distance=distance)
        self.closed = True


class MemoryHandle:
    """Handle to a declared on-chip array within a builder."""

    def __init__(self, builder: "RegionBuilder", decl: MemoryDecl) -> None:
        self._builder = builder
        self.decl = decl

    @property
    def name(self) -> str:
        """The memory's name (LOAD/STORE payload)."""
        return self.decl.name

    def __getitem__(self, addr) -> "Value":
        """Sugar for :meth:`RegionBuilder.load`: ``mem[addr]``."""
        return self._builder.load(self, addr)

    def __setitem__(self, addr, value) -> None:
        """Sugar for :meth:`RegionBuilder.store`: ``mem[addr] = v``."""
        self._builder.store(self, value, addr)


class RegionBuilder:
    """Builds a :class:`~repro.cdfg.region.Region` operation by operation."""

    def __init__(
        self,
        name: str,
        is_loop: bool = True,
        min_latency: int = 1,
        max_latency: int = 64,
    ) -> None:
        self.name = name
        self.dfg = DFG(name)
        self.is_loop = is_loop
        self.min_latency = min_latency
        self.max_latency = max_latency
        self._loop_vars: List[LoopVar] = []
        self._exit_op: Optional[Operation] = None
        self._trip_count: Optional[int] = None
        self._predicate_stack: List[Predicate] = [Predicate.true()]
        self._const_cache: Dict[Tuple[int, int], Operation] = {}
        self._memories: Dict[str, MemoryDecl] = {}
        #: per memory: (access op, dynamic?) in program order, for
        #: dependence-edge emission.
        self._mem_accesses: Dict[str, List[Tuple[Operation, bool]]] = {}
        #: per (channel, kind): stream accesses in program order; token
        #: indices (io_offset / io_stride) are assigned at build time.
        self._stream_ops: Dict[Tuple[str, OpKind], List[Operation]] = {}

    # ------------------------------------------------------------------
    # predicate scoping (if-conversion)
    # ------------------------------------------------------------------
    def _current_predicate(self) -> Predicate:
        return self._predicate_stack[-1]

    def under(self, cond: Value, polarity: bool = True) -> "_PredicateScope":
        """Context manager: operations built inside carry the predicate.

        This is the builder-level equivalent of predicate conversion
        (paper Fig. 4): branch bodies become predicated straight-line code.
        """
        pred = self._current_predicate().with_literal(cond.op.uid, polarity)
        return _PredicateScope(self, pred)

    def unconditional(self) -> "_PredicateScope":
        """Context manager suspending the current predicate.

        Used for side-effect-free operations hoisted out of branches
        (e.g. port sampling: the *use* of the value is predicated, the
        sampling itself is not).
        """
        return _PredicateScope(self, Predicate.true())

    # ------------------------------------------------------------------
    # value coercion
    # ------------------------------------------------------------------
    def _as_value(self, val: ValueLike, width: int) -> Value:
        if isinstance(val, Value):
            return val
        if isinstance(val, LoopVar):
            return val.value
        if isinstance(val, int):
            return self.const(val, width)
        raise TypeError(f"cannot coerce {val!r} to a DFG value")

    def _binary(
        self,
        kind: OpKind,
        a: ValueLike,
        b: ValueLike,
        width: Optional[int] = None,
        name: str = "",
    ) -> Value:
        wa = a.width if isinstance(a, Value) else (width or 32)
        va = self._as_value(a, wa)
        vb = self._as_value(b, va.width)
        out_width = width if width is not None else max(va.width, vb.width)
        if kind in (OpKind.LT, OpKind.GT, OpKind.LE, OpKind.GE,
                    OpKind.EQ, OpKind.NEQ):
            out_width = 1
        op = self.dfg.add_op(kind, out_width, name=name,
                             predicate=self._current_predicate())
        op.operand_widths = (va.width, vb.width)
        self.dfg.connect(va.op, op, 0)
        self.dfg.connect(vb.op, op, 1)
        return Value(op)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def const(self, value: int, width: int) -> Value:
        """An integer constant (cached per value/width)."""
        key = (value, width)
        cached = self._const_cache.get(key)
        if cached is None:
            cached = self.dfg.add_op(OpKind.CONST, width,
                                     name=f"const_{value}_{width}",
                                     payload=value)
            self._const_cache[key] = cached
        return Value(cached)

    def read(self, port: str, width: int, name: str = "",
             state: Optional[int] = 0) -> Value:
        """A port read, pinned by default to the first control step.

        The paper schedules I/O at the states given in the source; loop
        input sampling happens at iteration start, hence the default pin.
        """
        op = self.dfg.add_op(OpKind.READ, width,
                             name=name or f"{port}_read", payload=port,
                             predicate=self._current_predicate(),
                             pinned_state=state)
        return Value(op)

    def write(self, port: str, value: ValueLike, name: str = "",
              state: Optional[int] = None) -> Operation:
        """A port write; unpinned by default (data dependencies place it)."""
        val = self._as_value(value, 32)
        op = self.dfg.add_op(OpKind.WRITE, val.width,
                             name=name or f"{port}_write", payload=port,
                             predicate=self._current_predicate(),
                             pinned_state=state)
        self.dfg.connect(val.op, op, 0)
        return op

    def add(self, a: ValueLike, b: ValueLike, width: Optional[int] = None,
            name: str = "") -> Value:
        """Addition."""
        return self._binary(OpKind.ADD, a, b, width, name)

    def sub(self, a: ValueLike, b: ValueLike, width: Optional[int] = None,
            name: str = "") -> Value:
        """Subtraction."""
        return self._binary(OpKind.SUB, a, b, width, name)

    def mul(self, a: ValueLike, b: ValueLike, width: Optional[int] = None,
            name: str = "") -> Value:
        """Multiplication."""
        return self._binary(OpKind.MUL, a, b, width, name)

    def div(self, a: ValueLike, b: ValueLike, width: Optional[int] = None,
            name: str = "") -> Value:
        """Division."""
        return self._binary(OpKind.DIV, a, b, width, name)

    def mod(self, a: ValueLike, b: ValueLike, width: Optional[int] = None,
            name: str = "") -> Value:
        """Remainder (truncating, like DIV; binds to divider resources)."""
        return self._binary(OpKind.MOD, a, b, width, name)

    def neg(self, a: ValueLike, width: Optional[int] = None,
            name: str = "") -> Value:
        """Two's-complement negation (binds to adder resources)."""
        va = self._as_value(a, width or 32)
        op = self.dfg.add_op(OpKind.NEG, width or va.width, name=name,
                             predicate=self._current_predicate())
        op.operand_widths = (va.width,)
        self.dfg.connect(va.op, op, 0)
        return Value(op)

    def shl(self, a: ValueLike, b: ValueLike, width: Optional[int] = None,
            name: str = "") -> Value:
        """Logical shift left."""
        return self._binary(OpKind.SHL, a, b, width, name)

    def shr(self, a: ValueLike, b: ValueLike, width: Optional[int] = None,
            name: str = "") -> Value:
        """Logical shift right."""
        return self._binary(OpKind.SHR, a, b, width, name)

    def and_(self, a: ValueLike, b: ValueLike, name: str = "") -> Value:
        """Bitwise and."""
        return self._binary(OpKind.AND, a, b, None, name)

    def or_(self, a: ValueLike, b: ValueLike, name: str = "") -> Value:
        """Bitwise or."""
        return self._binary(OpKind.OR, a, b, None, name)

    def xor(self, a: ValueLike, b: ValueLike, name: str = "") -> Value:
        """Bitwise xor."""
        return self._binary(OpKind.XOR, a, b, None, name)

    def lt(self, a: ValueLike, b: ValueLike, name: str = "") -> Value:
        """Signed less-than (1-bit result)."""
        return self._binary(OpKind.LT, a, b, None, name)

    def gt(self, a: ValueLike, b: ValueLike, name: str = "") -> Value:
        """Signed greater-than (1-bit result)."""
        return self._binary(OpKind.GT, a, b, None, name)

    def le(self, a: ValueLike, b: ValueLike, name: str = "") -> Value:
        """Signed less-or-equal (1-bit result)."""
        return self._binary(OpKind.LE, a, b, None, name)

    def ge(self, a: ValueLike, b: ValueLike, name: str = "") -> Value:
        """Signed greater-or-equal (1-bit result)."""
        return self._binary(OpKind.GE, a, b, None, name)

    def eq(self, a: ValueLike, b: ValueLike, name: str = "") -> Value:
        """Equality (1-bit result)."""
        return self._binary(OpKind.EQ, a, b, None, name)

    def neq(self, a: ValueLike, b: ValueLike, name: str = "") -> Value:
        """Inequality (1-bit result)."""
        return self._binary(OpKind.NEQ, a, b, None, name)

    def mux(self, sel: ValueLike, if_true: ValueLike, if_false: ValueLike,
            name: str = "") -> Value:
        """2-way select; ``sel`` must be a 1-bit condition."""
        vs = self._as_value(sel, 1)
        vt = self._as_value(if_true, 32)
        vf = self._as_value(if_false, vt.width)
        op = self.dfg.add_op(OpKind.MUX, max(vt.width, vf.width), name=name,
                             predicate=self._current_predicate())
        self.dfg.connect(vs.op, op, 0)
        self.dfg.connect(vt.op, op, 1)
        self.dfg.connect(vf.op, op, 2)
        return Value(op)

    def slice_(self, a: ValueLike, hi: int, lo: int, name: str = "") -> Value:
        """Bit range ``a[hi:lo]`` (free wiring)."""
        va = self._as_value(a, 32)
        if not 0 <= lo <= hi < va.width:
            raise DFGError(f"slice [{hi}:{lo}] out of range for w{va.width}")
        op = self.dfg.add_op(OpKind.SLICE, hi - lo + 1, name=name,
                             payload=(hi, lo),
                             predicate=self._current_predicate())
        self.dfg.connect(va.op, op, 0)
        return Value(op)

    def zext(self, a: ValueLike, width: int, name: str = "") -> Value:
        """Zero extension (free wiring)."""
        va = self._as_value(a, width)
        op = self.dfg.add_op(OpKind.ZEXT, width, name=name,
                             predicate=self._current_predicate())
        self.dfg.connect(va.op, op, 0)
        return Value(op)

    def sext(self, a: ValueLike, width: int, name: str = "") -> Value:
        """Sign extension (free wiring)."""
        va = self._as_value(a, width)
        op = self.dfg.add_op(OpKind.SEXT, width, name=name,
                             predicate=self._current_predicate())
        self.dfg.connect(va.op, op, 0)
        return Value(op)

    def ashr(self, a: ValueLike, shift: Union[int, "Value"],
             name: str = "") -> Value:
        """Arithmetic shift right.

        A constant shift is free wiring (slice the high bits and
        sign-extend); a dynamic shift uses the sign-replication identity
        ``(a >>l n ^ t) - t`` with ``t = MIN_INT >>l n``.
        """
        va = self._as_value(a, 32)
        width = va.width
        if isinstance(shift, int):
            if shift <= 0:
                return va
            lo = min(shift, width - 1)
            return self.sext(self.slice_(va, width - 1, lo), width,
                             name=name)
        logical = self.shr(va, shift, width=width)
        sign = self.shr(self.const(-(1 << (width - 1)), width), shift,
                        width=width)
        return self.sub(self.xor(logical, sign), sign, name=name)

    def call(self, ip_name: str, args: List[ValueLike], width: int,
             name: str = "") -> Value:
        """Black-box IP invocation (possibly multi-cycle resource)."""
        op = self.dfg.add_op(OpKind.CALL, width, name=name or ip_name,
                             payload=ip_name,
                             predicate=self._current_predicate())
        for port, arg in enumerate(args):
            val = self._as_value(arg, width)
            self.dfg.connect(val.op, op, port)
        return Value(op)

    # ------------------------------------------------------------------
    # memories
    # ------------------------------------------------------------------
    def array(self, name: str, depth: int, width: int = 32,
              banks: int = 1, ports: int = 1,
              init: Optional[List[int]] = None) -> MemoryHandle:
        """Declare an on-chip array backed by RAM banks.

        ``banks`` is the cyclic banking factor (word ``a`` lives in bank
        ``a % banks``); ``ports`` selects single- (1) or dual-port (2)
        RAM macros.  At most ``ports`` accesses can hit one bank in one
        control step -- the port constraint the scheduler enforces.
        """
        if name in self._memories:
            raise DFGError(f"array {name!r} already declared")
        decl = MemoryDecl(name=name, depth=depth, width=width,
                          banks=banks, ports=ports,
                          init=tuple(init) if init is not None else None)
        self._memories[name] = decl
        self._mem_accesses[name] = []
        return MemoryHandle(self, decl)

    def _mem_decl(self, mem: Union[MemoryHandle, str]) -> MemoryDecl:
        name = mem.name if isinstance(mem, MemoryHandle) else mem
        decl = self._memories.get(name)
        if decl is None:
            raise DFGError(f"undeclared memory {name!r}")
        return decl

    def _record_access(self, decl: MemoryDecl, op: Operation,
                       dynamic: bool) -> None:
        """Remember the access; dependence edges are emitted at build."""
        self._mem_accesses[decl.name].append((op, dynamic))

    def load(self, mem: Union[MemoryHandle, str],
             addr: Optional[Union[ValueLike, int]] = None,
             offset: int = 0, stride: int = 0,
             name: str = "") -> Value:
        """Read one word of a declared array.

        ``addr`` may be a :class:`Value` (dynamic address, costs the
        address mux into the RAM), an ``int`` (constant address) or
        ``None`` -- then the address is affine in the iteration index:
        ``iteration * stride + offset``.
        """
        decl = self._mem_decl(mem)
        op = self.dfg.add_op(OpKind.LOAD, decl.width,
                             name=name or f"{decl.name}_load{offset}",
                             payload=decl.name,
                             predicate=self._current_predicate())
        dynamic = isinstance(addr, Value)
        if dynamic:
            self.dfg.connect(addr.op, op, 0)
        else:
            if addr is not None:
                offset, stride = int(addr), 0
            op.io_offset, op.io_stride = offset, stride
        self._record_access(decl, op, dynamic)
        return Value(op)

    def store(self, mem: Union[MemoryHandle, str], value: ValueLike,
              addr: Optional[Union[ValueLike, int]] = None,
              offset: int = 0, stride: int = 0,
              name: str = "") -> Operation:
        """Write one word of a declared array (addressing as in
        :meth:`load`; dynamic stores take (address, data) inputs)."""
        decl = self._mem_decl(mem)
        val = self._as_value(value, decl.width)
        op = self.dfg.add_op(OpKind.STORE, decl.width,
                             name=name or f"{decl.name}_store{offset}",
                             payload=decl.name,
                             predicate=self._current_predicate())
        dynamic = isinstance(addr, Value)
        if dynamic:
            self.dfg.connect(addr.op, op, 0)
            self.dfg.connect(val.op, op, 1)
        else:
            if addr is not None:
                offset, stride = int(addr), 0
            op.io_offset, op.io_stride = offset, stride
            self.dfg.connect(val.op, op, 0)
        self._record_access(decl, op, dynamic)
        return op

    # ------------------------------------------------------------------
    # streaming channels
    # ------------------------------------------------------------------
    def pop(self, channel: str, width: int, name: str = "",
            state: Optional[int] = None) -> Value:
        """Blocking read of one token from a FIFO channel.

        Within a single region a channel behaves like an input port with
        consumption semantics: each iteration pops the next token(s) in
        program order.  Composed into a :class:`repro.dataflow.Pipeline`,
        the channel becomes a FIFO between two stages and an empty FIFO
        stalls this whole stage.  Unpinned by default: the FIFO has one
        read port, so several pops of one channel must serialize and the
        scheduler needs the freedom to spread them over states.  Pops
        must be unconditional (predicate the *uses*, not the pop --
        conditional consumption would make FIFO contents data-dependent
        and is rejected at :meth:`build`).

        Example — a ReLU stage popping from ``c_in`` and pushing the
        rectified value to ``c_out``::

            >>> b = RegionBuilder("relu", is_loop=True)
            >>> x = b.pop("c_in", 32)
            >>> y = b.mux(b.lt(x, 0), b.const(0, 32), x, name="relu")
            >>> _ = b.push("c_out", y)
            >>> region = b.build()
            >>> region.input_channels
            ['c_in']
            >>> region.output_channels
            ['c_out']
        """
        op = self.dfg.add_op(OpKind.POP, width,
                             name=name or f"{channel}_pop",
                             payload=channel,
                             predicate=self._current_predicate(),
                             pinned_state=state)
        self._stream_ops.setdefault((channel, OpKind.POP), []).append(op)
        return Value(op)

    def push(self, channel: str, value: ValueLike, name: str = "",
             state: Optional[int] = None) -> Operation:
        """Blocking write of one token into a FIFO channel.

        The stage-level dual of :meth:`pop`: within one region it acts
        like an output port; composed into a pipeline, a full FIFO
        stalls this whole stage (back-pressure).  Unpinned by default so
        data dependencies place it, like :meth:`write`.

            >>> b = RegionBuilder("doubler", is_loop=True)
            >>> x = b.read("x", 32)
            >>> op = b.push("c", b.add(x, x))
            >>> op.kind.value
            'push'
        """
        val = self._as_value(value, 32)
        op = self.dfg.add_op(OpKind.PUSH, val.width,
                             name=name or f"{channel}_push",
                             payload=channel,
                             predicate=self._current_predicate(),
                             pinned_state=state)
        self.dfg.connect(val.op, op, 0)
        self._stream_ops.setdefault((channel, OpKind.PUSH), []).append(op)
        return op

    def loop_var(self, name: str, init: ValueLike) -> LoopVar:
        """A loop-carried variable; call ``set_next`` to close the cycle."""
        if not self.is_loop:
            raise DFGError("loop_var requires a loop region")
        vi = self._as_value(init, 32)
        mux = self.dfg.add_op(OpKind.LOOPMUX, vi.width, name=f"{name}_loopmux")
        self.dfg.connect(vi.op, mux, 0)
        var = LoopVar(self, name, mux)
        self._loop_vars.append(var)
        return var

    def stall_on(self, cond: ValueLike, name: str = "stall") -> Operation:
        """Mark a stalling condition (nested busy-wait loop, section V)."""
        vc = self._as_value(cond, 1)
        op = self.dfg.add_op(OpKind.STALL, 1, name=name)
        self.dfg.connect(vc.op, op, 0)
        return op

    def exit_when_false(self, cond: Value) -> None:
        """Do/while exit: the loop repeats while ``cond`` is true."""
        if not self.is_loop:
            raise DFGError("exit condition requires a loop region")
        cond.op.is_exit_test = True
        self._exit_op = cond.op

    def set_trip_count(self, count: int) -> None:
        """Declare a known iteration count (counted loop)."""
        self._trip_count = count

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> Region:
        """Produce the region; validates invariants by default.

        Memory-dependence (RAW/WAR/WAW) ordering edges are emitted here,
        once all accesses are known.
        """
        for var in self._loop_vars:
            if not var.closed:
                raise DFGError(f"loop_var {var.name}: next value never set")
        for name, accesses in self._mem_accesses.items():
            emit_dependence_edges(self.dfg, self._memories[name],
                                  accesses, self.is_loop)
        # token indexing: iteration k's i-th access of a channel touches
        # token k * stride + i, so the simulators can replay the exact
        # FIFO order (several pops/pushes per iteration are legal).
        for (_channel, _kind), ops in self._stream_ops.items():
            for index, op in enumerate(ops):
                op.io_offset, op.io_stride = index, len(ops)
        region = Region(
            name=self.name,
            dfg=self.dfg,
            is_loop=self.is_loop,
            min_latency=self.min_latency,
            max_latency=self.max_latency,
            exit_op_uid=self._exit_op.uid if self._exit_op else None,
            trip_count=self._trip_count,
            memories=dict(self._memories),
        )
        if validate:
            region.validate()
        return region


class _PredicateScope:
    """Context manager pushing a predicate for builder calls inside it."""

    def __init__(self, builder: RegionBuilder, predicate: Predicate) -> None:
        self._builder = builder
        self._predicate = predicate

    def __enter__(self) -> None:
        self._builder._predicate_stack.append(self._predicate)

    def __exit__(self, *exc_info: object) -> None:
        self._builder._predicate_stack.pop()
