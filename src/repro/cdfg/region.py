"""Schedulable regions.

A :class:`Region` is the unit the pass scheduler operates on: a straight
line sequence of control steps produced by the micro-architecture
transformer after latency balancing and predicate conversion (paper
section V, step I.1).  A region is either a loop body (possibly pipelined)
or an acyclic block.

Latency (the number of states in the region body) is chosen by the
scheduler within ``[min_latency, max_latency]`` -- the designer-specified
bounds of the paper's examples ("1 <= latency <= 3 for the do-while
loop").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cdfg.dfg import DFG, DFGError
from repro.cdfg.memory import MemoryDecl, has_dynamic_address
from repro.cdfg.ops import OpKind


@dataclass
class Region:
    """A linearized loop body or basic block, ready for scheduling.

    Attributes
    ----------
    name:
        Report name.
    dfg:
        The region's data flow graph.  Loop-carried values enter through
        ``LOOPMUX`` operations with distance-1 back edges.
    is_loop:
        Whether the region iterates (enables pipelining and makes
        loop-carried edges meaningful).
    min_latency / max_latency:
        Designer bounds on the number of states of one iteration.
    exit_op_uid:
        For loops: uid of the boolean operation whose *false* value exits
        the loop (do/while semantics), or None for counted/infinite loops.
    trip_count:
        Known iteration count for counted loops (used by simulators and
        unrolling), or None.
    """

    name: str
    dfg: DFG
    is_loop: bool = True
    min_latency: int = 1
    max_latency: int = 64
    exit_op_uid: Optional[int] = None
    trip_count: Optional[int] = None
    metadata: Dict[str, object] = field(default_factory=dict)
    #: on-chip arrays accessed by LOAD/STORE operations, by name.
    memories: Dict[str, MemoryDecl] = field(default_factory=dict)

    def validate(self) -> None:
        """Check region-level invariants on top of DFG validation."""
        self.dfg.validate()
        if self.min_latency < 1:
            raise DFGError(f"{self.name}: min_latency must be >= 1")
        if self.max_latency < self.min_latency:
            raise DFGError(f"{self.name}: max_latency < min_latency")
        if self.exit_op_uid is not None:
            if self.exit_op_uid not in self.dfg:
                raise DFGError(f"{self.name}: exit op not in DFG")
            if not self.is_loop:
                raise DFGError(f"{self.name}: exit op on non-loop region")
        if not self.is_loop:
            carried = [
                op for op in self.dfg.ops
                if any(e.distance >= 1 for e in self.dfg.in_edges(op.uid))
            ]
            if carried:
                raise DFGError(
                    f"{self.name}: loop-carried edges in non-loop region: "
                    f"{[op.name for op in carried]}")
        for name in set(self.input_channels) & set(self.output_channels):
            raise DFGError(
                f"{self.name}: channel {name!r} both popped and pushed "
                f"inside one region (a FIFO joins two distinct stages)")
        for op in self.pops:
            # a conditionally-consuming pop would make FIFO contents
            # depend on data (the simulators and the RTL could not
            # agree on token positions); pushes may be predicated --
            # they gate the commit, not a consumption
            if not op.predicate.is_true:
                raise DFGError(
                    f"{self.name}: {op.name} pops under a predicate "
                    f"(conditional consumption is not supported; pop "
                    f"unconditionally and predicate the uses)")
        for ops in (self.pops, self.pushes):
            widths: Dict[str, int] = {}
            for op in ops:
                prev = widths.setdefault(op.payload, op.width)
                if op.width != prev:
                    raise DFGError(
                        f"{self.name}: channel {op.payload!r} accessed at "
                        f"widths {prev} and {op.width}")
        for op in self.memory_ops:
            decl = self.memories.get(op.payload)
            if decl is None:
                raise DFGError(
                    f"{self.name}: {op.name} accesses undeclared memory "
                    f"{op.payload!r}")
            if op.width != decl.width:
                raise DFGError(
                    f"{self.name}: {op.name} width {op.width} != memory "
                    f"{decl.name} width {decl.width}")

    @property
    def reads(self) -> List:
        """Port-read operations, in insertion order."""
        return self.dfg.ops_of_kind(OpKind.READ)

    @property
    def writes(self) -> List:
        """Port-write operations, in insertion order."""
        return self.dfg.ops_of_kind(OpKind.WRITE)

    @property
    def input_ports(self) -> List[str]:
        """Names of all ports read by this region (deduplicated, ordered)."""
        seen: List[str] = []
        for op in self.reads:
            if op.payload not in seen:
                seen.append(op.payload)
        return seen

    @property
    def output_ports(self) -> List[str]:
        """Names of all ports written by this region."""
        seen: List[str] = []
        for op in self.writes:
            if op.payload not in seen:
                seen.append(op.payload)
        return seen

    @property
    def pops(self) -> List:
        """Channel-pop operations, in insertion order."""
        return self.dfg.ops_of_kind(OpKind.POP)

    @property
    def pushes(self) -> List:
        """Channel-push operations, in insertion order."""
        return self.dfg.ops_of_kind(OpKind.PUSH)

    @property
    def input_channels(self) -> List[str]:
        """Names of all channels popped by this region (deduplicated)."""
        seen: List[str] = []
        for op in self.pops:
            if op.payload not in seen:
                seen.append(op.payload)
        return seen

    @property
    def output_channels(self) -> List[str]:
        """Names of all channels pushed by this region (deduplicated)."""
        seen: List[str] = []
        for op in self.pushes:
            if op.payload not in seen:
                seen.append(op.payload)
        return seen

    def channel_accesses(self, name: str, kind: OpKind) -> List:
        """POP (or PUSH) operations touching one channel, in order."""
        return [op for op in self.dfg.ops_of_kind(kind)
                if op.payload == name]

    @property
    def memory_ops(self) -> List:
        """LOAD/STORE operations, in insertion order."""
        return self.dfg.ops_of_kind(OpKind.LOAD, OpKind.STORE)

    def memory_accesses(self, name: str) -> List:
        """Accesses touching one declared memory, in insertion order."""
        return [op for op in self.memory_ops if op.payload == name]

    def access_is_dynamic(self, op) -> bool:
        """Whether an access takes its address from a DFG value."""
        return has_dynamic_address(op, len(self.dfg.data_in_edges(op.uid)))

    def schedulable_ops(self) -> List:
        """Operations that occupy a control step (everything non-free)."""
        return [op for op in self.dfg.ops if not op.is_free]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "loop" if self.is_loop else "block"
        return f"Region({self.name}, {tag}, ops={len(self.dfg)})"


@dataclass(frozen=True)
class PipelineSpec:
    """Designer pipelining directive for a loop region.

    Following the paper's section V requirements: the initiation interval
    (II) **must** be supplied by the designer; the latency interval (LI)
    is chosen by the tool within the region's latency bounds, starting
    from ``II + 1`` (the minimum for pipelined execution).
    """

    ii: int

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise ValueError("PipelineSpec: II must be >= 1")

    def stages(self, latency: int) -> int:
        """Number of pipeline stages for a given latency interval."""
        return -(-latency // self.ii)

    def equivalent(self, state_a: int, state_b: int) -> bool:
        """Whether two 0-based states fold onto the same kernel state."""
        return state_a % self.ii == state_b % self.ii
