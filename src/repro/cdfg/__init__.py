"""Control/data flow graph intermediate representation.

The CDFG is the substrate every other subsystem operates on: the frontend
elaborates source into it, the optimizer rewrites it, and the scheduler
binds its operations to control steps and resources (paper section II).
"""

from repro.cdfg.builder import LoopVar, MemoryHandle, RegionBuilder, Value
from repro.cdfg.cfg import CFG, CFGEdge, CFGNode, NodeKind
from repro.cdfg.dfg import DFG, DataEdge, DFGError
from repro.cdfg.memory import MemoryDecl, min_conflict_distance, static_bank
from repro.cdfg.ops import (
    CONDITION_KINDS,
    FREE_KINDS,
    IO_KINDS,
    MEMORY_KINDS,
    MUX_KINDS,
    Operation,
    OpKind,
    arity_of,
)
from repro.cdfg.predicates import Predicate, mutually_exclusive
from repro.cdfg.region import PipelineSpec, Region

__all__ = [
    "CFG",
    "CFGEdge",
    "CFGNode",
    "CONDITION_KINDS",
    "DFG",
    "DFGError",
    "DataEdge",
    "FREE_KINDS",
    "IO_KINDS",
    "LoopVar",
    "MEMORY_KINDS",
    "MUX_KINDS",
    "MemoryDecl",
    "MemoryHandle",
    "NodeKind",
    "Operation",
    "OpKind",
    "PipelineSpec",
    "Predicate",
    "Region",
    "RegionBuilder",
    "Value",
    "arity_of",
    "min_conflict_distance",
    "mutually_exclusive",
    "static_bank",
]
