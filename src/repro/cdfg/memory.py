"""Memory declarations and static access analysis.

A :class:`MemoryDecl` describes one on-chip array of a region: its depth,
word width, cyclic banking factor and RAM ports per bank.  Accesses are
``LOAD``/``STORE`` operations whose address is either *dynamic* (a DFG
value feeding the access) or *affine* in the iteration index
(``address = iteration * stride + offset``, mirroring the ``io_offset`` /
``io_stride`` streaming convention of port reads).

Banking is cyclic: word ``a`` lives in bank ``a % banks`` at local
address ``a // banks``.  An affine access has a *static* bank exactly
when its stride is a multiple of the banking factor -- then every
iteration hits bank ``offset % banks`` -- which is what lets the
scheduler relax port conflicts across banks and the relaxation driver
fix port starvation by raising the banking factor.

The conflict analysis here drives the RAW/WAR/WAW memory-dependence
edges the builder emits: two accesses conflict when their address sets
may intersect (same iteration, or ``distance`` iterations apart).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdfg.ops import MEMORY_KINDS, Operation, OpKind


class MemoryError_(ValueError):
    """Raised on malformed memory declarations or accesses."""


@dataclass(frozen=True)
class MemoryDecl:
    """One on-chip array of a region.

    Attributes
    ----------
    name:
        The memory's name; ``LOAD``/``STORE`` payloads reference it.
    depth:
        Number of words.
    width:
        Word width in bits.
    banks:
        Cyclic banking factor: word ``a`` lives in bank ``a % banks``.
        Each bank is a separate RAM macro with its own ports.
    ports:
        RAM ports per bank (1 = single-port, 2 = dual-port); at most
        ``ports`` accesses may hit one bank in one control step.
    init:
        Optional initial contents (padded with zeros to ``depth``).
    """

    name: str
    depth: int
    width: int
    banks: int = 1
    ports: int = 1
    init: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise MemoryError_(f"{self.name}: depth must be >= 1")
        if self.width < 1:
            raise MemoryError_(f"{self.name}: width must be >= 1")
        if self.banks < 1 or self.banks > self.depth:
            raise MemoryError_(
                f"{self.name}: banks must be in [1, depth]")
        if self.ports not in (1, 2):
            raise MemoryError_(
                f"{self.name}: ports must be 1 (single) or 2 (dual)")
        if self.init is not None and len(self.init) > self.depth:
            raise MemoryError_(
                f"{self.name}: {len(self.init)} init words exceed depth "
                f"{self.depth}")

    @property
    def bank_depth(self) -> int:
        """Words per bank (the last bank may be partially used)."""
        return -(-self.depth // self.banks)

    @property
    def bits(self) -> int:
        """Total storage bits."""
        return self.depth * self.width

    def with_banks(self, banks: int) -> "MemoryDecl":
        """A copy at a different banking factor."""
        return replace(self, banks=banks)

    def contents(self) -> Tuple[int, ...]:
        """Initial contents padded to ``depth`` words."""
        init = self.init or ()
        return tuple(init) + (0,) * (self.depth - len(init))


# ----------------------------------------------------------------------
# access shape queries
# ----------------------------------------------------------------------
def is_memory_op(op: Operation) -> bool:
    """Whether ``op`` is a memory access."""
    return op.kind in MEMORY_KINDS


def has_dynamic_address(op: Operation, n_data_edges: int) -> bool:
    """Whether the access takes its address from a DFG value.

    ``n_data_edges`` is the number of *data* (non-order) input edges:
    a dynamic LOAD has 1 (the address), an affine LOAD 0; a dynamic
    STORE has 2 (address at port 0, data at port 1), an affine STORE 1.
    """
    if op.kind is OpKind.LOAD:
        return n_data_edges >= 1
    return n_data_edges >= 2


def static_bank(op: Operation, banks: int,
                dynamic: bool) -> Optional[int]:
    """The bank an access provably always hits, or None.

    Affine accesses (``address = iteration * stride + offset``) have a
    static bank exactly when ``stride % banks == 0``; dynamic accesses
    never do (they may address any bank).
    """
    if dynamic:
        return None
    if banks == 1:
        return 0
    if op.io_stride % banks != 0:
        return None
    return op.io_offset % banks


# ----------------------------------------------------------------------
# conflict analysis (drives dependence-edge emission)
# ----------------------------------------------------------------------
def _min_affine_distance(stride_p: int, offset_p: int,
                         stride_c: int, offset_c: int,
                         lo: int) -> Optional[int]:
    """Smallest ``d >= lo`` where the *consumer* access of iteration ``k``
    may touch the address the *producer* access used at iteration
    ``k - d``, i.e. ``(k - d) * stride_p + offset_p ==
    k * stride_c + offset_c`` for some iteration ``k``.

    Unequal strides are handled conservatively (the address sequences
    sweep across each other, so a collision is possible at any
    distance).  An ordering edge at the smallest conflicting distance
    dominates the constraints of every larger distance, so one edge per
    direction suffices.
    """
    if stride_p != stride_c:
        return lo
    stride = stride_p
    if stride == 0:
        return lo if offset_p == offset_c else None
    delta = offset_p - offset_c
    if delta % stride != 0:
        return None
    d = delta // stride
    return d if d >= lo else None


def min_conflict_distance(
    producer: Operation, dyn_p: bool,
    consumer: Operation, dyn_c: bool,
    banks: int,
    lo: int = 0,
) -> Optional[int]:
    """Smallest iteration distance ``>= lo`` at which two same-memory
    accesses may alias, or None when provably disjoint.

    The *producer* is the access that must complete first; the
    dependence reads "``consumer`` of iteration ``k`` touches what
    ``producer`` touched at iteration ``k - d``".  Accesses with
    distinct static banks never alias -- they live in different RAM
    macros -- which is the banking relaxation of the dependence edges.
    """
    bank_p = static_bank(producer, banks, dyn_p)
    bank_c = static_bank(consumer, banks, dyn_c)
    if bank_p is not None and bank_c is not None and bank_p != bank_c:
        return None
    if dyn_p or dyn_c:
        # a dynamic address may alias anything in the memory
        return lo
    return _min_affine_distance(
        producer.io_stride, producer.io_offset,
        consumer.io_stride, consumer.io_offset, lo)


def emit_dependence_edges(
    dfg,
    decl: MemoryDecl,
    accesses: Sequence[Tuple[Operation, bool]],
    is_loop: bool,
) -> int:
    """Emit RAW/WAR/WAW ordering edges among one memory's accesses.

    ``accesses`` is the program-order list of ``(op, dynamic?)`` pairs.
    Edges are relaxed across banks (accesses with distinct static banks
    live in different RAM macros and never alias) and carry the minimum
    state gap of their dependence class: 1 for RAW/WAW (the RAM write
    commits at the clock edge), 0 for WAR (read-first semantics allow
    read and write in one state).  For loops, a later access of an
    *earlier* iteration may also alias an earlier one, producing carried
    edges back onto it.  Returns the number of edges emitted.
    """
    count = 0
    for i, (later, later_dyn) in enumerate(accesses):
        later_store = later.kind is OpKind.STORE
        for earlier, earlier_dyn in accesses[:i]:
            earlier_store = earlier.kind is OpKind.STORE
            if not (earlier_store or later_store):
                continue  # load-load pairs never conflict
            gap_fwd = 1 if earlier_store else 0  # RAW/WAW vs WAR
            d = min_conflict_distance(earlier, earlier_dyn,
                                      later, later_dyn, decl.banks, lo=0)
            if d is not None and (d == 0 or is_loop):
                dfg.connect_order(earlier, later, distance=d,
                                  min_gap=gap_fwd)
                count += 1
            if is_loop:
                gap_bwd = 1 if later_store else 0
                d = min_conflict_distance(later, later_dyn,
                                          earlier, earlier_dyn,
                                          decl.banks, lo=1)
                if d is not None:
                    dfg.connect_order(later, earlier, distance=d,
                                      min_gap=gap_bwd)
                    count += 1
    return count


def reemit_dependence_edges(region) -> int:
    """Drop and re-derive every ordering edge of a region's DFG.

    Used after structural transforms (unrolling) that change access
    shapes: affine offsets/strides move, so the conflict set -- and the
    banking relaxation -- must be recomputed from scratch.  Program
    order is operation insertion order.
    """
    dfg = region.dfg
    for op in dfg.ops:
        for edge in list(dfg.in_edges(op.uid)):
            if edge.order:
                dfg.disconnect(edge)
    by_mem: Dict[str, List[Tuple[Operation, bool]]] = {}
    for op in dfg.ops:
        if op.kind in MEMORY_KINDS:
            dynamic = has_dynamic_address(
                op, len(dfg.data_in_edges(op.uid)))
            by_mem.setdefault(op.payload, []).append((op, dynamic))
    count = 0
    for name, accesses in by_mem.items():
        count += emit_dependence_edges(
            dfg, region.memories[name], accesses, region.is_loop)
    return count
