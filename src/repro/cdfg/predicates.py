"""Execution predicates produced by if-conversion.

After predicate conversion (paper Fig. 4) every operation that originated
inside a conditional branch carries a *predicate*: the condition under
which its result is architecturally used.  We represent a predicate as a
conjunction of literals, each literal being ``(condition_op_uid, polarity)``
-- the operation producing the branch condition and whether the branch is
the taken (``True``) or fall-through (``False``) side.

The empty conjunction is the always-true predicate.

Predicates are used in two places:

* **Resource sharing** -- two operations whose predicates are mutually
  exclusive can share one resource instance even on the same (or an
  equivalent, when pipelining) control step (paper section V, step I.2).
* **Allocation lower bounds** -- mutually exclusive operations do not both
  contribute to resource demand in the same interval (paper section IV.A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

Literal = Tuple[int, bool]


@dataclass(frozen=True)
class Predicate:
    """A conjunction of branch-condition literals.

    ``literals`` maps condition-op uids to the required polarity.  A
    predicate with no literals is always true (the operation executes
    unconditionally).
    """

    literals: FrozenSet[Literal] = field(default_factory=frozenset)

    @staticmethod
    def true() -> "Predicate":
        """The always-true predicate."""
        return _TRUE

    @staticmethod
    def of(*literals: Literal) -> "Predicate":
        """Build a predicate from ``(cond_uid, polarity)`` literals."""
        return Predicate(frozenset(literals))

    @property
    def is_true(self) -> bool:
        """Whether this predicate is the unconditional (empty) one."""
        return not self.literals

    def and_(self, other: "Predicate") -> "Predicate":
        """Conjunction with another predicate.

        Raises ``ValueError`` when the conjunction is unsatisfiable, i.e.
        the two predicates require opposite polarities for one condition.
        """
        merged = set(self.literals) | set(other.literals)
        conds = [uid for uid, _pol in merged]
        if len(conds) != len(set(conds)):
            raise ValueError("contradictory predicate conjunction")
        return Predicate(frozenset(merged))

    def with_literal(self, cond_uid: int, polarity: bool) -> "Predicate":
        """This predicate strengthened with one more literal."""
        return self.and_(Predicate.of((cond_uid, polarity)))

    def condition_uids(self) -> FrozenSet[int]:
        """The uids of all condition operations referenced."""
        return frozenset(uid for uid, _pol in self.literals)

    def disjoint(self, other: "Predicate") -> bool:
        """Whether the two predicates can never hold simultaneously.

        True iff some condition appears in both with opposite polarity --
        the structural mutual-exclusivity test used for branch-born
        operations (the only one decidable without value analysis).
        Internally contradictory predicates (never satisfiable) are
        disjoint with everything, including themselves.
        """
        for uid, pol in self.literals:
            if (uid, not pol) in self.literals \
                    or (uid, not pol) in other.literals:
                return True
        for uid, pol in other.literals:
            if (uid, not pol) in other.literals:
                return True
        return False

    def implies(self, other: "Predicate") -> bool:
        """Whether this predicate is at least as strong as ``other``."""
        return self.literals >= other.literals

    def __str__(self) -> str:
        if self.is_true:
            return "1"
        parts = []
        for uid, pol in sorted(self.literals):
            parts.append(f"p{uid}" if pol else f"!p{uid}")
        return "&".join(parts)


_TRUE = Predicate(frozenset())


def mutually_exclusive(predicates: Iterable[Predicate]) -> bool:
    """Whether *all* pairs in ``predicates`` are mutually exclusive."""
    preds = list(predicates)
    for i, a in enumerate(preds):
        for b in preds[i + 1:]:
            if not a.disjoint(b):
                return False
    return True
