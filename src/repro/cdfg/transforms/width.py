"""Operand width bookkeeping (the paper's "operand width reduction").

After folding and CSE, recorded operand widths may be stale (wider than
the producers that now feed the operation).  Tightening them lets the
allocator pick narrower resource buckets -- directly reducing area, which
is exactly why the paper's optimizer runs width reduction before
scheduling.
"""

from __future__ import annotations

from repro.cdfg.ops import OpKind
from repro.cdfg.region import Region


def tighten_operand_widths(region: Region) -> int:
    """Shrink ``operand_widths`` to the actual producer widths.

    Constants additionally shrink to the bits their value needs, so a
    multiply by a small constant maps to a narrower multiplier bucket.
    """
    dfg = region.dfg
    changes = 0
    for op in dfg.ops:
        edges = dfg.in_edges(op.uid)
        if not edges or not op.operand_widths:
            continue
        new_widths = []
        for edge in edges:
            producer = dfg.op(edge.src)
            width = producer.width
            if producer.kind is OpKind.CONST:
                needed = max(int(producer.payload).bit_length() + 1, 2)
                width = min(width, needed)
            new_widths.append(width)
        new_tuple = tuple(new_widths[:len(op.operand_widths)])
        if len(new_tuple) < len(op.operand_widths):
            new_tuple = new_tuple + op.operand_widths[len(new_tuple):]
        narrowed = tuple(min(old, new)
                         for old, new in zip(op.operand_widths, new_tuple))
        if narrowed != op.operand_widths:
            op.operand_widths = narrowed
            changes += 1
    return changes
