"""Constant folding and propagation."""

from __future__ import annotations

from repro.cdfg.dfg import DFG
from repro.cdfg.ops import OpKind
from repro.cdfg.region import Region
from repro.sim.evalops import evaluate_op


def constant_fold(region: Region) -> int:
    """Replace operations with all-constant inputs by constants.

    Exit tests, I/O and loop muxes are never folded (they carry control
    or interface semantics even when their data inputs are constant).
    """
    dfg = region.dfg
    changes = 0
    for op in dfg.topological_order():
        if op.is_free and op.kind is not OpKind.CONST:
            pass  # slices/zext of constants fold too
        elif op.is_io or op.is_mux or op.is_exit_test \
                or op.kind in (OpKind.CONST, OpKind.STALL, OpKind.CALL):
            continue
        in_edges = dfg.in_edges(op.uid)
        if not in_edges:
            continue
        producers = [dfg.op(e.src) for e in in_edges]
        if any(p.kind is not OpKind.CONST for p in producers):
            continue
        if any(e.distance != 0 for e in in_edges):
            continue
        value = evaluate_op(op, [p.payload for p in producers])
        folded = dfg.add_op(OpKind.CONST, op.width,
                            name=f"fold_{op.name}", payload=value)
        for edge in list(dfg.out_edges(op.uid)):
            dfg.disconnect(edge)
            dfg.connect(folded, dfg.op(edge.dst), edge.port, edge.distance)
        for edge in list(in_edges):
            dfg.disconnect(edge)
        dfg.remove_op(op)
        changes += 1
    return changes
