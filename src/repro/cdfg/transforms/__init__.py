"""Optimizer passes over regions (paper section II: "the goal of the
optimizer is to simplify the DFG and CFG as much as possible, by applying
standard compiler optimizations").

Passes mutate the region's DFG and return the number of changes; the
:func:`optimize` pipeline iterates them to a fixpoint.  Loop unrolling
lives here too -- it is the paper's micro-architecture transformer's most
common rewrite.
"""

from repro.cdfg.transforms.constant_fold import constant_fold
from repro.cdfg.transforms.copy_prop import copy_propagate
from repro.cdfg.transforms.cse import common_subexpressions
from repro.cdfg.transforms.dead_code import dead_code_elimination
from repro.cdfg.transforms.strength import strength_reduction
from repro.cdfg.transforms.unroll import unroll_loop
from repro.cdfg.transforms.width import tighten_operand_widths

#: default pass order; constant folding first exposes the others.
DEFAULT_PASSES = (
    constant_fold,
    strength_reduction,
    copy_propagate,
    common_subexpressions,
    dead_code_elimination,
    tighten_operand_widths,
)


def optimize(region, passes=DEFAULT_PASSES, max_rounds: int = 8):
    """Run passes to fixpoint; returns {pass name: total changes}."""
    totals = {p.__name__: 0 for p in passes}
    for _round in range(max_rounds):
        round_changes = 0
        for pass_fn in passes:
            n = pass_fn(region)
            totals[pass_fn.__name__] += n
            round_changes += n
        if round_changes == 0:
            break
    region.dfg.validate()
    return totals


__all__ = [
    "DEFAULT_PASSES",
    "common_subexpressions",
    "constant_fold",
    "copy_propagate",
    "dead_code_elimination",
    "optimize",
    "strength_reduction",
    "tighten_operand_widths",
    "unroll_loop",
]
