"""Operation strength reduction."""

from __future__ import annotations

from typing import Optional

from repro.cdfg.dfg import DFG
from repro.cdfg.ops import OpKind
from repro.cdfg.region import Region


def _const_value(dfg: DFG, uid: int) -> Optional[int]:
    op = dfg.op(uid)
    return op.payload if op.kind is OpKind.CONST else None


def strength_reduction(region: Region) -> int:
    """Rewrite expensive operations into cheaper equivalents.

    * ``x * 2^k`` -> ``x << k`` (a shifter instead of a multiplier)
    * ``x * 1`` / ``x + 0`` / ``x - 0`` -> plain move
    * ``x * 0`` -> constant zero
    """
    dfg = region.dfg
    changes = 0
    for op in list(dfg.ops):
        if op.uid not in dfg or op.is_exit_test:
            continue
        if op.kind not in (OpKind.MUL, OpKind.ADD, OpKind.SUB):
            continue
        edges = dfg.in_edges(op.uid)
        if len(edges) != 2 or any(e.distance for e in edges):
            continue
        lhs, rhs = edges
        const_r = _const_value(dfg, rhs.src)
        const_l = _const_value(dfg, lhs.src)
        # normalize: constant on the right for commutative kinds
        if const_r is None and const_l is not None \
                and op.kind in (OpKind.MUL, OpKind.ADD):
            lhs, rhs = rhs, lhs
            const_r = const_l
        if const_r is None:
            continue
        replacement = None
        if op.kind is OpKind.MUL and const_r == 0:
            replacement = dfg.add_op(OpKind.CONST, op.width,
                                     name=f"zero_{op.name}", payload=0)
        elif op.kind is OpKind.MUL and const_r == 1:
            replacement = _move(dfg, op, lhs.src)
        elif op.kind is OpKind.MUL and const_r > 1 \
                and const_r & (const_r - 1) == 0:
            shift = dfg.add_op(OpKind.SHL, op.width,
                               name=f"{op.name}_shl")
            shift.operand_widths = (dfg.op(lhs.src).width, 8)
            shift.predicate = op.predicate
            amount = dfg.add_op(OpKind.CONST, 8,
                                name=f"shamt_{op.name}",
                                payload=const_r.bit_length() - 1)
            dfg.connect(dfg.op(lhs.src), shift, 0)
            dfg.connect(amount, shift, 1)
            replacement = shift
        elif op.kind in (OpKind.ADD, OpKind.SUB) and const_r == 0:
            replacement = _move(dfg, op, lhs.src)
        if replacement is None:
            continue
        for edge in list(dfg.out_edges(op.uid)):
            dfg.disconnect(edge)
            dfg.connect(replacement, dfg.op(edge.dst), edge.port,
                        edge.distance)
        for edge in list(dfg.in_edges(op.uid)):
            dfg.disconnect(edge)
        dfg.remove_op(op)
        changes += 1
    return changes


def _move(dfg: DFG, op, src_uid: int):
    move = dfg.add_op(OpKind.MOVE, op.width, name=f"{op.name}_mv")
    move.operand_widths = (dfg.op(src_uid).width,)
    dfg.connect(dfg.op(src_uid), move, 0)
    return move
