"""Common subexpression elimination."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cdfg.ops import COMMUTATIVE_KINDS, OpKind
from repro.cdfg.region import Region


def _value_key(dfg, op) -> Tuple:
    operands = tuple((e.src, e.distance) for e in dfg.in_edges(op.uid))
    if op.kind in COMMUTATIVE_KINDS:
        operands = tuple(sorted(operands))
    payload = op.payload if isinstance(op.payload, (int, str, tuple)) else None
    return (op.kind, op.width, payload, operands)


def common_subexpressions(region: Region) -> int:
    """Merge operations computing the same value.

    Predicates are irrelevant to the *value* (they gate commit, not
    computation), so operations from different branches merge; the
    survivor becomes unconditional when the merged predicates differ,
    which is always semantics-preserving after if-conversion.
    """
    dfg = region.dfg
    seen: Dict[Tuple, int] = {}
    changes = 0
    for op in dfg.topological_order():
        if (op.is_io or op.is_memory
                or op.kind in (OpKind.CONST, OpKind.LOOPMUX,
                               OpKind.STALL, OpKind.CALL)
                or op.is_exit_test or op.pinned_state is not None):
            continue
        key = _value_key(dfg, op)
        survivor_uid = seen.get(key)
        if survivor_uid is None:
            seen[key] = op.uid
            continue
        survivor = dfg.op(survivor_uid)
        if survivor.predicate != op.predicate:
            from repro.cdfg.predicates import Predicate
            survivor.predicate = Predicate.true()
        for edge in list(dfg.out_edges(op.uid)):
            dfg.disconnect(edge)
            dfg.connect(survivor, dfg.op(edge.dst), edge.port, edge.distance)
        for edge in list(dfg.in_edges(op.uid)):
            dfg.disconnect(edge)
        # remap predicates referencing the merged condition op
        if op.is_condition:
            from repro.cdfg.predicates import Predicate
            for other in dfg.ops:
                if op.uid in other.predicate.condition_uids():
                    other.predicate = Predicate(frozenset(
                        (survivor_uid if uid == op.uid else uid, pol)
                        for uid, pol in other.predicate.literals))
        dfg.remove_op(op)
        changes += 1
    return changes
