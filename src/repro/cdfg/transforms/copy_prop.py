"""Copy propagation: eliminate MOVE operations."""

from __future__ import annotations

from repro.cdfg.region import Region
from repro.cdfg.ops import OpKind


def copy_propagate(region: Region) -> int:
    """Rewire consumers of every MOVE directly to the moved value."""
    dfg = region.dfg
    changes = 0
    for op in list(dfg.ops):
        if op.kind is not OpKind.MOVE or op.uid not in dfg:
            continue
        src_edge = dfg.in_edge(op.uid, 0)
        if src_edge is None:
            continue
        source = dfg.op(src_edge.src)
        for edge in list(dfg.out_edges(op.uid)):
            dfg.disconnect(edge)
            dfg.connect(source, dfg.op(edge.dst), edge.port,
                        edge.distance + src_edge.distance)
        dfg.disconnect(src_edge)
        dfg.remove_op(op)
        changes += 1
    return changes
