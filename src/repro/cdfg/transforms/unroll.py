"""Loop unrolling (the micro-architecture transformer's main rewrite).

Unrolling by ``factor`` replicates the loop body so one region iteration
performs ``factor`` source iterations.  Loop-carried variables chain
through the copies (only the last copy feeds the loop mux back), port
reads consume ``factor`` stream samples per iteration, and for do/while
loops every copy after the first is predicated on the earlier copies'
continue tests so early exits commit exactly the right writes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cdfg.dfg import DFG, DFGError
from repro.cdfg.memory import reemit_dependence_edges
from repro.cdfg.ops import Operation, OpKind
from repro.cdfg.predicates import Predicate
from repro.cdfg.region import Region


def unroll_loop(region: Region, factor: int) -> Region:
    """Return a new region executing ``factor`` iterations per pass."""
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    if not region.is_loop:
        raise DFGError(f"{region.name}: cannot unroll a non-loop region")
    if factor == 1:
        return region
    if region.trip_count is not None and region.trip_count % factor:
        raise DFGError(
            f"{region.name}: trip count {region.trip_count} not divisible "
            f"by unroll factor {factor}")
    src = region.dfg
    for op in src.ops:
        for edge in src.in_edges(op.uid):
            if edge.distance > 1:
                raise DFGError(
                    "unroll supports distance-1 carried edges only")

    out = DFG(f"{region.name}_x{factor}")
    order = src.topological_order()
    loopmuxes = [op for op in order if op.kind is OpKind.LOOPMUX]
    #: per copy: original uid -> cloned operation
    clones: List[Dict[int, Operation]] = [dict() for _ in range(factor)]
    new_loopmux: Dict[int, Operation] = {}
    exit_tests: List[Operation] = []

    def cumulative_predicate(j: int, original: Predicate) -> Predicate:
        literals = set()
        for cond_uid, polarity in original.literals:
            mapped = clones[j].get(cond_uid)
            if mapped is None:
                raise DFGError("predicate condition precedes its use")
            literals.add((mapped.uid, polarity))
        for test in exit_tests[:j]:
            literals.add((test.uid, True))
        return Predicate(frozenset(literals))

    for j in range(factor):
        for op in order:
            if op.kind is OpKind.LOOPMUX:
                if j == 0:
                    cloned = out.add_op(
                        OpKind.LOOPMUX, op.width, name=op.name)
                    new_loopmux[op.uid] = cloned
                    clones[0][op.uid] = cloned
                else:
                    # copy j reads what copy j-1 carried
                    carried_edge = src.in_edge(op.uid, 1)
                    clones[j][op.uid] = clones[j - 1][carried_edge.src]
                continue
            cloned = out.add_op(
                op.kind, op.width,
                name=f"{op.name}_u{j}" if j else op.name,
                payload=op.payload,
                pinned_state=op.pinned_state if j == 0 else None,
                pinned_resource=op.pinned_resource,
            )
            cloned.operand_widths = op.operand_widths
            cloned.io_offset = op.io_offset + j * op.io_stride
            cloned.io_stride = op.io_stride * factor
            cloned.predicate = cumulative_predicate(j, op.predicate)
            clones[j][op.uid] = cloned
            for edge in src.in_edges(op.uid):
                if edge.distance or edge.order:
                    continue  # ordering edges are re-derived below
                producer = clones[j][edge.src]
                out.connect(producer, cloned, edge.port)
            if op.is_exit_test:
                exit_tests.append(cloned)

    # wire the surviving loop muxes: init from copy 0, carry from the last
    for op in loopmuxes:
        init_edge = src.in_edge(op.uid, 0)
        carried_edge = src.in_edge(op.uid, 1)
        mux = new_loopmux[op.uid]
        out.connect(clones[0][init_edge.src], mux, 0)
        out.connect(clones[factor - 1][carried_edge.src], mux, 1,
                    distance=1)

    exit_uid: Optional[int] = None
    if region.exit_op_uid is not None:
        if len(exit_tests) == 1:
            exit_tests[0].is_exit_test = True
            exit_uid = exit_tests[0].uid
        else:
            combined = exit_tests[0]
            for test in exit_tests[1:]:
                conj = out.add_op(OpKind.AND, 1, name="unroll_continue")
                conj.operand_widths = (1, 1)
                out.connect(combined, conj, 0)
                out.connect(test, conj, 1)
                combined = conj
            combined.is_exit_test = True
            exit_uid = combined.uid

    unrolled = Region(
        name=out.name,
        dfg=out,
        is_loop=True,
        min_latency=region.min_latency,
        max_latency=region.max_latency,
        exit_op_uid=exit_uid,
        trip_count=(region.trip_count // factor
                    if region.trip_count is not None else None),
        metadata=dict(region.metadata, unrolled=factor),
        memories=dict(region.memories),
    )
    if unrolled.memories:
        # affine access shapes changed (offset + j*stride, stride*factor):
        # the memory-dependence edges must be re-derived for the copies
        reemit_dependence_edges(unrolled)
    unrolled.validate()
    return unrolled
