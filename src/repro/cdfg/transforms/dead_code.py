"""Dead code elimination."""

from __future__ import annotations

from typing import Set

from repro.cdfg.ops import OpKind
from repro.cdfg.region import Region


def dead_code_elimination(region: Region) -> int:
    """Remove operations that cannot affect outputs or control.

    Roots: port writes, memory stores, the exit test, stall markers and
    user-pinned operations.  Everything not reachable backwards from a
    root (through any edge, including loop-carried and memory-ordering
    ones) is removed.
    """
    dfg = region.dfg
    live: Set[int] = set()
    stack = [
        op.uid for op in dfg.ops
        if op.kind in (OpKind.WRITE, OpKind.STALL, OpKind.STORE)
        or op.is_exit_test or op.pinned_resource is not None
    ]
    while stack:
        uid = stack.pop()
        if uid in live:
            continue
        live.add(uid)
        for edge in dfg.in_edges(uid):
            stack.append(edge.src)
        # predicates keep their condition ops alive
        for cond_uid in dfg.op(uid).predicate.condition_uids():
            stack.append(cond_uid)
    changes = 0
    for op in list(dfg.ops):
        if op.uid in live:
            continue
        if op.kind is OpKind.READ and op.pinned_state is not None:
            # pinned reads are interface behaviour; never drop them
            continue
        for edge in list(dfg.in_edges(op.uid)) + list(dfg.out_edges(op.uid)):
            dfg.disconnect(edge)
        dfg.remove_op(op)
        changes += 1
    return changes
