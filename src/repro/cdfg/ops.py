"""Operation model for the data flow graph.

Every DFG node is an :class:`Operation` with a kind, a result bit width and
(after predicate conversion) an execution predicate.  Operation kinds map
onto resource types from the technology library during binding; the mapping
is many-to-one (e.g. ``ADD``/``SUB`` both bind to adder resources).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.cdfg.predicates import Predicate


class OpKind(str, enum.Enum):
    """The operation vocabulary of the CDFG."""

    # arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    # shifts / bitwise
    SHL = "shl"
    SHR = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    # comparisons
    LT = "lt"
    GT = "gt"
    LE = "le"
    GE = "ge"
    EQ = "eq"
    NEQ = "neq"
    # selection
    MUX = "mux"          # inputs: (sel, if_true, if_false)
    LOOPMUX = "loopmux"  # inputs: (init, carried); carried edge has distance 1
    # structure
    CONST = "const"      # payload: the constant value
    READ = "read"        # payload: port name
    WRITE = "write"      # payload: port name; single data input
    SLICE = "slice"      # payload: (hi, lo) bit range
    CONCAT = "concat"
    ZEXT = "zext"
    SEXT = "sext"
    MOVE = "move"        # plain copy (eliminated by copy propagation)
    CALL = "call"        # black-box IP block; payload: ip name
    STALL = "stall"      # stalling-loop marker; single boolean input
    # memory (payload: memory name; see repro.cdfg.memory)
    LOAD = "load"        # inputs: (address) when dynamic, () when affine
    STORE = "store"      # inputs: (address, data) dynamic, (data) affine
    # streaming (payload: channel name; see repro.dataflow)
    POP = "pop"          # blocking FIFO read; no inputs
    PUSH = "push"        # blocking FIFO write; single data input


#: kinds that are pure wiring / constants and never occupy a datapath
#: resource nor contribute delay by themselves.
FREE_KINDS = frozenset({
    OpKind.CONST, OpKind.SLICE, OpKind.CONCAT, OpKind.ZEXT, OpKind.SEXT,
    OpKind.MOVE,
})

#: kinds realized by multiplexer resources (they *are* the sharing muxes of
#: the paper's timing model, so no extra register-sharing mux is added
#: after them).
MUX_KINDS = frozenset({OpKind.MUX, OpKind.LOOPMUX})

#: kinds that access a streaming FIFO channel between dataflow stages;
#: like port I/O they occupy no functional unit, but they additionally
#: carry blocking semantics: a POP on an empty channel (or a PUSH on a
#: full one) stalls the whole stage until the FIFO can serve it.
STREAM_KINDS = frozenset({OpKind.POP, OpKind.PUSH})

#: kinds that interact with the environment; they are pinned to control
#: steps as written in the source (paper section IV: "I/O operations are
#: scheduled at the very same states where they are specified").
#: Channel POP/PUSH are I/O at the single-stage level: the value enters
#: or leaves the region through a named port (the FIFO's data bus).
IO_KINDS = frozenset({OpKind.READ, OpKind.WRITE}) | STREAM_KINDS

#: kinds that access a declared on-chip memory; they bind to RAM bank
#: ports (at most P accesses per bank per state) instead of functional
#: units, and order among themselves via memory-dependence edges.
MEMORY_KINDS = frozenset({OpKind.LOAD, OpKind.STORE})

#: kinds whose result is a single-bit flag usable as a branch condition.
CONDITION_KINDS = frozenset({
    OpKind.LT, OpKind.GT, OpKind.LE, OpKind.GE, OpKind.EQ, OpKind.NEQ,
    OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT,
})

#: commutative kinds: operand order is irrelevant for value semantics and
#: for CSE hashing.
COMMUTATIVE_KINDS = frozenset({
    OpKind.ADD, OpKind.MUL, OpKind.AND, OpKind.OR, OpKind.XOR,
    OpKind.EQ, OpKind.NEQ,
})

#: arity per kind (None = variable).
_ARITY = {
    OpKind.ADD: 2, OpKind.SUB: 2, OpKind.MUL: 2, OpKind.DIV: 2,
    OpKind.MOD: 2, OpKind.NEG: 1, OpKind.SHL: 2, OpKind.SHR: 2,
    OpKind.AND: 2, OpKind.OR: 2, OpKind.XOR: 2, OpKind.NOT: 1,
    OpKind.LT: 2, OpKind.GT: 2, OpKind.LE: 2, OpKind.GE: 2,
    OpKind.EQ: 2, OpKind.NEQ: 2,
    OpKind.MUX: 3, OpKind.LOOPMUX: 2,
    OpKind.CONST: 0, OpKind.READ: 0, OpKind.WRITE: 1,
    OpKind.SLICE: 1, OpKind.CONCAT: None, OpKind.ZEXT: 1, OpKind.SEXT: 1,
    OpKind.MOVE: 1, OpKind.CALL: None, OpKind.STALL: 1,
    # 0/1 data inputs (affine address) or 1/2 (dynamic address)
    OpKind.LOAD: None, OpKind.STORE: None,
    OpKind.POP: 0, OpKind.PUSH: 1,
}


def arity_of(kind: OpKind) -> Optional[int]:
    """Number of data inputs required by ``kind`` (None = variable)."""
    return _ARITY[kind]


@dataclass
class Operation:
    """A single DFG operation.

    Attributes
    ----------
    uid:
        Unique id within the owning DFG; stable across transforms.
    kind:
        The :class:`OpKind`.
    width:
        Result bit width.
    name:
        Human-readable name used in reports (``mul1_op`` etc.).
    predicate:
        Execution predicate from if-conversion; ``Predicate.true()`` when
        unconditional.
    pinned_state:
        0-based control step the user (or I/O semantics) pinned this
        operation to, or ``None``.
    pinned_resource:
        Resource-type name the user pinned this operation to, or ``None``.
    is_exit_test:
        Whether this boolean operation controls loop exit (do/while test).
    payload:
        Kind-specific extra data (constant value, port name, slice range).
    source_loc:
        Optional ``(line, column)`` of the originating source construct.
    """

    uid: int
    kind: OpKind
    width: int
    name: str = ""
    predicate: Predicate = field(default_factory=Predicate.true)
    pinned_state: Optional[int] = None
    pinned_resource: Optional[str] = None
    is_exit_test: bool = False
    payload: Any = None
    source_loc: Optional[Tuple[int, int]] = None
    #: operand widths; comparisons have 1-bit results but are sized by
    #: their operands (a 32-bit ``gt`` needs a 32-bit comparator).
    operand_widths: Tuple[int, ...] = ()
    #: stream indexing for READ operations: sample consumed per iteration
    #: is ``iteration * io_stride + io_offset`` (unrolled loops consume
    #: several samples per iteration).  LOAD/STORE reuse the same fields
    #: for affine addressing: ``address = iteration * io_stride +
    #: io_offset`` when the access has no dynamic address input.
    io_offset: int = 0
    io_stride: int = 1

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"operation {self.name or self.uid}: width must be positive")
        if not self.name:
            self.name = f"{self.kind.value}{self.uid}"

    @property
    def resource_width(self) -> int:
        """Width the implementing resource must support."""
        return max(self.width, *self.operand_widths) if self.operand_widths \
            else self.width

    @property
    def is_free(self) -> bool:
        """Whether the operation is pure wiring (no resource, no delay)."""
        return self.kind in FREE_KINDS

    @property
    def is_io(self) -> bool:
        """Whether the operation is a port read or write."""
        return self.kind in IO_KINDS

    @property
    def is_memory(self) -> bool:
        """Whether the operation accesses a declared memory."""
        return self.kind in MEMORY_KINDS

    @property
    def is_stream(self) -> bool:
        """Whether the operation accesses a streaming FIFO channel."""
        return self.kind in STREAM_KINDS

    @property
    def is_mux(self) -> bool:
        """Whether the operation binds to a multiplexer resource."""
        return self.kind in MUX_KINDS

    @property
    def is_condition(self) -> bool:
        """Whether the result is a flag usable as a predicate condition."""
        return self.kind in CONDITION_KINDS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Operation({self.name}, {self.kind.value}, w{self.width})"

    def __hash__(self) -> int:
        return hash(self.uid)
