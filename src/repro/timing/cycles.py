"""False combinational cycle avoidance (paper Figure 6).

Resource sharing creates *static* wiring: when operation ``x = a + b`` in
state s1 chains into ``y = x + c`` on another adder, the first adder's
output is wired (through muxes) to the second adder's input.  If, in a
different state, the second adder's output chains into the first one, the
wiring forms a combinational cycle even though no reachable control state
sensitizes both paths at once.

The paper's choice (section IV.B.3): rather than emitting false-path
constraints that handcuff downstream logic synthesis, *avoid bindings that
create combinational cycles*, spending extra resources if needed.  This
module maintains the static resource-connection graph and answers "would
this binding close a cycle?" queries.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple


class CombCycleGuard:
    """Static connection graph between datapath nodes.

    Nodes are resource-instance names for shared resources and synthetic
    per-operation names for dedicated logic (muxes, unbound operations);
    only shared instances can close false cycles, but dedicated nodes may
    sit on the path of one.
    """

    def __init__(self) -> None:
        self._succs: Dict[str, Set[str]] = {}
        #: reference counts so bindings can be retracted
        self._edges: Dict[Tuple[str, str], int] = {}
        #: memoized single-edge ``would_cycle`` verdicts, cleared on any
        #: graph mutation.  A verdict is a pure function of the current
        #: graph, and failing walks never mutate the graph -- so when a
        #: doomed operation retries the same candidate chain at each
        #: successive state, the identical reachability question repeats
        #: thousands of times between commits.
        self._memo: Dict[Tuple[str, str], bool] = {}

    def _reachable(self, src: str, dst: str) -> bool:
        if src == dst:
            return True
        succs = self._succs
        first = succs.get(src)
        if not first:
            return False
        seen: Set[str] = {src}
        stack = list(first)
        while stack:
            cur = stack.pop()
            if cur == dst:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            nxt = succs.get(cur)
            if nxt:
                stack.extend(nxt)
        return False

    def would_cycle(self, new_edges: List[Tuple[str, str]]) -> bool:
        """Whether adding all ``new_edges`` would create a directed cycle.

        Self edges (chaining two ops on one instance within a state is
        impossible anyway) are reported as cycles.
        """
        # fast paths: no chaining at all, or a single new connection
        # (no compound-edge interaction to simulate)
        if not new_edges:
            return False
        if len(new_edges) == 1:
            edge = new_edges[0]
            hit = self._memo.get(edge)
            if hit is not None:
                return hit
            src, dst = edge
            verdict = self._memo[edge] = self._reachable(dst, src)
            return verdict
        # check against existing graph plus the earlier new edges
        added: List[Tuple[str, str]] = []
        try:
            for src, dst in new_edges:
                if self._reachable(dst, src):
                    return True
                self._add(src, dst)
                added.append((src, dst))
            return False
        finally:
            for src, dst in added:
                self._remove(src, dst)

    def _add(self, src: str, dst: str) -> None:
        if self._memo:
            self._memo.clear()
        self._succs.setdefault(src, set()).add(dst)
        self._edges[(src, dst)] = self._edges.get((src, dst), 0) + 1

    def _remove(self, src: str, dst: str) -> None:
        if self._memo:
            self._memo.clear()
        count = self._edges.get((src, dst), 0) - 1
        if count <= 0:
            self._edges.pop((src, dst), None)
            if src in self._succs:
                self._succs[src].discard(dst)
        else:
            self._edges[(src, dst)] = count

    def commit(self, new_edges: List[Tuple[str, str]]) -> None:
        """Add connection edges for an accepted binding."""
        for src, dst in new_edges:
            self._add(src, dst)

    def retract(self, edges: List[Tuple[str, str]]) -> None:
        """Remove previously committed edges (backtracking)."""
        for src, dst in edges:
            self._remove(src, dst)

    def edge_count(self) -> int:
        """Number of distinct connection edges currently present."""
        return len(self._edges)
