"""Deprecated import path for the unified timing engine.

The incremental datapath netlist and the sign-off STA used to carry two
hand-maintained copies of the delay arithmetic; both live in
:mod:`repro.timing.engine` since PR 2, and every in-tree caller now
imports from there.  Importing this module works but warns; it will be
removed once downstream code has migrated.
"""

import warnings

from repro.timing.engine import (  # noqa: F401  (re-exports)
    BoundOp,
    CandidateTiming,
    CommitResult,
    TimingEngine,
)

warnings.warn(
    "repro.timing.netlist is deprecated: import BoundOp/CandidateTiming/"
    "CommitResult/TimingEngine (a.k.a. DatapathNetlist) from "
    "repro.timing.engine instead",
    DeprecationWarning,
    stacklevel=2,
)

#: historical name of :class:`~repro.timing.engine.TimingEngine`.
DatapathNetlist = TimingEngine

__all__ = ["BoundOp", "CandidateTiming", "CommitResult", "DatapathNetlist"]
