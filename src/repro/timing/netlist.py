"""Backward-compatible alias of the unified timing engine.

The incremental datapath netlist and the sign-off STA used to carry two
hand-maintained copies of the delay arithmetic; both now live in
:mod:`repro.timing.engine`.  This module keeps the historical import
path (``DatapathNetlist``) working for schedulers, baselines and tests.
"""

from repro.timing.engine import (
    BoundOp,
    CandidateTiming,
    CommitResult,
    TimingEngine,
)

#: historical name of :class:`~repro.timing.engine.TimingEngine`.
DatapathNetlist = TimingEngine

__all__ = ["BoundOp", "CandidateTiming", "CommitResult", "DatapathNetlist"]
