"""Incremental datapath netlist with timing queries.

The pass scheduler "builds a netlist for the part of the CDFG that has
been scheduled so far, and performs timing queries on the netlist" (paper
section IV.B.1).  This module is that netlist: it records accepted
bindings, the sources feeding every resource-instance input port (to size
sharing multiplexers), and cached arrival times, and it evaluates
candidate bindings with the paper's delay model::

    FF clk->q + [input sharing mux] + resource delay (chained)
              + [register sharing mux at the FF input] + FF setup

which reproduces the paper's worked examples: 1230 ps for a multiply,
1580 ps for a mul+add chain, 1800 ps (slack -200 at Tclk 1600) once a
comparison is chained on top.

Sharing muxes are *anticipatory*: an input mux is modeled as soon as more
compatible operations exist than allocated instances, even before a second
operation actually shares the port ("resource mul is instantiated with
muxes at its inputs; this improves timing estimation when resources are
shared", section IV.B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cdfg.dfg import DFG
from repro.cdfg.ops import Operation, OpKind
from repro.tech.library import Library
from repro.tech.resources import ResourceInstance


@dataclass(frozen=True)
class CandidateTiming:
    """Outcome of evaluating one candidate binding."""

    ok: bool
    out_arrival_ps: float
    capture_ps: float
    slack_ps: float
    cycles: int = 1
    reason: str = ""


@dataclass
class BoundOp:
    """A committed binding of an operation."""

    op: Operation
    inst: Optional[ResourceInstance]  # None for free/IO/stall operations
    state: int
    cycles: int
    out_arrival_ps: float
    capture_ps: float

    @property
    def end_state(self) -> int:
        """Last state occupied (multi-cycle operations span several)."""
        return self.state + self.cycles - 1


class DatapathNetlist:
    """The incrementally built datapath model for one scheduling pass."""

    def __init__(self, dfg: DFG, library: Library, clock_ps: float,
                 anticipate_muxes: bool = True) -> None:
        self.dfg = dfg
        self.library = library
        self.clock_ps = clock_ps
        self.anticipate_muxes = anticipate_muxes
        self._bound: Dict[int, BoundOp] = {}
        #: sources per (instance name, port): set of root value uids.
        self._port_sources: Dict[Tuple[str, int], Set[int]] = {}
        #: how many compatible operations exist per (family, width bucket),
        #: set by the scheduler so anticipation can compare demand with
        #: the allocated instance count.
        self._type_demand: Dict[Tuple[str, int], int] = {}
        self._type_count: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def set_sharing_outlook(self, demand: Dict[Tuple[str, int], int],
                            counts: Dict[Tuple[str, int], int]) -> None:
        """Provide op demand vs instance counts for mux anticipation."""
        self._type_demand = dict(demand)
        self._type_count = dict(counts)

    # ------------------------------------------------------------------
    # value resolution
    # ------------------------------------------------------------------
    def resolve_source(self, uid: int) -> int:
        """Follow free wiring ops (slice/zext/move) back to the real producer."""
        op = self.dfg.op(uid)
        while op.kind in (OpKind.SLICE, OpKind.ZEXT, OpKind.SEXT, OpKind.MOVE):
            edge = self.dfg.in_edge(op.uid, 0)
            if edge is None:
                break
            op = self.dfg.op(edge.src)
        return op.uid

    def binding(self, uid: int) -> Optional[BoundOp]:
        """The committed binding of an operation, if any."""
        return self._bound.get(uid)

    @property
    def bindings(self) -> Dict[int, BoundOp]:
        """All committed bindings keyed by op uid."""
        return dict(self._bound)

    # ------------------------------------------------------------------
    # arrival computation
    # ------------------------------------------------------------------
    def _input_arrival(self, op: Operation, port: int, state: int) -> float:
        """Arrival of the value feeding ``op`` input ``port`` at ``state``.

        Registered values (previous state, previous iteration, port reads)
        launch at FF clk->q; values produced in the same state chain
        combinationally at the producer's output arrival.
        """
        edge = self.dfg.in_edge(op.uid, port)
        if edge is None:
            return self.library.ff.clk_to_q_ps
        root = self.resolve_source(edge.src)
        producer = self.dfg.op(root)
        if producer.kind is OpKind.CONST:
            return 0.0
        if edge.distance >= 1:
            return self.library.ff.clk_to_q_ps  # previous iteration: registered
        bound = self._bound.get(root)
        if bound is None:
            # producer not scheduled yet (ASAP-style optimistic query):
            # treat as registered, the scheduler never relies on this.
            return self.library.ff.clk_to_q_ps
        if producer.kind is OpKind.READ:
            return self.library.ff.clk_to_q_ps
        if bound.cycles > 1:
            # multi-cycle producers register their result at end_state
            return self.library.ff.clk_to_q_ps
        if bound.state == state:
            return bound.out_arrival_ps  # combinational chaining
        return self.library.ff.clk_to_q_ps

    def _anticipated(self, inst: ResourceInstance) -> bool:
        """Whether sharing (hence input muxes) is expected on ``inst``."""
        if not self.anticipate_muxes:
            return False
        key = (inst.rtype.family, inst.rtype.width)
        demand = self._type_demand.get(key, 0)
        count = self._type_count.get(key, 1)
        return demand > count

    def port_fanin(self, inst: ResourceInstance, port: int,
                   extra_source: Optional[int] = None) -> int:
        """Number of distinct sources at an instance input port."""
        sources = set(self._port_sources.get((inst.name, port), ()))
        if extra_source is not None:
            sources.add(extra_source)
        return len(sources)

    def _input_mux_delay(self, op: Operation, inst: Optional[ResourceInstance],
                         port: int) -> float:
        """Sharing-mux delay in front of an instance input port."""
        if op.is_mux or inst is None:
            return 0.0  # MUX/LOOPMUX *are* the muxes; free ops have none
        edge = self.dfg.in_edge(op.uid, port)
        source = self.resolve_source(edge.src) if edge is not None else None
        fanin = self.port_fanin(inst, port, source)
        if self._anticipated(inst):
            fanin = max(fanin, 2)
        return self.library.mux.delay(fanin)

    def _resource_delay(self, op: Operation, inst: Optional[ResourceInstance]) -> float:
        """Combinational delay contributed by the operation itself."""
        if op.kind is OpKind.MUX:
            return self.library.mux.delay2_ps
        if op.kind is OpKind.LOOPMUX:
            return self.library.mux.delay2_ps
        if inst is None:
            return 0.0  # free wiring, I/O capture, stall markers
        return inst.rtype.delay_ps

    def _capture_overhead(self, op: Operation) -> float:
        """Delay from the op output to the capturing FF's D pin.

        Register sharing is anticipated with a 2-input mux, except after
        MUX/LOOPMUX operations (they are the final select already) and
        for port writes (output ports are not shared).
        """
        if op.is_mux or op.kind is OpKind.WRITE or op.kind is OpKind.STALL:
            return self.library.ff.setup_ps
        return self.library.mux.delay2_ps + self.library.ff.setup_ps

    # ------------------------------------------------------------------
    # candidate evaluation
    # ------------------------------------------------------------------
    def evaluate(self, op: Operation, inst: Optional[ResourceInstance],
                 state: int, allow_multicycle: bool = True) -> CandidateTiming:
        """Timing of binding ``op`` to ``inst`` at ``state``.

        Returns a failed :class:`CandidateTiming` (with the violation in
        ``reason``) instead of raising, so the scheduler can try the next
        resource and record restraints.
        """
        n_inputs = len(self.dfg.in_edges(op.uid))
        worst_in = self.library.ff.clk_to_q_ps if n_inputs == 0 else 0.0
        chained = False
        for edge in self.dfg.in_edges(op.uid):
            arr = self._input_arrival(op, edge.port, state)
            if arr > self.library.ff.clk_to_q_ps:
                chained = True
            arr += self._input_mux_delay(op, inst, edge.port)
            worst_in = max(worst_in, arr)
        if n_inputs and worst_in == 0.0:
            # all-constant inputs still launch from the state register
            worst_in = 0.0
        out = worst_in + self._resource_delay(op, inst)
        capture = out + self._capture_overhead(op)
        if capture <= self.clock_ps:
            return CandidateTiming(True, out, capture, self.clock_ps - capture)
        # try a multi-cycle binding: inputs must be registered
        if (allow_multicycle and inst is not None
                and inst.rtype.multicycle_ok and not chained):
            cycles = math.ceil(capture / self.clock_ps)
            budget = cycles * self.clock_ps
            return CandidateTiming(
                True, out, capture, budget - capture, cycles=cycles)
        return CandidateTiming(
            False, out, capture, self.clock_ps - capture,
            reason=f"negative slack {self.clock_ps - capture:.0f}ps")

    def worst_input_arrival(self, op: Operation, state: int) -> float:
        """Worst raw input arrival (no sharing muxes) at a state.

        Used by the relaxation engine to probe whether faster grades of a
        fresh resource would rescue a failed binding.
        """
        worst = self.library.ff.clk_to_q_ps
        for edge in self.dfg.in_edges(op.uid):
            worst = max(worst, self._input_arrival(op, edge.port, state))
        return worst

    def evaluate_fresh(self, op: Operation, state: int) -> CandidateTiming:
        """Timing on a hypothetical fresh instance of the fastest grade.

        Optimistic (no sharing muxes on the fresh instance): when even
        this fails, adding a resource cannot solve the restraint -- the
        signal behind the paper's "adding one more multiplier does not
        help because two multiplications cannot fit in the given clock
        cycle" decision.
        """
        chained = False
        worst_in = self.library.ff.clk_to_q_ps
        for edge in self.dfg.in_edges(op.uid):
            arr = self._input_arrival(op, edge.port, state)
            if arr > self.library.ff.clk_to_q_ps:
                chained = True
            worst_in = max(worst_in, arr)
        if op.is_mux or op.is_free or op.is_io or op.kind is OpKind.STALL:
            delay = self._resource_delay(op, None)
            multicycle_ok = False
        else:
            try:
                fastest = self.library.fastest(op.kind, op.resource_width)
            except KeyError:
                return CandidateTiming(False, worst_in, worst_in, 0.0,
                                       reason="no resource family")
            delay = fastest.delay_ps
            multicycle_ok = fastest.multicycle_ok
        out = worst_in + delay
        capture = out + self._capture_overhead(op)
        if capture <= self.clock_ps:
            return CandidateTiming(True, out, capture,
                                   self.clock_ps - capture)
        if multicycle_ok and not chained:
            cycles = math.ceil(capture / self.clock_ps)
            return CandidateTiming(True, out, capture,
                                   cycles * self.clock_ps - capture,
                                   cycles=cycles)
        return CandidateTiming(False, out, capture,
                               self.clock_ps - capture,
                               reason="fresh instance fails")

    def affected_by_port_growth(
            self, op: Operation, inst: ResourceInstance) -> List[BoundOp]:
        """Already-bound ops on ``inst`` whose mux fanin this binding grows.

        Their paths must be re-verified: a port going from 2 to 3+ sources
        slows the sharing mux for everyone on the instance.
        """
        grown = False
        for edge in self.dfg.in_edges(op.uid):
            source = self.resolve_source(edge.src)
            before = self.port_fanin(inst, edge.port)
            after = self.port_fanin(inst, edge.port, source)
            if after > max(before, 2):
                grown = True
        if not grown:
            return []
        return [self._bound[o.uid] for o in inst.ops_bound()
                if o.uid in self._bound]

    def recheck(self, bound: BoundOp) -> CandidateTiming:
        """Re-evaluate a committed binding against the current netlist."""
        return self.evaluate(bound.op, bound.inst, bound.state)

    # ------------------------------------------------------------------
    # commit / rollback
    # ------------------------------------------------------------------
    def commit(self, op: Operation, inst: Optional[ResourceInstance],
               state: int, timing: CandidateTiming) -> BoundOp:
        """Record an accepted binding."""
        bound = BoundOp(op, inst, state, timing.cycles,
                        timing.out_arrival_ps, timing.capture_ps)
        self._bound[op.uid] = bound
        if inst is not None and not op.is_mux:
            for edge in self.dfg.in_edges(op.uid):
                source = self.resolve_source(edge.src)
                key = (inst.name, edge.port)
                self._port_sources.setdefault(key, set()).add(source)
        return bound

    def uncommit(self, op: Operation) -> None:
        """Remove a binding (used by pass restarts and backtracking)."""
        bound = self._bound.pop(op.uid, None)
        if bound is None or bound.inst is None or op.is_mux:
            return
        # rebuild the port source sets of that instance from survivors
        inst = bound.inst
        for key in [k for k in self._port_sources if k[0] == inst.name]:
            del self._port_sources[key]
        for other in self._bound.values():
            if other.inst is not inst or other.op.uid == op.uid:
                continue
            for edge in self.dfg.in_edges(other.op.uid):
                source = self.resolve_source(edge.src)
                key = (inst.name, edge.port)
                self._port_sources.setdefault(key, set()).add(source)

    def worst_slack(self) -> float:
        """Worst capture slack across all committed bindings."""
        if not self._bound:
            return self.clock_ps
        return min(self.clock_ps - b.capture_ps for b in self._bound.values())
