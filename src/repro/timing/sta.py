"""Sign-off static timing verification of a finished schedule.

The :class:`~repro.timing.engine.TimingEngine` answers candidate queries
during scheduling and keeps every committed arrival current; this module
walks the committed bindings in topological order and re-derives each
path through the *same* engine arithmetic (:meth:`TimingEngine.audit`),
reporting slack per operation, the worst negative slack and the critical
path.  Because admission and sign-off share one delay implementation,
the report is bit-identical to the slacks the scheduler admitted --
``tests/properties`` asserts exactly that.  The logic-synthesis
compensation step (paper Table 4) uses the report to locate the
resources that must be upsized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cdfg.ops import OpKind
from repro.timing.engine import TimingEngine


@dataclass(frozen=True)
class PathPoint:
    """One operation on a critical path, with its output arrival."""

    op_name: str
    arrival_ps: float


@dataclass
class TimingReport:
    """Result of :func:`verify_timing`."""

    clock_ps: float
    slack_by_op: Dict[int, float]
    wns_ps: float
    critical_op_uid: Optional[int]
    critical_path: List[PathPoint]

    @property
    def met(self) -> bool:
        """Whether every path meets the clock."""
        return self.wns_ps >= -1e-9

    def failing_ops(self) -> List[int]:
        """Uids of operations with negative slack, worst first."""
        bad = [(slack, uid) for uid, slack in self.slack_by_op.items()
               if slack < -1e-9]
        bad.sort()
        return [uid for _slack, uid in bad]


def verify_timing(netlist: TimingEngine) -> TimingReport:
    """Audit every committed binding and report slack.

    Each path is re-derived from the current netlist state through the
    engine's single delay implementation; multi-cycle bindings are
    checked against their extended budget (``cycles * Tclk``).
    """
    dfg = netlist.dfg
    slack_by_op: Dict[int, float] = {}
    worst: Tuple[float, Optional[int]] = (float("inf"), None)
    # topological order ignores loop-carried edges: those arrive registered
    for op in dfg.topological_order():
        bound = netlist.binding(op.uid)
        if bound is None or op.is_free:
            continue
        timing = netlist.audit(bound)
        slack_by_op[op.uid] = timing.slack_ps
        if timing.slack_ps < worst[0]:
            worst = (timing.slack_ps, op.uid)
    wns = min(worst[0], netlist.clock_ps)
    critical = trace_critical_path(netlist, worst[1]) if worst[1] is not None else []
    return TimingReport(
        clock_ps=netlist.clock_ps,
        slack_by_op=slack_by_op,
        wns_ps=wns if slack_by_op else netlist.clock_ps,
        critical_op_uid=worst[1],
        critical_path=critical,
    )


def trace_critical_path(netlist: TimingEngine,
                        end_uid: int) -> List[PathPoint]:
    """Walk back through same-state chaining from the worst endpoint."""
    dfg = netlist.dfg
    path: List[PathPoint] = []
    uid: Optional[int] = end_uid
    guard = 0
    while uid is not None:
        op = dfg.op(uid)
        bound = netlist.binding(uid)
        if bound is None:
            break
        path.append(PathPoint(op.name, bound.out_arrival_ps))
        # find the chained producer with the latest arrival in this state
        best: Tuple[float, Optional[int]] = (-1.0, None)
        for edge in dfg.in_edges(uid):
            if edge.distance >= 1 or edge.order:
                continue  # ordering edges carry no combinational path
            root = netlist.resolve_source(edge.src)
            pb = netlist.binding(root)
            if pb is None or pb.state != bound.state or pb.cycles > 1:
                continue
            if dfg.op(root).kind is OpKind.READ:
                continue
            if pb.out_arrival_ps > best[0]:
                best = (pb.out_arrival_ps, root)
        uid = best[1]
        guard += 1
        if guard > len(dfg):
            break
    path.reverse()
    return path


def chained_instances_on_path(netlist: TimingEngine,
                              end_uid: int) -> List[str]:
    """Instance names on the critical path ending at ``end_uid``.

    These are the upsizing candidates for slack compensation.
    """
    names: List[str] = []
    for point in trace_critical_path(netlist, end_uid):
        for uid, bound in netlist.bindings.items():
            if bound.op.name == point.op_name and bound.inst is not None:
                names.append(bound.inst.name)
                break
    return names
